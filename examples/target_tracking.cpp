// Target tracking: the collaborative-sensing workload the paper's
// introduction motivates (Zhao et al. [23]). A target walks across the
// field; every good tile whose representative's tile the target enters
// produces a detection, which is routed over the NN-SENS overlay to a sink
// at the field's corner, with per-hop energy accounting.
//
//   ./target_tracking [--tiles 12] [--steps 40] [--seed 3]
#include <cmath>
#include <iostream>

#include "sens/core/nn_sens.hpp"
#include "sens/core/sens_router.hpp"
#include "sens/rng/rng.hpp"
#include "sens/support/cli.hpp"

int main(int argc, char** argv) {
  using namespace sens;
  const Cli cli(argc, argv);
  const int tiles = cli.get("tiles", 12);
  const int steps = cli.get("steps", 40);
  const std::uint64_t seed = cli.get("seed", 3ULL);

  const NnTileSpec spec = NnTileSpec::paper();
  std::cout << "building NN-SENS(2, " << spec.k() << ") on " << tiles << "x" << tiles
            << " tiles...\n";
  const NnSensResult net = build_nn_sens(spec, tiles, tiles, seed);
  const auto reps = net.overlay.giant_rep_sites();
  if (reps.empty()) {
    std::cout << "no giant component this seed; rerun with another --seed\n";
    return 1;
  }

  // Sink: the giant-component representative closest to the origin corner.
  Site sink = reps.front();
  for (const Site s : reps)
    if (s.x + s.y < sink.x + sink.y) sink = s;
  const SensRouter router(net.overlay);

  // Random-waypoint target across the field (in tile coordinates).
  Rng rng = Rng::stream(seed, 0x7a96e7);
  double tx = tiles * 0.1, ty = tiles * 0.9;
  double vx = 0.45, vy = -0.35;

  std::size_t detections = 0, delivered = 0, total_hops = 0, total_probes = 0;
  double total_energy = 0.0;
  for (int step = 0; step < steps; ++step) {
    tx += vx + rng.normal(0.0, 0.05);
    ty += vy + rng.normal(0.0, 0.05);
    if (tx < 0 || tx >= tiles) vx = -vx;
    if (ty < 0 || ty >= tiles) vy = -vy;
    tx = std::clamp(tx, 0.0, tiles - 1e-9);
    ty = std::clamp(ty, 0.0, tiles - 1e-9);
    const Site cell{static_cast<std::int32_t>(tx), static_cast<std::int32_t>(ty)};

    if (!net.overlay.rep_in_giant(cell)) continue;  // no connected sensor here
    ++detections;
    const SensRoute route = router.route(cell, sink);
    if (!route.success) continue;
    ++delivered;
    total_hops += route.node_hops();
    total_probes += route.probes;
    total_energy += route.power2;
    std::cout << "t=" << step << "  target tile (" << cell.x << "," << cell.y << ")  -> sink ("
              << sink.x << "," << sink.y << "): " << route.tile_hops << " tile hops, "
              << route.node_hops() << " node hops, energy " << route.power2 << "\n";
  }

  std::cout << "\nsummary: " << detections << " detections, " << delivered << " delivered, "
            << total_hops << " total node hops, " << total_probes << " probes, total energy "
            << total_energy << "\n";
  std::cout << "tiles without a connected rep produce no detection — the coverage theorem\n"
               "(E9) bounds how often the target can hide in such gaps.\n";
  return 0;
}
