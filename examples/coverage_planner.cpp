// Coverage planner: a deployment-engineering tool built on the library.
//
// Given a sensing radius requirement ("no empty l x l gap with probability
// above epsilon"), sweep the deployment density, measure the empty-box
// probability of the resulting UDG-SENS overlay and report the cheapest
// density that meets the target — the practical use of Theorem 3.3's
// density-sharpened decay.
//
//   ./coverage_planner [--gap 2.0] [--epsilon 0.01] [--tiles 56] [--seed 7]
#include <iostream>

#include "sens/core/coverage.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/support/cli.hpp"
#include "sens/support/table.hpp"

int main(int argc, char** argv) {
  using namespace sens;
  const Cli cli(argc, argv);
  const double gap = cli.get("gap", 2.0);          // forbidden gap side (distance units)
  const double epsilon = cli.get("epsilon", 0.01); // tolerated miss probability
  const int tiles = cli.get("tiles", 56);
  const std::uint64_t seed = cli.get("seed", 7ULL);
  const UdgTileSpec spec = UdgTileSpec::strict();

  std::cout << "target: P(an empty " << gap << " x " << gap << " gap) <= " << epsilon << "\n\n";

  Table t({"lambda", "sensors", "active (overlay)", "duty fraction", "P(empty gap)", "meets target"});
  double best_lambda = -1.0;
  for (const double lambda : {18.0, 20.0, 22.0, 25.0, 28.0, 32.0, 38.0}) {
    const UdgSensResult net = build_udg_sens(spec, lambda, tiles, tiles, seed);
    const Proportion p = empty_box_probability(net.overlay, gap, 20000, seed + 1);
    const bool ok = p.wilson_high() <= epsilon;
    if (ok && best_lambda < 0.0) best_lambda = lambda;
    const double duty = static_cast<double>(net.overlay.giant_size()) /
                        static_cast<double>(net.points.size());
    t.add_row({Table::fmt(lambda, 4), Table::fmt_int(static_cast<long long>(net.points.size())),
               Table::fmt_int(static_cast<long long>(net.overlay.giant_size())),
               Table::fmt(duty, 3), Table::fmt(p.estimate(), 4), ok ? "yes" : "no"});
  }
  t.print(std::cout);

  if (best_lambda > 0.0) {
    std::cout << "\nrecommendation: deploy at density lambda = " << best_lambda
              << "; only the overlay nodes (duty fraction above) need to stay awake.\n";
  } else {
    std::cout << "\nno density in the sweep meets the target; raise the sweep or relax epsilon.\n";
  }
  return 0;
}
