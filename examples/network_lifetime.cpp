// Network lifetime: why max-degree-4 duty-cycling matters.
//
// Compares two operating modes of the same Poisson deployment under a
// steady many-to-one telemetry workload (random sources reporting to a
// sink): (a) every node awake, routing over the full UDG with min-power
// paths; (b) only the UDG-SENS overlay awake, routing over the relay
// backbone. Reports energy per delivered packet, the awake-node budget and
// rounds until the first awake node exhausts a fixed battery.
//
//   ./network_lifetime [--tiles 24] [--rounds 400] [--battery 50] [--seed 9]
#include <algorithm>
#include <iostream>
#include <vector>

#include "sens/core/sens_router.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/geograph/udg.hpp"
#include "sens/graph/dijkstra.hpp"
#include "sens/rng/rng.hpp"
#include "sens/support/cli.hpp"

int main(int argc, char** argv) {
  using namespace sens;
  const Cli cli(argc, argv);
  const int tiles = cli.get("tiles", 24);
  const int rounds = cli.get("rounds", 400);
  const double battery = cli.get("battery", 50.0);
  const std::uint64_t seed = cli.get("seed", 9ULL);

  const UdgSensResult net = build_udg_sens(UdgTileSpec::strict(), 25.0, tiles, tiles, seed);
  const GeoGraph udg = build_udg(net.points.points, net.points.window, 1.0);
  const auto reps = net.overlay.giant_rep_sites();
  if (reps.size() < 2) {
    std::cout << "giant component too small; rerun with another --seed\n";
    return 1;
  }
  const Site sink_site = reps.front();
  const std::uint32_t sink_base = net.overlay.base_index[net.overlay.rep_of(sink_site)];
  const SensRouter router(net.overlay);
  Rng rng = Rng::stream(seed, 0x11fe);

  // Mode (a): full UDG, omniscient min-power routing (best case for the
  // always-on network; a real protocol would do worse).
  std::vector<double> energy_udg(udg.size(), 0.0);
  // Mode (b): SENS overlay routing.
  std::vector<double> energy_sens(net.overlay.geo.size(), 0.0);

  auto pw = [&](std::uint32_t u, std::uint32_t v) {
    const double d = udg.edge_length(u, v);
    return d * d;
  };
  // Per-arc powers computed once; every per-round shortest path reuses one
  // scratch + path buffer (allocation-free, DESIGN.md §2.4).
  const std::vector<double> pw_arcs = udg.graph.arc_weights(pw);
  DijkstraScratch scratch;
  std::vector<std::uint32_t> path;

  int first_death_udg = -1, first_death_sens = -1;
  double total_udg = 0.0, total_sens = 0.0;
  std::size_t delivered_udg = 0, delivered_sens = 0;
  for (int round = 0; round < rounds; ++round) {
    const Site src = reps[rng.uniform_index(reps.size())];
    // (a) full UDG from the same source sensor.
    const std::uint32_t src_base = net.overlay.base_index[net.overlay.rep_of(src)];
    dijkstra_path_into(udg.graph, src_base, sink_base, pw_arcs, scratch, path);
    for (std::size_t i = 1; i < path.size(); ++i) {
      const double e = pw(path[i - 1], path[i]);
      energy_udg[path[i - 1]] += e;
      total_udg += e;
    }
    if (!path.empty()) ++delivered_udg;
    // (b) SENS overlay.
    const SensRoute route = router.route(src, sink_site);
    if (route.success) {
      ++delivered_sens;
      for (std::size_t i = 1; i < route.node_path.size(); ++i) {
        const double d = net.overlay.geo.edge_length(route.node_path[i - 1], route.node_path[i]);
        energy_sens[route.node_path[i - 1]] += d * d;
        total_sens += d * d;
      }
    }
    if (first_death_udg < 0 &&
        *std::max_element(energy_udg.begin(), energy_udg.end()) > battery)
      first_death_udg = round;
    if (first_death_sens < 0 &&
        *std::max_element(energy_sens.begin(), energy_sens.end()) > battery)
      first_death_sens = round;
  }

  std::cout << "deployment: " << net.points.size() << " sensors; sink at tile (" << sink_site.x
            << "," << sink_site.y << ")\n\n";
  std::cout << "mode                 awake nodes   energy/packet   first battery death (round)\n";
  std::cout << "full UDG (min power) " << udg.size() << "          "
            << total_udg / static_cast<double>(std::max<std::size_t>(1, delivered_udg)) << "          "
            << (first_death_udg < 0 ? std::string("> ") + std::to_string(rounds)
                                    : std::to_string(first_death_udg))
            << "\n";
  std::cout << "UDG-SENS overlay     " << net.overlay.giant_size() << "           "
            << total_sens / static_cast<double>(std::max<std::size_t>(1, delivered_sens)) << "          "
            << (first_death_sens < 0 ? std::string("> ") + std::to_string(rounds)
                                     : std::to_string(first_death_sens))
            << "\n\n";
  std::cout << "SENS pays a constant-factor energy premium per packet (Li-Wan-Wang bound)\n"
               "but puts " << net.points.size() - net.overlay.giant_size()
            << " sensors to sleep; sleeping nodes can rotate roles to extend lifetime\n"
               "further (future work in the paper's Section 5).\n";
  return 0;
}
