// Quickstart: build UDG-SENS over a Poisson deployment, inspect its
// properties (P1-P3) and route a packet between two sensors.
//
//   ./quickstart [--lambda 25] [--tiles 32] [--seed 42]
#include <iostream>

#include "sens/core/metrics.hpp"
#include "sens/core/sens_router.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/support/cli.hpp"

int main(int argc, char** argv) {
  using namespace sens;
  const Cli cli(argc, argv);
  const double lambda = cli.get("lambda", 25.0);
  const int tiles = cli.get("tiles", 32);
  const std::uint64_t seed = cli.get("seed", 42ULL);

  // 1. Pick the tile geometry. strict() carries the worst-case guarantee of
  //    Claim 2.1: adjacent good tiles are always joined by a 3-hop path.
  const UdgTileSpec spec = UdgTileSpec::strict();

  // 2. Sample the deployment and build the SENS overlay in one call:
  //    Poisson points -> tile classification -> leader election -> overlay.
  const UdgSensResult net = build_udg_sens(spec, lambda, tiles, tiles, seed);

  std::cout << "deployment: " << net.points.size() << " sensors on a "
            << net.points.window.width() << " x " << net.points.window.height() << " field\n";
  std::cout << "good tiles: " << net.classification.good_count() << " / "
            << net.classification.good.size() << "\n";
  std::cout << "overlay:    " << net.overlay.geo.size() << " active nodes (reps + relays), "
            << net.overlay.geo.graph.num_edges() << " links\n";

  // 3. P1: sparsity.
  const DegreeReport deg = overlay_degree_report(net.overlay);
  std::cout << "P1 sparsity: max degree " << deg.max_degree << " (mean "
            << deg.mean_degree << ")\n";

  // 4. P2: stretch between sensing representatives.
  const auto stretch = sample_overlay_stretch(net.overlay, 50, seed + 1);
  double worst = 0.0;
  for (const auto& s : stretch) worst = std::max(worst, s.length_stretch());
  std::cout << "P2 stretch:  worst length stretch over " << stretch.size() << " pairs: " << worst
            << "\n";

  // 5. Route a packet between two far-apart representatives.
  const auto reps = net.overlay.giant_rep_sites();
  if (reps.size() >= 2) {
    const SensRouter router(net.overlay);
    const SensRoute route = router.route(reps.front(), reps.back());
    if (route.success) {
      std::cout << "routing:     " << route.tile_hops << " tile hops, " << route.node_hops()
                << " node hops, " << route.probes << " probes, path length "
                << route.euclid_length << ", energy(beta=2) " << route.power2 << "\n";
    }
  }

  std::cout << "\nEvery sensor outside the overlay can sleep: the good tiles cover the field\n"
               "(Theorem 3.3) and the overlay relays everyone's readings.\n";
  return 0;
}
