#include "sens/perc/clusters.hpp"

#include <algorithm>
#include <deque>

namespace sens {

ClusterLabels::ClusterLabels(const SiteGrid& grid) : grid_(&grid) {
  labels_.assign(grid.num_sites(), kClosed);
  std::deque<Site> queue;
  for (std::size_t idx = 0; idx < grid.num_sites(); ++idx) {
    const Site start = grid.site_at(idx);
    if (!grid.open(start) || labels_[idx] != kClosed) continue;
    const auto id = static_cast<std::int32_t>(sizes_.size());
    sizes_.push_back(0);
    labels_[idx] = id;
    queue.push_back(start);
    while (!queue.empty()) {
      const Site u = queue.front();
      queue.pop_front();
      ++sizes_[static_cast<std::size_t>(id)];
      grid.for_each_neighbor(u, [&](Site v) {
        if (grid.open(v) && labels_[grid.index(v)] == kClosed) {
          labels_[grid.index(v)] = id;
          queue.push_back(v);
        }
      });
    }
  }
  if (!sizes_.empty()) {
    largest_ = static_cast<std::int32_t>(
        std::max_element(sizes_.begin(), sizes_.end()) - sizes_.begin());
  }
}

double ClusterLabels::theta_estimate() const {
  return grid_->num_sites() == 0
             ? 0.0
             : static_cast<double>(largest_cluster_size()) / static_cast<double>(grid_->num_sites());
}

}  // namespace sens
