// Chemical (graph) distance inside a percolated configuration — the paper's
// D_p(x, y), against the unpercolated lattice distance D(x, y). The
// Antal-Pisztora theorem (Lemma 1.1) says P(D_p > a) < exp(-c a) for
// a > rho * D; experiment E8 measures rho and the exceedance tail.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sens/perc/clusters.hpp"
#include "sens/perc/site_grid.hpp"

namespace sens {

/// Caller-owned frontier buffer for chemical-distance BFS runs: one
/// allocation warm across sources instead of a deque per call (the
/// traversal contract, DESIGN.md §2.4). Contents are opaque; never share
/// one scratch between threads.
struct ChemicalScratch {
  std::vector<std::uint32_t> queue;  ///< site indices, reused across runs
};

/// BFS hop distances over open sites from `source` (must be open) written
/// into `out` (size num_sites); closed/unreachable sites get 0xffffffff.
/// Allocation-free given a warm scratch and out buffer.
void chemical_distances_into(const SiteGrid& grid, Site source, ChemicalScratch& scratch,
                             std::span<std::uint32_t> out);

/// Allocating wrapper over `chemical_distances_into`.
[[nodiscard]] std::vector<std::uint32_t> chemical_distances(const SiteGrid& grid, Site source);

struct ChemicalSample {
  std::int32_t lattice = 0;   ///< D(x, y): L1 distance
  std::uint32_t chemical = 0; ///< D_p(x, y): hops through open sites
  [[nodiscard]] double ratio() const {
    return lattice == 0 ? 1.0 : static_cast<double>(chemical) / static_cast<double>(lattice);
  }
};

/// Sample chemical/lattice distance pairs between sites of the largest
/// cluster at (approximately) the requested lattice separation.
[[nodiscard]] std::vector<ChemicalSample> sample_chemical_distances(
    const SiteGrid& grid, const ClusterLabels& labels, std::int32_t target_separation,
    std::size_t num_pairs, std::uint64_t seed);

}  // namespace sens
