// Finite window of a Z^2 site percolation configuration.
//
// Sites are open with probability p independently (random()), or set
// explicitly — the tile coupling of Section 2 produces SiteGrids whose
// openness comes from tile goodness instead of coin flips, and every
// analysis in this module runs unchanged on either kind.
#pragma once

#include <cstdint>
#include <vector>

namespace sens {

/// Integer lattice coordinate within a grid window.
struct Site {
  std::int32_t x = 0;
  std::int32_t y = 0;
  constexpr bool operator==(const Site&) const = default;
};

class SiteGrid {
 public:
  /// Empty 0x0 grid (useful as a placeholder before assignment).
  SiteGrid() : width_(0), height_(0) {}
  SiteGrid(std::int32_t width, std::int32_t height, bool initially_open = false);

  /// iid Bernoulli(p) configuration from a deterministic seed.
  static SiteGrid random(std::int32_t width, std::int32_t height, double p, std::uint64_t seed);

  [[nodiscard]] std::int32_t width() const { return width_; }
  [[nodiscard]] std::int32_t height() const { return height_; }
  [[nodiscard]] std::size_t num_sites() const { return open_.size(); }

  [[nodiscard]] bool in_bounds(Site s) const {
    return s.x >= 0 && s.x < width_ && s.y >= 0 && s.y < height_;
  }
  [[nodiscard]] bool open(Site s) const { return open_[index(s)] != 0; }
  void set_open(Site s, bool value) { open_[index(s)] = value ? 1 : 0; }

  [[nodiscard]] std::size_t index(Site s) const {
    return static_cast<std::size_t>(s.y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(s.x);
  }
  [[nodiscard]] Site site_at(std::size_t idx) const {
    return {static_cast<std::int32_t>(idx % static_cast<std::size_t>(width_)),
            static_cast<std::int32_t>(idx / static_cast<std::size_t>(width_))};
  }

  [[nodiscard]] std::size_t open_count() const;
  [[nodiscard]] double open_fraction() const;

  /// The four lattice neighbors that fall inside the window.
  template <typename Fn>
  void for_each_neighbor(Site s, Fn&& fn) const {
    const Site candidates[4] = {{s.x + 1, s.y}, {s.x - 1, s.y}, {s.x, s.y + 1}, {s.x, s.y - 1}};
    for (const Site c : candidates)
      if (in_bounds(c)) fn(c);
  }

 private:
  std::int32_t width_;
  std::int32_t height_;
  std::vector<std::uint8_t> open_;
};

/// L1 (unpercolated lattice) distance — the paper's D(x, y).
[[nodiscard]] constexpr std::int32_t lattice_distance(Site a, Site b) {
  const std::int32_t dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const std::int32_t dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

}  // namespace sens
