// Distributed routing on the percolated mesh, after Angel, Benjamini, Ofek
// and Wieder (PODC 2005), as adopted by the paper's Section 4.2 (Figure 9).
//
// The packet follows the canonical x-y path from source to destination:
// first fix the x coordinate, then the y coordinate. When the next site on
// the path is closed (tile not good), a distributed BFS over open sites is
// launched from the current position until it reaches a site that lies on
// the *remaining* x-y path; the packet then travels along the discovered
// detour. The router counts `probes` — every openness query made, which is
// the message cost a real network would pay — and `hops`, the number of
// edges the packet traverses. Angel et al. prove E[probes] = O(shortest
// path); experiment E11 measures the constant.
#pragma once

#include <cstdint>
#include <vector>

#include "sens/perc/clusters.hpp"
#include "sens/perc/site_grid.hpp"

namespace sens {

struct MeshRoute {
  bool success = false;
  std::vector<Site> path;        ///< sites visited by the packet, source first
  std::size_t probes = 0;        ///< openness queries (isOpen + BFS expansions)
  std::size_t bfs_invocations = 0;

  [[nodiscard]] std::size_t hops() const { return path.empty() ? 0 : path.size() - 1; }
};

/// Caller-owned working memory for the detour BFS inside `route`:
/// timestamp-versioned parent array plus a reusable frontier, replacing a
/// hash map + deque allocated per BFS invocation (the traversal contract,
/// DESIGN.md §2.4). Contents are opaque; never share one scratch between
/// threads.
struct MeshRouteScratch {
  std::vector<std::uint32_t> parent;  ///< site index -> parent site index
  std::vector<std::uint32_t> stamp;   ///< per-site epoch mark
  std::vector<std::uint32_t> queue;   ///< frontier, reused across invocations
  std::uint32_t epoch = 0;
};

class MeshRouter {
 public:
  explicit MeshRouter(const SiteGrid& grid) : grid_(&grid) {}

  /// Route from `src` to `dst`; both must be open sites of the same cluster
  /// for success to be guaranteed. The route fails (success = false) only
  /// when the cluster of `src` contains no remaining-path site.
  /// Allocation-free per detour BFS given a warm scratch.
  [[nodiscard]] MeshRoute route(Site src, Site dst, MeshRouteScratch& scratch) const;

  /// Allocating wrapper (one-off routes, tests).
  [[nodiscard]] MeshRoute route(Site src, Site dst) const;

 private:
  /// Next site on the canonical x-y path from `cur` toward `dst`.
  [[nodiscard]] static Site next_on_xy_path(Site cur, Site dst);
  /// True if `s` lies on the x-y path from `from` to `dst` and is strictly
  /// closer to `dst` along it than `from` is.
  [[nodiscard]] static bool on_remaining_path(Site s, Site from, Site dst);

  const SiteGrid* grid_;
};

}  // namespace sens
