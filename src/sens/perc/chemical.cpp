#include "sens/perc/chemical.hpp"

#include <deque>
#include <limits>

#include "sens/rng/rng.hpp"

namespace sens {

std::vector<std::uint32_t> chemical_distances(const SiteGrid& grid, Site source) {
  constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(grid.num_sites(), kUnset);
  if (!grid.open(source)) return dist;
  std::deque<Site> queue;
  dist[grid.index(source)] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const Site u = queue.front();
    queue.pop_front();
    const std::uint32_t du = dist[grid.index(u)];
    grid.for_each_neighbor(u, [&](Site v) {
      if (grid.open(v) && dist[grid.index(v)] == kUnset) {
        dist[grid.index(v)] = du + 1;
        queue.push_back(v);
      }
    });
  }
  return dist;
}

std::vector<ChemicalSample> sample_chemical_distances(const SiteGrid& grid,
                                                      const ClusterLabels& labels,
                                                      std::int32_t target_separation,
                                                      std::size_t num_pairs, std::uint64_t seed) {
  std::vector<ChemicalSample> samples;
  if (labels.largest_cluster() < 0) return samples;

  // Collect largest-cluster members once.
  std::vector<Site> members;
  for (std::size_t idx = 0; idx < grid.num_sites(); ++idx) {
    const Site s = grid.site_at(idx);
    if (labels.in_largest(s)) members.push_back(s);
  }
  if (members.size() < 2) return samples;

  Rng rng = Rng::stream(seed, 0xD157);
  constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();
  std::size_t attempts = 0;
  while (samples.size() < num_pairs && attempts < num_pairs * 40) {
    ++attempts;
    const Site a = members[rng.uniform_index(members.size())];
    // Find a member at (approximately) the target separation: try the four
    // axis-aligned displaced positions and accept any largest-cluster site
    // within a +-separation/4 L1 shell around them.
    const std::int32_t sep = target_separation;
    const Site trial{a.x + (rng.bernoulli(0.5) ? sep : -sep),
                     a.y + static_cast<std::int32_t>(rng.uniform_int(-sep / 2, sep / 2))};
    if (!grid.in_bounds(trial)) continue;
    // Scan a small neighborhood of the trial position for a cluster member.
    Site b = trial;
    bool found = false;
    for (std::int32_t dy = 0; dy <= 2 && !found; ++dy) {
      for (std::int32_t dx = 0; dx <= 2 && !found; ++dx) {
        const Site c{trial.x + dx, trial.y + dy};
        if (grid.in_bounds(c) && labels.in_largest(c)) {
          b = c;
          found = true;
        }
      }
    }
    if (!found || (b.x == a.x && b.y == a.y)) continue;
    const auto dists = chemical_distances(grid, a);
    const std::uint32_t dp = dists[grid.index(b)];
    if (dp == kUnset) continue;  // different cluster (cannot happen for largest)
    samples.push_back({lattice_distance(a, b), dp});
  }
  return samples;
}

}  // namespace sens
