#include "sens/perc/chemical.hpp"

#include <algorithm>
#include <limits>

#include "sens/rng/rng.hpp"

namespace sens {

namespace {
constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();
}  // namespace

void chemical_distances_into(const SiteGrid& grid, Site source, ChemicalScratch& scratch,
                             std::span<std::uint32_t> out) {
  // `out` doubles as the distance array: the sentinel fill is required for
  // the dense result anyway, so the only per-call state to reuse is the
  // frontier (kept warm in the scratch).
  std::fill(out.begin(), out.end(), kUnset);
  if (!grid.open(source)) return;
  scratch.queue.clear();
  out[grid.index(source)] = 0;
  scratch.queue.push_back(static_cast<std::uint32_t>(grid.index(source)));
  std::size_t head = 0;
  while (head < scratch.queue.size()) {
    const std::uint32_t ui = scratch.queue[head++];
    const Site u = grid.site_at(ui);
    const std::uint32_t du = out[ui];
    grid.for_each_neighbor(u, [&](Site v) {
      const std::size_t vi = grid.index(v);
      if (grid.open(v) && out[vi] == kUnset) {
        out[vi] = du + 1;
        scratch.queue.push_back(static_cast<std::uint32_t>(vi));
      }
    });
  }
}

std::vector<std::uint32_t> chemical_distances(const SiteGrid& grid, Site source) {
  ChemicalScratch scratch;
  std::vector<std::uint32_t> dist(grid.num_sites());
  chemical_distances_into(grid, source, scratch, dist);
  return dist;
}

std::vector<ChemicalSample> sample_chemical_distances(const SiteGrid& grid,
                                                      const ClusterLabels& labels,
                                                      std::int32_t target_separation,
                                                      std::size_t num_pairs, std::uint64_t seed) {
  std::vector<ChemicalSample> samples;
  if (labels.largest_cluster() < 0) return samples;

  // Collect largest-cluster members once.
  std::vector<Site> members;
  for (std::size_t idx = 0; idx < grid.num_sites(); ++idx) {
    const Site s = grid.site_at(idx);
    if (labels.in_largest(s)) members.push_back(s);
  }
  if (members.size() < 2) return samples;

  Rng rng = Rng::stream(seed, 0xD157);
  // One BFS scratch + distance buffer reused across every attempt.
  ChemicalScratch scratch;
  std::vector<std::uint32_t> dists(grid.num_sites());
  std::size_t attempts = 0;
  while (samples.size() < num_pairs && attempts < num_pairs * 40) {
    ++attempts;
    const Site a = members[rng.uniform_index(members.size())];
    // Find a member at (approximately) the target separation: try the four
    // axis-aligned displaced positions and accept any largest-cluster site
    // within a +-separation/4 L1 shell around them.
    const std::int32_t sep = target_separation;
    const Site trial{a.x + (rng.bernoulli(0.5) ? sep : -sep),
                     a.y + static_cast<std::int32_t>(rng.uniform_int(-sep / 2, sep / 2))};
    if (!grid.in_bounds(trial)) continue;
    // Scan a small neighborhood of the trial position for a cluster member.
    Site b = trial;
    bool found = false;
    for (std::int32_t dy = 0; dy <= 2 && !found; ++dy) {
      for (std::int32_t dx = 0; dx <= 2 && !found; ++dx) {
        const Site c{trial.x + dx, trial.y + dy};
        if (grid.in_bounds(c) && labels.in_largest(c)) {
          b = c;
          found = true;
        }
      }
    }
    if (!found || (b.x == a.x && b.y == a.y)) continue;
    chemical_distances_into(grid, a, scratch, dists);
    const std::uint32_t dp = dists[grid.index(b)];
    if (dp == kUnset) continue;  // different cluster (cannot happen for largest)
    samples.push_back({lattice_distance(a, b), dp});
  }
  return samples;
}

}  // namespace sens
