#include "sens/perc/crossing.hpp"

#include <deque>
#include <vector>

#include "sens/rng/rng.hpp"
#include "sens/support/parallel.hpp"

namespace sens {

bool has_lr_crossing(const SiteGrid& grid) {
  std::vector<std::uint8_t> visited(grid.num_sites(), 0);
  std::deque<Site> queue;
  for (std::int32_t y = 0; y < grid.height(); ++y) {
    const Site s{0, y};
    if (grid.open(s)) {
      visited[grid.index(s)] = 1;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const Site u = queue.front();
    queue.pop_front();
    if (u.x == grid.width() - 1) return true;
    bool reached = false;
    grid.for_each_neighbor(u, [&](Site v) {
      if (!reached && grid.open(v) && !visited[grid.index(v)]) {
        visited[grid.index(v)] = 1;
        queue.push_back(v);
      }
    });
  }
  return false;
}

double crossing_probability(std::int32_t n, double p, std::size_t trials, std::uint64_t seed) {
  if (trials == 0) return 0.0;
  const std::size_t hits = parallel_reduce(
      trials, std::size_t{0},
      [&](std::size_t t) -> std::size_t {
        const SiteGrid grid = SiteGrid::random(n, n, p, mix_seed(seed, t));
        return has_lr_crossing(grid) ? 1 : 0;
      },
      [](std::size_t a, std::size_t b) { return a + b; });
  return static_cast<double>(hits) / static_cast<double>(trials);
}

double estimate_half_crossing_point(std::int32_t n, std::size_t trials_per_step,
                                    std::uint64_t seed, int bisection_steps) {
  double lo = 0.35;
  double hi = 0.85;
  for (int step = 0; step < bisection_steps; ++step) {
    const double mid = (lo + hi) / 2.0;
    const double prob =
        crossing_probability(n, mid, trials_per_step, mix_seed(seed, static_cast<std::uint64_t>(step)));
    if (prob < 0.5)
      lo = mid;
    else
      hi = mid;
  }
  return (lo + hi) / 2.0;
}

}  // namespace sens
