// Crossing probabilities and critical-point estimation for Z^2 site
// percolation. Validates the substrate against the literature value
// p_c ≈ 0.59274 cited by the paper ("between 0.592 and 0.593"), and is
// reused to locate the empirical percolation onset of coupled tile grids.
#pragma once

#include <cstdint>

#include "sens/perc/site_grid.hpp"

namespace sens {

/// True if an open left-to-right crossing of the grid exists.
[[nodiscard]] bool has_lr_crossing(const SiteGrid& grid);

/// Monte-Carlo estimate of the LR-crossing probability on an n x n window.
[[nodiscard]] double crossing_probability(std::int32_t n, double p, std::size_t trials,
                                          std::uint64_t seed);

/// The p at which the n x n crossing probability equals 1/2 (bisection on
/// Monte-Carlo estimates); converges to p_c as n grows.
[[nodiscard]] double estimate_half_crossing_point(std::int32_t n, std::size_t trials_per_step,
                                                  std::uint64_t seed, int bisection_steps = 12);

}  // namespace sens
