// Open-cluster labeling of a site configuration (4-connectivity), plus the
// percolation statistics used by the coverage theorem (Thm 3.3) and the
// theta(p) monotonicity argument of Section 3.2.
#pragma once

#include <cstdint>
#include <vector>

#include "sens/perc/site_grid.hpp"

namespace sens {

class ClusterLabels {
 public:
  static constexpr std::int32_t kClosed = -1;

  explicit ClusterLabels(const SiteGrid& grid);

  /// Cluster id of an open site; kClosed for closed sites.
  [[nodiscard]] std::int32_t label(Site s) const { return labels_[grid_->index(s)]; }
  [[nodiscard]] std::size_t cluster_count() const { return sizes_.size(); }
  [[nodiscard]] std::size_t cluster_size(std::int32_t id) const {
    return sizes_.at(static_cast<std::size_t>(id));
  }

  [[nodiscard]] std::int32_t largest_cluster() const { return largest_; }
  [[nodiscard]] std::size_t largest_cluster_size() const {
    return largest_ < 0 ? 0 : sizes_[static_cast<std::size_t>(largest_)];
  }

  [[nodiscard]] bool in_largest(Site s) const {
    return largest_ >= 0 && label(s) == largest_;
  }
  [[nodiscard]] bool same_cluster(Site a, Site b) const {
    return label(a) >= 0 && label(a) == label(b);
  }

  /// Fraction of *all* sites in the largest cluster: the finite-volume
  /// estimator of theta(p).
  [[nodiscard]] double theta_estimate() const;

  [[nodiscard]] const SiteGrid& grid() const { return *grid_; }

 private:
  const SiteGrid* grid_;
  std::vector<std::int32_t> labels_;
  std::vector<std::size_t> sizes_;
  std::int32_t largest_ = -1;
};

}  // namespace sens
