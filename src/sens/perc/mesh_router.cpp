#include "sens/perc/mesh_router.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_map>

namespace sens {

namespace {
/// Progress of site `s` along the x-y path to dst, assuming s is on it:
/// larger means closer to dst (used to require strict progress).
std::int64_t xy_progress(Site s, Site dst) {
  // The x-leg is walked first; progress = -(remaining L1 distance).
  return -static_cast<std::int64_t>(lattice_distance(s, dst));
}
}  // namespace

Site MeshRouter::next_on_xy_path(Site cur, Site dst) {
  if (cur.x != dst.x) return {cur.x + (dst.x > cur.x ? 1 : -1), cur.y};
  if (cur.y != dst.y) return {cur.x, cur.y + (dst.y > cur.y ? 1 : -1)};
  return cur;
}

bool MeshRouter::on_remaining_path(Site s, Site from, Site dst) {
  // x-y path from `from`: first the horizontal segment at y = from.y from
  // from.x to dst.x, then the vertical segment at x = dst.x.
  const bool on_horizontal =
      s.y == from.y && s.x >= std::min(from.x, dst.x) && s.x <= std::max(from.x, dst.x);
  const bool on_vertical =
      s.x == dst.x && s.y >= std::min(from.y, dst.y) && s.y <= std::max(from.y, dst.y);
  if (!on_horizontal && !on_vertical) return false;
  return xy_progress(s, dst) > xy_progress(from, dst);
}

MeshRoute MeshRouter::route(Site src, Site dst) const {
  MeshRoute result;
  if (!grid_->in_bounds(src) || !grid_->in_bounds(dst)) return result;
  ++result.probes;  // src openness
  if (!grid_->open(src)) return result;
  result.path.push_back(src);
  Site cur = src;

  // Each loop iteration makes strict progress along the x-y path, so the
  // loop terminates after at most width+height successful steps plus the
  // BFS detours.
  while (!(cur == dst)) {
    const Site next = next_on_xy_path(cur, dst);
    ++result.probes;  // isOpen(next): ask the relay toward `next`
    if (grid_->open(next)) {
      result.path.push_back(next);
      cur = next;
      continue;
    }

    // Distributed BFS over open sites from `cur` until any site on the
    // remaining x-y path is found (Figure 9, step 4.else). Probes count
    // every site whose openness the search examines.
    ++result.bfs_invocations;
    std::unordered_map<std::size_t, std::size_t> parent;  // index -> parent index
    std::deque<Site> queue;
    parent.emplace(grid_->index(cur), grid_->index(cur));
    queue.push_back(cur);
    Site found{-1, -1};
    while (!queue.empty()) {
      const Site u = queue.front();
      queue.pop_front();
      bool done = false;
      grid_->for_each_neighbor(u, [&](Site v) {
        if (done) return;
        const std::size_t vi = grid_->index(v);
        if (parent.contains(vi)) return;
        ++result.probes;  // examine v
        if (!grid_->open(v)) return;
        parent.emplace(vi, grid_->index(u));
        if (on_remaining_path(v, cur, dst)) {
          found = v;
          done = true;
          return;
        }
        queue.push_back(v);
      });
      if (done) break;
    }
    if (found.x < 0) return result;  // cluster exhausted: unreachable

    // Walk the discovered detour (reverse the parent chain).
    std::vector<Site> detour;
    for (std::size_t vi = grid_->index(found);; vi = parent.at(vi)) {
      detour.push_back(grid_->site_at(vi));
      if (vi == grid_->index(cur)) break;
    }
    std::reverse(detour.begin(), detour.end());
    for (std::size_t i = 1; i < detour.size(); ++i) result.path.push_back(detour[i]);
    cur = found;
  }
  result.success = true;
  return result;
}

}  // namespace sens
