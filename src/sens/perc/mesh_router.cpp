#include "sens/perc/mesh_router.hpp"

#include <algorithm>
#include <limits>

namespace sens {

namespace {
/// Progress of site `s` along the x-y path to dst, assuming s is on it:
/// larger means closer to dst (used to require strict progress).
std::int64_t xy_progress(Site s, Site dst) {
  // The x-leg is walked first; progress = -(remaining L1 distance).
  return -static_cast<std::int64_t>(lattice_distance(s, dst));
}
}  // namespace

Site MeshRouter::next_on_xy_path(Site cur, Site dst) {
  if (cur.x != dst.x) return {cur.x + (dst.x > cur.x ? 1 : -1), cur.y};
  if (cur.y != dst.y) return {cur.x, cur.y + (dst.y > cur.y ? 1 : -1)};
  return cur;
}

bool MeshRouter::on_remaining_path(Site s, Site from, Site dst) {
  // x-y path from `from`: first the horizontal segment at y = from.y from
  // from.x to dst.x, then the vertical segment at x = dst.x.
  const bool on_horizontal =
      s.y == from.y && s.x >= std::min(from.x, dst.x) && s.x <= std::max(from.x, dst.x);
  const bool on_vertical =
      s.x == dst.x && s.y >= std::min(from.y, dst.y) && s.y <= std::max(from.y, dst.y);
  if (!on_horizontal && !on_vertical) return false;
  return xy_progress(s, dst) > xy_progress(from, dst);
}

MeshRoute MeshRouter::route(Site src, Site dst, MeshRouteScratch& scratch) const {
  MeshRoute result;
  if (!grid_->in_bounds(src) || !grid_->in_bounds(dst)) return result;
  ++result.probes;  // src openness
  if (!grid_->open(src)) return result;
  result.path.push_back(src);
  Site cur = src;

  if (scratch.stamp.size() != grid_->num_sites()) {
    scratch.parent.assign(grid_->num_sites(), 0);
    scratch.stamp.assign(grid_->num_sites(), 0);
    scratch.epoch = 0;
  }

  // Each loop iteration makes strict progress along the x-y path, so the
  // loop terminates after at most width+height successful steps plus the
  // BFS detours.
  while (!(cur == dst)) {
    const Site next = next_on_xy_path(cur, dst);
    ++result.probes;  // isOpen(next): ask the relay toward `next`
    if (grid_->open(next)) {
      result.path.push_back(next);
      cur = next;
      continue;
    }

    // Distributed BFS over open sites from `cur` until any site on the
    // remaining x-y path is found (Figure 9, step 4.else). Probes count
    // every site whose openness the search examines. Each invocation bumps
    // the scratch epoch: a site's parent entry is valid only while
    // stamped, so no per-invocation clear (DESIGN.md §2.4).
    ++result.bfs_invocations;
    if (++scratch.epoch == 0) {  // epoch wrapped: hard reset once per 2^32
      std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0u);
      scratch.epoch = 1;
    }
    scratch.queue.clear();
    const auto visit = [&](std::size_t vi, std::size_t from) {
      scratch.parent[vi] = static_cast<std::uint32_t>(from);
      scratch.stamp[vi] = scratch.epoch;
    };
    visit(grid_->index(cur), grid_->index(cur));
    scratch.queue.push_back(static_cast<std::uint32_t>(grid_->index(cur)));
    std::size_t head = 0;
    Site found{-1, -1};
    while (head < scratch.queue.size()) {
      const Site u = grid_->site_at(scratch.queue[head++]);
      bool done = false;
      grid_->for_each_neighbor(u, [&](Site v) {
        if (done) return;
        const std::size_t vi = grid_->index(v);
        if (scratch.stamp[vi] == scratch.epoch) return;  // already seen
        ++result.probes;  // examine v
        if (!grid_->open(v)) return;
        visit(vi, grid_->index(u));
        if (on_remaining_path(v, cur, dst)) {
          found = v;
          done = true;
          return;
        }
        scratch.queue.push_back(static_cast<std::uint32_t>(vi));
      });
      if (done) break;
    }
    if (found.x < 0) return result;  // cluster exhausted: unreachable

    // Walk the discovered detour (reverse the parent chain).
    std::vector<Site> detour;
    for (std::size_t vi = grid_->index(found);; vi = scratch.parent[vi]) {
      detour.push_back(grid_->site_at(vi));
      if (vi == grid_->index(cur)) break;
    }
    std::reverse(detour.begin(), detour.end());
    for (std::size_t i = 1; i < detour.size(); ++i) result.path.push_back(detour[i]);
    cur = found;
  }
  result.success = true;
  return result;
}

MeshRoute MeshRouter::route(Site src, Site dst) const {
  MeshRouteScratch scratch;
  return route(src, dst, scratch);
}

}  // namespace sens
