#include "sens/perc/site_grid.hpp"

#include <algorithm>
#include <stdexcept>

#include "sens/rng/rng.hpp"

namespace sens {

SiteGrid::SiteGrid(std::int32_t width, std::int32_t height, bool initially_open)
    : width_(width), height_(height) {
  if (width <= 0 || height <= 0) throw std::invalid_argument("SiteGrid: non-positive size");
  open_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
               initially_open ? 1 : 0);
}

SiteGrid SiteGrid::random(std::int32_t width, std::int32_t height, double p, std::uint64_t seed) {
  SiteGrid grid(width, height);
  Rng rng = Rng::stream(seed, 0xC0FFEE);
  for (auto& cell : grid.open_) cell = rng.bernoulli(p) ? 1 : 0;
  return grid;
}

std::size_t SiteGrid::open_count() const {
  return static_cast<std::size_t>(std::count(open_.begin(), open_.end(), std::uint8_t{1}));
}

double SiteGrid::open_fraction() const {
  return open_.empty() ? 0.0 : static_cast<double>(open_count()) / static_cast<double>(open_.size());
}

}  // namespace sens
