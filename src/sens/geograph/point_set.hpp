// Homogeneous Poisson point process on finite windows of R^2.
//
// Sampling is *cell consistent*: the plane is divided into unit cells
// aligned to the integer lattice, and the points of cell (i, j) are drawn
// from the deterministic stream (seed, i, j). Restricting a window or
// enlarging it therefore never changes the points inside — matching the
// restriction property of the Poisson process and making buffered-window
// experiments exactly consistent with their interior.
#pragma once

#include <cstdint>
#include <vector>

#include "sens/geometry/box.hpp"
#include "sens/geometry/vec2.hpp"

namespace sens {

struct PointSet {
  Box window;
  double intensity = 0.0;
  std::vector<Vec2> points;

  [[nodiscard]] std::size_t size() const { return points.size(); }
};

/// Sample PPP(lambda) restricted to `window` from `seed` (cell consistent).
[[nodiscard]] PointSet poisson_point_set(Box window, double lambda, std::uint64_t seed);

/// The scale-tier generation path (DESIGN.md §2.8): same point set as
/// `poisson_point_set`, bit-for-bit and in the same grid-major order (unit
/// cells, row-major), but produced by a two-pass count-then-fill sweep over
/// the per-cell streams — the store is allocated exactly once at its final
/// size (no growth reallocation, no over-reserve) and both passes run
/// chunk-parallel over cells, each cell writing its own disjoint slice.
/// Because every cell re-derives its stream (seed, ix, iy) independently,
/// the result is identical at any `--threads` value and to the serial path.
[[nodiscard]] PointSet poisson_point_set_ordered(Box window, double lambda, std::uint64_t seed);

/// Points of PPP(lambda) falling in a single axis-aligned box, sampled
/// directly (N ~ Poisson(lambda * area), uniform positions). Used by the
/// per-tile Monte-Carlo estimators where cell consistency is irrelevant.
[[nodiscard]] std::vector<Vec2> poisson_points_in_box(Box box, double lambda, std::uint64_t seed,
                                                      std::uint64_t stream);

}  // namespace sens
