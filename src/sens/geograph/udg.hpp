// Unit-disk graph builder: UDG(2, lambda) of Section 1.1 — an edge between
// every pair of points at Euclidean distance <= radius (paper: radius 1).
#pragma once

#include <span>

#include "sens/geometry/box.hpp"
#include "sens/geograph/geo_graph.hpp"

namespace sens {

/// Build the unit-disk graph over `points` inside `bounds` with connection
/// radius `radius` (grid-accelerated; O(n) expected for Poisson inputs).
[[nodiscard]] GeoGraph build_udg(std::span<const Vec2> points, Box bounds, double radius = 1.0);

}  // namespace sens
