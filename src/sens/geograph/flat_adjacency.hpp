// Moved to sens/graph/flat_adjacency.hpp (the type is pure topology, no
// geometry); this forwarding header keeps old include paths working.
#pragma once

#include "sens/graph/flat_adjacency.hpp"  // IWYU pragma: export
