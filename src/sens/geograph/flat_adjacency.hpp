// Flat CSR-style adjacency: one offsets array + one neighbors array.
//
// Replaces the nested `vector<vector<uint32_t>>` shape for batched query
// results (k-NN selections, radius collections): two allocations total
// instead of one per vertex, contiguous storage for cache-friendly sweeps,
// and chunk-parallel builders can write disjoint slices without
// synchronization (DESIGN.md §2.3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sens {

struct FlatAdjacency {
  std::vector<std::uint32_t> offsets;    ///< size() + 1 entries, offsets[0] == 0
  std::vector<std::uint32_t> neighbors;  ///< offsets.back() entries

  [[nodiscard]] std::size_t size() const { return offsets.empty() ? 0 : offsets.size() - 1; }

  [[nodiscard]] std::size_t degree(std::size_t i) const {
    return offsets[i + 1] - offsets[i];
  }

  /// The neighbor list of vertex i as a contiguous span.
  [[nodiscard]] std::span<const std::uint32_t> operator[](std::size_t i) const {
    return {neighbors.data() + offsets[i], neighbors.data() + offsets[i + 1]};
  }

  /// Expand to the legacy nested-vector shape (tests, compatibility).
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> to_nested() const {
    std::vector<std::vector<std::uint32_t>> out(size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      const auto nbrs = (*this)[i];
      out[i].assign(nbrs.begin(), nbrs.end());
    }
    return out;
  }
};

}  // namespace sens
