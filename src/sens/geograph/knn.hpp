// k-nearest-neighbor graph builder: NN(2, k) of Haggstrom-Meester — each
// point establishes undirected edges to the k points nearest to it; the graph
// is the union of those selections.
#pragma once

#include <span>

#include "sens/geograph/geo_graph.hpp"
#include "sens/graph/flat_adjacency.hpp"

namespace sens {

/// Build NN(2, k) over `points`. Ties (measure zero for Poisson inputs) are
/// broken by point index, per the paper's "any tie-breaking mechanism".
[[nodiscard]] GeoGraph build_knn_graph(std::span<const Vec2> points, std::size_t k);

/// Directed out-neighbor lists (each vertex's min(k, n-1) nearest, sorted by
/// (distance, index)) in flat CSR form. Built chunk-parallel with one
/// kd-tree scratch buffer per chunk — allocation-free per query, and every
/// vertex's slice is written independently, so the result is identical at
/// any thread count.
[[nodiscard]] FlatAdjacency knn_selections_flat(std::span<const Vec2> points, std::size_t k);

/// Legacy nested-vector shape of `knn_selections_flat`, kept for tests and
/// the occupancy-cap ablation.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> knn_selections(std::span<const Vec2> points,
                                                                     std::size_t k);

}  // namespace sens
