#include "sens/geograph/knn.hpp"

#include "sens/spatial/kdtree.hpp"
#include "sens/support/parallel.hpp"

namespace sens {

std::vector<std::vector<std::uint32_t>> knn_selections(std::span<const Vec2> points, std::size_t k) {
  KdTree tree(points);
  std::vector<std::vector<std::uint32_t>> out(points.size());
  // Chunked dispatch: one lambda invocation per index chunk, so per-chunk
  // state (a KdTree scratch buffer, once nearest() grows a reusable-buffer
  // overload — see ROADMAP) has a natural place to live.
  parallel_for_chunks(points.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = tree.nearest(points[i], k, static_cast<std::uint32_t>(i));
    }
  });
  return out;
}

GeoGraph build_knn_graph(std::span<const Vec2> points, std::size_t k) {
  GeoGraph gg;
  gg.points.assign(points.begin(), points.end());
  const auto selections = knn_selections(points, k);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(points.size() * k);
  for (std::uint32_t i = 0; i < selections.size(); ++i)
    for (std::uint32_t j : selections[i]) edges.emplace_back(i, j);
  gg.graph = CsrGraph::from_edges(points.size(), std::move(edges));
  return gg;
}

}  // namespace sens
