#include "sens/geograph/knn.hpp"

#include <algorithm>

#include "sens/spatial/grid_knn.hpp"
#include "sens/support/checked.hpp"
#include "sens/support/parallel.hpp"

namespace sens {

FlatAdjacency knn_selections_flat(std::span<const Vec2> points, std::size_t k) {
  const std::size_t n = points.size();
  FlatAdjacency adj;
  adj.offsets.assign(n + 1, 0);
  if (n == 0) return adj;
  // Every vertex has exactly min(k, n - 1) out-neighbors (self excluded), so
  // the offsets are uniform and each chunk writes its own disjoint slice.
  const std::size_t deg = std::min(k, n - 1);
  (void)checked_u32(n * deg, "knn_selections_flat: selection");  // DESIGN.md §2.8
  for (std::size_t i = 0; i < n; ++i)
    adj.offsets[i + 1] = static_cast<std::uint32_t>((i + 1) * deg);
  adj.neighbors.resize(n * deg);
  if (deg == 0) return adj;

  // GridKnn returns the same neighbor lists as KdTree::nearest (same
  // (distance, index) tie-break) and wins on the batched self-query
  // workload; one scratch per chunk keeps the hot path allocation-free.
  const GridKnn index(points, k);
  auto fill = [&](std::size_t begin, std::size_t end, GridKnn::QueryScratch& scratch,
                  std::vector<std::uint32_t>& found) {
    for (std::size_t i = begin; i < end; ++i) {
      index.nearest_into(points[i], k, static_cast<std::uint32_t>(i), scratch, found);
      std::copy(found.begin(), found.end(),
                adj.neighbors.begin() + static_cast<std::ptrdiff_t>(i * deg));
    }
  };
  if (thread_count() == 1) {
    GridKnn::QueryScratch scratch;
    std::vector<std::uint32_t> found;
    fill(0, n, scratch, found);
  } else {
    parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
      GridKnn::QueryScratch scratch;
      std::vector<std::uint32_t> found;
      fill(begin, end, scratch, found);
    });
  }
  return adj;
}

std::vector<std::vector<std::uint32_t>> knn_selections(std::span<const Vec2> points,
                                                       std::size_t k) {
  return knn_selections_flat(points, k).to_nested();
}

GeoGraph build_knn_graph(std::span<const Vec2> points, std::size_t k) {
  GeoGraph gg;
  gg.points.assign(points.begin(), points.end());
  // NN(2, k) is the undirected union of the directed selections; the CSR
  // is symmetrized straight from the flat lists (no edge-pair list).
  gg.graph = CsrGraph::from_selections(knn_selections_flat(points, k));
  return gg;
}

}  // namespace sens
