#include "sens/geograph/point_set.hpp"

#include <cmath>
#include <stdexcept>

#include "sens/rng/rng.hpp"

namespace sens {

PointSet poisson_point_set(Box window, double lambda, std::uint64_t seed) {
  if (lambda < 0.0) throw std::invalid_argument("poisson_point_set: lambda < 0");
  PointSet ps;
  ps.window = window;
  ps.intensity = lambda;
  if (lambda == 0.0 || window.area() <= 0.0) return ps;

  const auto ix0 = static_cast<long>(std::floor(window.lo.x));
  const auto iy0 = static_cast<long>(std::floor(window.lo.y));
  const auto ix1 = static_cast<long>(std::ceil(window.hi.x));
  const auto iy1 = static_cast<long>(std::ceil(window.hi.y));

  // Expected points per unit cell is lambda; reserve generously.
  ps.points.reserve(static_cast<std::size_t>(lambda * window.area() * 1.2) + 16);

  for (long iy = iy0; iy < iy1; ++iy) {
    for (long ix = ix0; ix < ix1; ++ix) {
      Rng rng = Rng::stream(seed, static_cast<std::uint64_t>(ix) * 0x9E3779B9ULL + 0x12345,
                            static_cast<std::uint64_t>(iy) * 0x85EBCA6BULL + 0x6789A);
      const std::uint64_t n = rng.poisson(lambda);
      for (std::uint64_t i = 0; i < n; ++i) {
        const Vec2 p{static_cast<double>(ix) + rng.uniform(),
                     static_cast<double>(iy) + rng.uniform()};
        if (window.contains(p)) ps.points.push_back(p);
      }
    }
  }
  return ps;
}

std::vector<Vec2> poisson_points_in_box(Box box, double lambda, std::uint64_t seed,
                                        std::uint64_t stream) {
  std::vector<Vec2> out;
  if (lambda <= 0.0 || box.area() <= 0.0) return out;
  Rng rng = Rng::stream(seed, stream);
  const std::uint64_t n = rng.poisson(lambda * box.area());
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back({rng.uniform(box.lo.x, box.hi.x), rng.uniform(box.lo.y, box.hi.y)});
  }
  return out;
}

}  // namespace sens
