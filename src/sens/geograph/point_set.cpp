#include "sens/geograph/point_set.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "sens/rng/rng.hpp"
#include "sens/support/parallel.hpp"

namespace sens {

namespace {

/// The deterministic stream of unit cell (ix, iy): one source of truth for
/// both generation paths — the cell-consistency contract says a cell's
/// points depend only on (seed, ix, iy), never on the window or the order
/// cells are visited in.
Rng cell_rng(std::uint64_t seed, long ix, long iy) {
  return Rng::stream(seed, static_cast<std::uint64_t>(ix) * 0x9E3779B9ULL + 0x12345,
                     static_cast<std::uint64_t>(iy) * 0x85EBCA6BULL + 0x6789A);
}

struct CellRange {
  long ix0, iy0;
  std::size_t nx, ny;
  [[nodiscard]] std::size_t cells() const { return nx * ny; }
};

CellRange cell_range(Box window) {
  const auto ix0 = static_cast<long>(std::floor(window.lo.x));
  const auto iy0 = static_cast<long>(std::floor(window.lo.y));
  const auto ix1 = static_cast<long>(std::ceil(window.hi.x));
  const auto iy1 = static_cast<long>(std::ceil(window.hi.y));
  return {ix0, iy0, static_cast<std::size_t>(ix1 - ix0), static_cast<std::size_t>(iy1 - iy0)};
}

}  // namespace

PointSet poisson_point_set(Box window, double lambda, std::uint64_t seed) {
  if (lambda < 0.0) throw std::invalid_argument("poisson_point_set: lambda < 0");
  PointSet ps;
  ps.window = window;
  ps.intensity = lambda;
  if (lambda == 0.0 || window.area() <= 0.0) return ps;

  const CellRange range = cell_range(window);

  // Expected points per unit cell is lambda; reserve generously.
  ps.points.reserve(static_cast<std::size_t>(lambda * window.area() * 1.2) + 16);

  for (long iy = range.iy0; iy < range.iy0 + static_cast<long>(range.ny); ++iy) {
    for (long ix = range.ix0; ix < range.ix0 + static_cast<long>(range.nx); ++ix) {
      Rng rng = cell_rng(seed, ix, iy);
      const std::uint64_t n = rng.poisson(lambda);
      for (std::uint64_t i = 0; i < n; ++i) {
        const Vec2 p{static_cast<double>(ix) + rng.uniform(),
                     static_cast<double>(iy) + rng.uniform()};
        if (window.contains(p)) ps.points.push_back(p);
      }
    }
  }
  return ps;
}

PointSet poisson_point_set_ordered(Box window, double lambda, std::uint64_t seed) {
  if (lambda < 0.0) throw std::invalid_argument("poisson_point_set_ordered: lambda < 0");
  PointSet ps;
  ps.window = window;
  ps.intensity = lambda;
  if (lambda == 0.0 || window.area() <= 0.0) return ps;

  const CellRange range = cell_range(window);
  const std::size_t cells = range.cells();
  const auto cell_xy = [&](std::size_t c) {
    return std::pair<long, long>{range.ix0 + static_cast<long>(c % range.nx),
                                 range.iy0 + static_cast<long>(c / range.nx)};
  };
  // A cell strictly inside the window keeps every generated point (points of
  // (ix, iy) lie in [ix, ix+1) x [iy, iy+1) and containment is half-open),
  // so the count pass only draws positions for boundary cells.
  const auto interior = [&](long ix, long iy) {
    return static_cast<double>(ix) >= window.lo.x &&
           static_cast<double>(ix + 1) <= window.hi.x &&
           static_cast<double>(iy) >= window.lo.y && static_cast<double>(iy + 1) <= window.hi.y;
  };

  // Pass 1: per-cell kept-point counts (each cell re-derives its own stream,
  // so the pass parallelizes with no shared state).
  std::vector<std::uint32_t> counts(cells, 0);
  parallel_for(cells, [&](std::size_t c) {
    const auto [ix, iy] = cell_xy(c);
    Rng rng = cell_rng(seed, ix, iy);
    const std::uint64_t n = rng.poisson(lambda);
    if (interior(ix, iy)) {
      counts[c] = static_cast<std::uint32_t>(n);
      return;
    }
    std::uint32_t kept = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      const Vec2 p{static_cast<double>(ix) + rng.uniform(),
                   static_cast<double>(iy) + rng.uniform()};
      kept += window.contains(p) ? 1u : 0u;
    }
    counts[c] = kept;
  });

  std::vector<std::uint64_t> offsets(cells + 1, 0);
  for (std::size_t c = 0; c < cells; ++c) offsets[c + 1] = offsets[c] + counts[c];
  ps.points.resize(static_cast<std::size_t>(offsets[cells]));  // exact, final

  // Pass 2: redraw each cell's stream from the top and fill its disjoint
  // slice — grid-major order by construction, bit-identical to the serial
  // append loop above.
  parallel_for(cells, [&](std::size_t c) {
    const auto [ix, iy] = cell_xy(c);
    Rng rng = cell_rng(seed, ix, iy);
    const std::uint64_t n = rng.poisson(lambda);
    Vec2* out = ps.points.data() + offsets[c];
    const bool keep_all = interior(ix, iy);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Vec2 p{static_cast<double>(ix) + rng.uniform(),
                   static_cast<double>(iy) + rng.uniform()};
      if (keep_all || window.contains(p)) *out++ = p;
    }
  });
  return ps;
}

std::vector<Vec2> poisson_points_in_box(Box box, double lambda, std::uint64_t seed,
                                        std::uint64_t stream) {
  std::vector<Vec2> out;
  if (lambda <= 0.0 || box.area() <= 0.0) return out;
  Rng rng = Rng::stream(seed, stream);
  const std::uint64_t n = rng.poisson(lambda * box.area());
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back({rng.uniform(box.lo.x, box.hi.x), rng.uniform(box.lo.y, box.hi.y)});
  }
  return out;
}

}  // namespace sens
