// A graph embedded in the plane: CSR topology + vertex coordinates, plus the
// Euclidean/power path metrics shared by every experiment.
#pragma once

#include <cstdint>
#include <cmath>
#include <span>
#include <vector>

#include "sens/geometry/vec2.hpp"
#include "sens/graph/csr.hpp"

namespace sens {

struct GeoGraph {
  std::vector<Vec2> points;
  CsrGraph graph;

  [[nodiscard]] std::size_t size() const { return points.size(); }

  [[nodiscard]] double edge_length(std::uint32_t u, std::uint32_t v) const {
    return dist(points[u], points[v]);
  }

  /// Sum of Euclidean edge lengths along a vertex path.
  [[nodiscard]] double path_length(std::span<const std::uint32_t> path) const {
    double total = 0.0;
    for (std::size_t i = 1; i < path.size(); ++i) total += edge_length(path[i - 1], path[i]);
    return total;
  }

  /// Radio energy of a path under the power-law model sum d_i^beta
  /// (Li-Wan-Wang, beta in [2, 5]).
  [[nodiscard]] double path_power(std::span<const std::uint32_t> path, double beta) const {
    double total = 0.0;
    for (std::size_t i = 1; i < path.size(); ++i)
      total += std::pow(edge_length(path[i - 1], path[i]), beta);
    return total;
  }

  /// Per-arc Euclidean lengths aligned with the CSR adjacency — the flat
  /// weight array Dijkstra's inner loop reads (DESIGN.md §2.4). Rebuild
  /// after any change to `graph` or `points`.
  [[nodiscard]] std::vector<double> length_arc_weights() const {
    return graph.arc_weights(
        [this](std::uint32_t u, std::uint32_t v) { return edge_length(u, v); });
  }

  /// Per-arc radio powers d(u,v)^beta aligned with the CSR adjacency.
  [[nodiscard]] std::vector<double> power_arc_weights(double beta) const {
    return graph.arc_weights([this, beta](std::uint32_t u, std::uint32_t v) {
      return std::pow(edge_length(u, v), beta);
    });
  }
};

}  // namespace sens
