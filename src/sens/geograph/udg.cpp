#include "sens/geograph/udg.hpp"

#include <stdexcept>

#include "sens/graph/flat_adjacency.hpp"
#include "sens/spatial/grid_index.hpp"

namespace sens {

GeoGraph build_udg(std::span<const Vec2> points, Box bounds, double radius) {
  if (radius <= 0.0) throw std::invalid_argument("build_udg: radius <= 0");
  GeoGraph gg;
  gg.points.assign(points.begin(), points.end());

  // Two-pass count-then-write straight into CSR shape (DESIGN.md §2.3/§2.4):
  // pass 1 counts each vertex's in-radius neighbors, pass 2 writes the
  // disjoint adjacency slices — no intermediate edge-pair list, no global
  // sort, and the result is bit-identical at any thread count. The
  // adjacency is symmetric by construction because dist2 is exact-symmetric
  // in its arguments.
  const GridIndex index(points, bounds, radius);
  FlatAdjacency adj = build_flat_adjacency(
      points.size(),
      [&](std::size_t i) {
        std::size_t count = 0;
        index.for_each_in_radius(points[i], radius,
                                 [&](std::uint32_t j) { count += j != i; });
        return count;
      },
      [&](std::size_t i, std::uint32_t* out) {
        index.for_each_in_radius(points[i], radius, [&](std::uint32_t j) {
          if (j != i) *out++ = j;
        });
      });
  gg.graph = CsrGraph::from_symmetric_adjacency(std::move(adj));
  return gg;
}

}  // namespace sens
