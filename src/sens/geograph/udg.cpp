#include "sens/geograph/udg.hpp"

#include <stdexcept>

#include "sens/spatial/grid_index.hpp"
#include "sens/support/parallel.hpp"

namespace sens {

GeoGraph build_udg(std::span<const Vec2> points, Box bounds, double radius) {
  if (radius <= 0.0) throw std::invalid_argument("build_udg: radius <= 0");
  GeoGraph gg;
  gg.points.assign(points.begin(), points.end());

  const GridIndex index(points, bounds, radius);
  // Chunk-parallel edge discovery via the chunk-ordered collector
  // (DESIGN.md §2.3): the edge list is bit-identical at any thread count.
  auto edges = collect_chunk_ordered<std::pair<std::uint32_t, std::uint32_t>>(
      points.size(), [&](std::size_t begin, std::size_t end, auto& sink) {
        sink.reserve(sink.size() + (end - begin) * 4);
        for (std::size_t i = begin; i < end; ++i) {
          const auto u = static_cast<std::uint32_t>(i);
          index.for_each_in_radius(points[i], radius, [&](std::uint32_t j) {
            if (j > u) sink.emplace_back(u, j);
          });
        }
      });
  gg.graph = CsrGraph::from_edges(points.size(), std::move(edges));
  return gg;
}

}  // namespace sens
