#include "sens/geograph/udg.hpp"

#include <stdexcept>

#include "sens/spatial/grid_index.hpp"

namespace sens {

GeoGraph build_udg(std::span<const Vec2> points, Box bounds, double radius) {
  if (radius <= 0.0) throw std::invalid_argument("build_udg: radius <= 0");
  GeoGraph gg;
  gg.points.assign(points.begin(), points.end());

  GridIndex index(points, bounds, radius);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(points.size() * 4);
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    index.for_each_in_radius(points[i], radius, [&](std::uint32_t j) {
      if (j > i) edges.emplace_back(i, j);
    });
  }
  gg.graph = CsrGraph::from_edges(points.size(), std::move(edges));
  return gg;
}

}  // namespace sens
