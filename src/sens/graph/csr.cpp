#include "sens/graph/csr.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sens/support/checked.hpp"

namespace sens {

namespace {

/// Vertex ids, loop counters and offsets are all std::uint32_t, so a graph
/// must satisfy n < 2^32 and 2m <= 2^32 - 1 (arc indices). Checked at every
/// construction entry point instead of wrapping silently (DESIGN.md §2.8).
void check_index_width(std::size_t n, std::size_t arcs) {
  if (n >= std::numeric_limits<std::uint32_t>::max()) {
    throw std::overflow_error("CsrGraph: vertex count " + std::to_string(n) +
                              " exceeds the 32-bit id space");
  }
  (void)checked_u32(arcs, "CsrGraph: arc");
}

/// Sort every vertex's adjacency slice in place (chunk-parallel; slices are
/// disjoint, so the result is identical at any thread count).
void sort_vertex_lists(const std::vector<std::uint32_t>& offsets,
                       std::vector<std::uint32_t>& adjacency) {
  const std::size_t n = offsets.empty() ? 0 : offsets.size() - 1;
  parallel_for(n, [&](std::size_t v) {
    std::sort(adjacency.begin() + offsets[v], adjacency.begin() + offsets[v + 1]);
  });
}

/// In-place per-vertex dedupe of sorted adjacency lists; rewrites offsets
/// and shrinks adjacency. Serial single pass (write cursor never overtakes
/// the read cursor).
void dedupe_vertex_lists(std::vector<std::uint32_t>& offsets,
                         std::vector<std::uint32_t>& adjacency) {
  const std::size_t n = offsets.empty() ? 0 : offsets.size() - 1;
  std::uint32_t write = 0;
  std::uint32_t read_begin = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint32_t read_end = offsets[v + 1];
    offsets[v] = write;
    for (std::uint32_t a = read_begin; a < read_end; ++a) {
      if (a > read_begin && adjacency[a] == adjacency[a - 1]) continue;
      adjacency[write++] = adjacency[a];
    }
    read_begin = read_end;
  }
  offsets[n] = write;
  adjacency.resize(write);
}

}  // namespace

/// One counting pass over the normalized (sorted, symmetric, loop-free,
/// deduped) adjacency. Scanning sources in ascending order, the arcs into
/// any vertex v arrive in ascending source order — exactly the order of
/// v's sorted neighbor list — so a per-vertex cursor pairs arc (u -> v)
/// with its reverse slot (v -> u) without any search.
void CsrGraph::build_reverse_arcs() {
  reverse_arc_.resize(adjacency_.size());
  std::vector<std::uint32_t> cursor(offsets_.begin(),
                                    offsets_.empty() ? offsets_.begin() : offsets_.end() - 1);
  for (std::uint32_t u = 0; u < num_vertices(); ++u) {
    for (std::uint32_t a = offsets_[u]; a < offsets_[u + 1]; ++a) {
      reverse_arc_[a] = cursor[adjacency_[a]]++;
    }
  }
}

CsrGraph CsrGraph::Builder::build(std::size_t n) && {
  check_index_width(n, endpoints_.size());  // endpoints_.size() == 2m pre-merge
  CsrGraph g;
  g.offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i + 1 < endpoints_.size(); i += 2) {
    const std::uint32_t u = endpoints_[i];
    const std::uint32_t v = endpoints_[i + 1];
    if (u >= n || v >= n) throw std::out_of_range("CsrGraph: vertex id out of range");
    if (u == v) continue;  // self loops dropped
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];
  g.adjacency_.resize(g.offsets_[n]);  // exact: 2m pre-merge
  std::vector<std::uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (std::size_t i = 0; i + 1 < endpoints_.size(); i += 2) {
    const std::uint32_t u = endpoints_[i];
    const std::uint32_t v = endpoints_[i + 1];
    if (u == v) continue;
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  endpoints_.clear();
  sort_vertex_lists(g.offsets_, g.adjacency_);
  dedupe_vertex_lists(g.offsets_, g.adjacency_);
  g.build_reverse_arcs();
  return g;
}

CsrGraph CsrGraph::from_edges(std::size_t n,
                              std::vector<std::pair<std::uint32_t, std::uint32_t>> edges) {
  Builder b;
  b.reserve(edges.size());
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  edges.clear();
  return std::move(b).build(n);
}

CsrGraph CsrGraph::from_symmetric_adjacency(FlatAdjacency adj, bool lists_sorted) {
  if (!adj.offsets.empty() && adj.offsets.back() != adj.neighbors.size()) {
    throw std::invalid_argument("CsrGraph: offsets and neighbors disagree");
  }
  check_index_width(adj.size(), adj.neighbors.size());
  CsrGraph g;
  g.offsets_ = std::move(adj.offsets);
  g.adjacency_ = std::move(adj.neighbors);
  if (g.offsets_.empty()) g.offsets_.assign(1, 0);
  if (!lists_sorted) sort_vertex_lists(g.offsets_, g.adjacency_);
  g.build_reverse_arcs();
  return g;
}

CsrGraph CsrGraph::from_selections(FlatAdjacency sel) {
  const std::size_t n = sel.size();
  if (!sel.offsets.empty() && sel.offsets.back() != sel.neighbors.size()) {
    throw std::invalid_argument("CsrGraph: offsets and neighbors disagree");
  }
  check_index_width(n, sel.neighbors.size());
  for (const std::uint32_t v : sel.neighbors) {
    if (v >= n) throw std::out_of_range("CsrGraph: vertex id out of range");
  }
  sort_vertex_lists(sel.offsets, sel.neighbors);

  // Reverse selections by counting sort. Filling in ascending source order
  // leaves every reverse list already sorted.
  FlatAdjacency rev;
  rev.offsets.assign(n + 1, 0);
  for (const std::uint32_t v : sel.neighbors) ++rev.offsets[v + 1];
  for (std::size_t v = 0; v < n; ++v) rev.offsets[v + 1] += rev.offsets[v];
  rev.neighbors.resize(sel.neighbors.size());
  {
    std::vector<std::uint32_t> cursor(rev.offsets.begin(), rev.offsets.end() - 1);
    for (std::size_t u = 0; u < n; ++u) {
      for (const std::uint32_t v : sel[u]) {
        rev.neighbors[cursor[v]++] = static_cast<std::uint32_t>(u);
      }
    }
  }

  // Per-vertex sorted-set union of out- and in-selections, dropping self
  // entries and duplicates; `emit` is counted in pass 1 and written in
  // pass 2 of the two-pass builder.
  auto merge = [&](std::size_t i, auto&& emit) {
    const auto u = static_cast<std::uint32_t>(i);
    const auto out = sel[i];
    const auto in = rev[i];
    std::size_t a = 0;
    std::size_t b = 0;
    std::uint32_t last = u;  // sentinel: also drops a leading self entry
    bool has_last = false;
    while (a < out.size() || b < in.size()) {
      std::uint32_t next;
      if (b == in.size() || (a < out.size() && out[a] <= in[b])) {
        next = out[a++];
      } else {
        next = in[b++];
      }
      if (next == u || (has_last && next == last)) continue;
      emit(next);
      last = next;
      has_last = true;
    }
  };
  FlatAdjacency merged = build_flat_adjacency(
      n,
      [&](std::size_t i) {
        std::size_t count = 0;
        merge(i, [&](std::uint32_t) { ++count; });
        return count;
      },
      [&](std::size_t i, std::uint32_t* out) {
        merge(i, [&](std::uint32_t v) { *out++ = v; });
      });
  return from_symmetric_adjacency(std::move(merged), /*lists_sorted=*/true);
}

namespace {

/// Directed per-vertex view of an undirected (u < v) pair delta, built by
/// counting sort. Vertex x's list holds every partner, ascending: the
/// reverse direction fills first (partners below x, arriving in ascending
/// pair order), then the forward direction (partners above x) — so each
/// list is globally sorted without a sort call. Validates shape: u < v,
/// ids < n, strictly ascending pairs.
FlatAdjacency directed_delta(std::size_t n,
                             std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs,
                             const char* bad_shape) {
  FlatAdjacency adj;
  adj.offsets.assign(n + 1, 0);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto [u, v] = pairs[i];
    if (u >= v) throw std::invalid_argument(bad_shape);
    if (v >= n) throw std::out_of_range("CsrGraph::apply_edge_delta: vertex id out of range");
    if (i > 0 && !(pairs[i - 1] < pairs[i])) throw std::invalid_argument(bad_shape);
    ++adj.offsets[u + 1];
    ++adj.offsets[v + 1];
  }
  // Checked prefix sum (§2.8): an adversarial grow delta can push the
  // directed total past the 32-bit offset space, which must fail loudly
  // instead of wrapping into a corrupt counting sort.
  std::uint64_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    total += adj.offsets[v + 1];
    adj.offsets[v + 1] = checked_u32(total, "CsrGraph::apply_edge_delta delta offsets");
  }
  adj.neighbors.resize(adj.offsets[n]);
  std::vector<std::uint32_t> cursor(adj.offsets.begin(), adj.offsets.end() - 1);
  for (const auto& [u, v] : pairs) adj.neighbors[cursor[v]++] = u;
  for (const auto& [u, v] : pairs) adj.neighbors[cursor[u]++] = v;
  return adj;
}

}  // namespace

CsrGraph CsrGraph::apply_edge_delta(
    const CsrGraph& g, std::size_t n_new,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> removed,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> added) {
  const std::size_t n_old = g.num_vertices();
  // Entry guard (§2.8): the delta path predates the checked builders and
  // must reject a grow delta whose result outruns the 32-bit id/arc space
  // before any counting sort runs. Removals are validated to exist later,
  // so the final arc count is exact when the delta is well-formed.
  const std::size_t grown = g.num_arcs() + 2 * added.size();
  check_index_width(n_new, grown >= 2 * removed.size() ? grown - 2 * removed.size() : 0);
  const FlatAdjacency rem = directed_delta(
      n_old, removed, "CsrGraph::apply_edge_delta: removed list not sorted (u < v) pairs");
  const FlatAdjacency add = directed_delta(
      n_new, added, "CsrGraph::apply_edge_delta: added list not sorted (u < v) pairs");
  for (std::size_t v = n_new; v < n_old; ++v) {
    if (rem.degree(v) != g.degree(static_cast<std::uint32_t>(v))) {
      throw std::invalid_argument("CsrGraph::apply_edge_delta: dropped vertex keeps edges");
    }
  }

  // Per-vertex three-way merge: (old list minus removals) union additions,
  // all sorted — `emit` is counted in pass 1 and written in pass 2 of the
  // two-pass builder. Validation rides along: every removal must match an
  // old neighbor, no addition may collide with a surviving one.
  constexpr std::span<const std::uint32_t> kEmpty;
  auto merge = [&](std::size_t i, auto&& emit) {
    const auto u = static_cast<std::uint32_t>(i);
    const std::span<const std::uint32_t> old = i < n_old ? g.neighbors(u) : kEmpty;
    const std::span<const std::uint32_t> rm = i < n_old ? rem[i] : kEmpty;
    const std::span<const std::uint32_t> ad = add[i];
    std::size_t a = 0;
    std::size_t r = 0;
    std::size_t b = 0;
    while (a < old.size() || b < ad.size()) {
      if (a < old.size() && b < ad.size() && old[a] == ad[b]) {
        // Even a removed-then-added edge is rejected: the two deltas must
        // be disjoint from each other and from the surviving set.
        throw std::invalid_argument("CsrGraph::apply_edge_delta: added edge already present");
      }
      if (a < old.size() && (b == ad.size() || old[a] < ad[b])) {
        const std::uint32_t x = old[a++];
        if (r < rm.size() && rm[r] == x) {
          ++r;
          continue;
        }
        emit(x);
      } else {
        emit(ad[b++]);
      }
    }
    if (r != rm.size()) {
      throw std::invalid_argument("CsrGraph::apply_edge_delta: removed edge not present");
    }
  };
  // Vertices with no delta entries (the vast majority under incremental
  // churn) skip the merge entirely: their new list is their old list.
  auto untouched = [&](std::size_t i) {
    return i < n_old && rem[i].empty() && add[i].empty();
  };
  FlatAdjacency merged = build_flat_adjacency(
      n_new,
      [&](std::size_t i) {
        if (untouched(i)) return g.degree(static_cast<std::uint32_t>(i));
        std::size_t count = 0;
        merge(i, [&](std::uint32_t) { ++count; });
        return count;
      },
      [&](std::size_t i, std::uint32_t* out) {
        if (untouched(i)) {
          const auto old = g.neighbors(static_cast<std::uint32_t>(i));
          std::copy(old.begin(), old.end(), out);
          return;
        }
        merge(i, [&](std::uint32_t v) { *out++ = v; });
      });
  return from_symmetric_adjacency(std::move(merged), /*lists_sorted=*/true);
}

std::size_t CsrGraph::arc_index(std::uint32_t u, std::uint32_t v) const {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  return offsets_[u] + static_cast<std::size_t>(it - nbrs.begin());
}

std::size_t CsrGraph::max_degree() const {
  std::size_t best = 0;
  for (std::size_t v = 0; v < num_vertices(); ++v) best = std::max(best, degree(static_cast<std::uint32_t>(v)));
  return best;
}

double CsrGraph::mean_degree() const {
  const std::size_t n = num_vertices();
  return n == 0 ? 0.0 : 2.0 * static_cast<double>(num_edges()) / static_cast<double>(n);
}

bool CsrGraph::has_edge(std::uint32_t u, std::uint32_t v) const {
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> CsrGraph::edge_list() const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  out.reserve(num_edges());
  for (std::uint32_t u = 0; u < num_vertices(); ++u)
    for (std::uint32_t v : neighbors(u))
      if (u < v) out.emplace_back(u, v);
  return out;
}

}  // namespace sens
