#include "sens/graph/csr.hpp"

#include <algorithm>
#include <stdexcept>

namespace sens {

CsrGraph CsrGraph::from_edges(std::size_t n,
                              std::vector<std::pair<std::uint32_t, std::uint32_t>> edges) {
  CsrGraph g;
  // Normalize: drop self loops, order endpoints, dedupe.
  std::erase_if(edges, [](const auto& e) { return e.first == e.second; });
  for (auto& e : edges) {
    if (e.first > e.second) std::swap(e.first, e.second);
    if (e.second >= n) throw std::out_of_range("CsrGraph: vertex id out of range");
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  std::vector<std::uint32_t> degree(n, 0);
  for (const auto& [u, v] : edges) {
    ++degree[u];
    ++degree[v];
  }
  g.offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + degree[v];
  g.adjacency_.resize(2 * edges.size());
  std::vector<std::uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  for (std::size_t v = 0; v < n; ++v)
    std::sort(g.adjacency_.begin() + g.offsets_[v], g.adjacency_.begin() + g.offsets_[v + 1]);
  return g;
}

std::size_t CsrGraph::max_degree() const {
  std::size_t best = 0;
  for (std::size_t v = 0; v < num_vertices(); ++v) best = std::max(best, degree(static_cast<std::uint32_t>(v)));
  return best;
}

double CsrGraph::mean_degree() const {
  const std::size_t n = num_vertices();
  return n == 0 ? 0.0 : 2.0 * static_cast<double>(num_edges()) / static_cast<double>(n);
}

bool CsrGraph::has_edge(std::uint32_t u, std::uint32_t v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> CsrGraph::edge_list() const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  out.reserve(num_edges());
  for (std::uint32_t u = 0; u < num_vertices(); ++u)
    for (std::uint32_t v : neighbors(u))
      if (u < v) out.emplace_back(u, v);
  return out;
}

}  // namespace sens
