// Connected-component labeling and component statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "sens/graph/csr.hpp"

namespace sens {

struct Components {
  std::vector<std::uint32_t> label;  ///< component id per vertex (dense, 0-based)
  std::vector<std::uint32_t> size;   ///< size per component id
  std::uint32_t largest = 0;         ///< id of the largest component (0 if no vertices)

  [[nodiscard]] std::size_t count() const { return size.size(); }
  [[nodiscard]] std::uint32_t largest_size() const { return size.empty() ? 0 : size[largest]; }
  [[nodiscard]] bool in_largest(std::uint32_t v) const { return label[v] == largest; }

  /// Vertices of the largest component, sorted.
  [[nodiscard]] std::vector<std::uint32_t> largest_members() const;
};

[[nodiscard]] Components connected_components(const CsrGraph& g);

}  // namespace sens
