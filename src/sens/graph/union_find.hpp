// Disjoint-set union with path halving and union by size.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace sens {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::uint32_t{0});
  }

  [[nodiscard]] std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Unites the sets of a and b; returns true if they were distinct.
  bool unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  [[nodiscard]] bool connected(std::uint32_t a, std::uint32_t b) { return find(a) == find(b); }

  /// Size of the set containing x.
  [[nodiscard]] std::uint32_t set_size(std::uint32_t x) { return size_[find(x)]; }

  [[nodiscard]] std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

}  // namespace sens
