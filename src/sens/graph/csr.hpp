// Compressed-sparse-row undirected graph.
//
// All graphs in this project (UDG, kNN, SENS overlays, baselines) are built
// once and then queried many times, so CSR is the natural representation:
// adjacency of vertex v is the contiguous span neighbors(v). Each undirected
// edge {u, v} is stored as two *arcs* (u -> v and v -> u); the arc index is
// the key the traversal layer uses to attach per-edge data — see
// `arc_weights` and the traversal contract in DESIGN.md §2.4.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sens/graph/flat_adjacency.hpp"
#include "sens/support/parallel.hpp"

namespace sens {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Incremental edge accumulator: `add_edge` per undirected edge, then
  /// `build(n)` normalizes (self loops dropped, duplicates merged, vertex
  /// ids validated) by counting sort — no global edge sort, no pair
  /// structs, and the offsets/adjacency allocations are exact (n + 1 and
  /// 2m pre-merge). This is what the overlay builders feed directly
  /// instead of an intermediate `vector<pair>` edge list.
  class Builder {
   public:
    void reserve(std::size_t edges) { endpoints_.reserve(2 * edges); }
    void add_edge(std::uint32_t u, std::uint32_t v) {
      endpoints_.push_back(u);
      endpoints_.push_back(v);
    }
    [[nodiscard]] std::size_t edges_added() const { return endpoints_.size() / 2; }
    /// Consume the accumulated edges into a graph over vertices [0, n).
    /// Throws std::out_of_range on a vertex id >= n, and std::overflow_error
    /// when n or the arc count outgrows the 32-bit id space (every
    /// construction entry point checks this — DESIGN.md §2.8).
    [[nodiscard]] CsrGraph build(std::size_t n) &&;

   private:
    std::vector<std::uint32_t> endpoints_;  ///< flat (u, v) pairs
  };

  /// Build from an undirected edge list over vertices [0, n). Each pair
  /// {u, v} is stored in both adjacency lists; self loops are dropped and
  /// duplicate edges are merged. Thin wrapper over `Builder`.
  static CsrGraph from_edges(std::size_t n,
                             std::vector<std::pair<std::uint32_t, std::uint32_t>> edges);

  /// Adopt a symmetric flat adjacency wholesale (zero copies: the two
  /// arrays *are* the CSR storage; each vertex list is sorted in place —
  /// pass `lists_sorted = true` to skip that pass when the producer
  /// already emits sorted lists, e.g. a filtered subsequence of a CSR
  /// adjacency). Precondition: `adj` contains every undirected edge in
  /// both endpoint lists, with no self loops and no duplicates — the shape
  /// the two-pass count-then-write builders produce
  /// (`build_flat_adjacency`). Throws std::invalid_argument when offsets
  /// and neighbors disagree.
  static CsrGraph from_symmetric_adjacency(FlatAdjacency adj, bool lists_sorted = false);

  /// Build the undirected union of directed selection lists (k-NN
  /// selections, Yao cone winners): {u, v} is an edge iff v appears in
  /// sel[u] or u appears in sel[v]. Self entries are dropped and
  /// duplicates merged; `sel` is consumed (its lists are sorted in place).
  static CsrGraph from_selections(FlatAdjacency sel);

  /// The graph `g` with `removed` edges deleted, `added` edges inserted,
  /// and the vertex count changed to `n_new` — built by per-vertex
  /// sorted-list merges in O(n + m + |delta|): no global edge sort, no
  /// re-sort of untouched lists. Bit-identical to rebuilding from the
  /// updated edge set (asserted by `CsrEdgeDelta.*`); this is how
  /// sens/dynamic maintains its overlay per churn event. Both deltas are
  /// undirected (u, v) pairs with u < v, strictly ascending; `removed`
  /// edges must exist in `g`, `added` edges must not (the two lists are
  /// disjoint), and a vertex dropped by shrinking to `n_new` must have its
  /// entire incident edge set in `removed`. Throws std::invalid_argument /
  /// std::out_of_range on any violation.
  static CsrGraph apply_edge_delta(
      const CsrGraph& g, std::size_t n_new,
      std::span<const std::pair<std::uint32_t, std::uint32_t>> removed,
      std::span<const std::pair<std::uint32_t, std::uint32_t>> added);

  [[nodiscard]] std::size_t num_vertices() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t num_edges() const { return adjacency_.size() / 2; }

  [[nodiscard]] std::span<const std::uint32_t> neighbors(std::uint32_t v) const {
    return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] std::size_t degree(std::uint32_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  // --- arc view (DESIGN.md §2.4) ---
  // The arcs of vertex v are the half-open index range
  // [arc_begin(v), arc_end(v)); arc_target(a) is the head of arc a. Per-arc
  // data (weights, kept-edge masks) lives in plain arrays indexed the same
  // way, so the traversal inner loops are flat array reads.

  [[nodiscard]] std::size_t num_arcs() const { return adjacency_.size(); }
  [[nodiscard]] std::uint32_t arc_begin(std::uint32_t v) const { return offsets_[v]; }
  [[nodiscard]] std::uint32_t arc_end(std::uint32_t v) const { return offsets_[v + 1]; }
  [[nodiscard]] std::uint32_t arc_target(std::size_t arc) const { return adjacency_[arc]; }

  /// Index of the arc u -> v. Precondition: the edge exists.
  [[nodiscard]] std::size_t arc_index(std::uint32_t u, std::uint32_t v) const;

  /// Index of the reverse arc: for arc a = (u -> v), reverse_arc(a) is the
  /// arc (v -> u). Precomputed at build time (one O(m) counting pass), so
  /// mirroring per-arc data onto reverse arcs — the spanner filters' kept
  /// mask — is a flat lookup instead of a per-edge binary search.
  /// Involution: reverse_arc(reverse_arc(a)) == a.
  [[nodiscard]] std::uint32_t reverse_arc(std::size_t arc) const { return reverse_arc_[arc]; }

  /// Materialize `weight(u, v)` for every arc, aligned with the arc index
  /// (computed chunk-parallel; every slot is written exactly once, so the
  /// array is bit-identical at any thread count). Dijkstra's inner loop
  /// over a weight array is a flat read — no callable invocation per
  /// relaxed edge. The array is invalidated by rebuilding the graph, never
  /// by traversals (DESIGN.md §2.4).
  template <typename WeightFn>
  [[nodiscard]] std::vector<double> arc_weights(WeightFn&& weight) const {
    std::vector<double> w(adjacency_.size());
    parallel_for(num_vertices(), [&](std::size_t i) {
      const auto u = static_cast<std::uint32_t>(i);
      for (std::uint32_t a = offsets_[u]; a < offsets_[u + 1]; ++a) {
        w[a] = weight(u, adjacency_[a]);
      }
    });
    return w;
  }

  [[nodiscard]] std::size_t max_degree() const;
  [[nodiscard]] double mean_degree() const;

  /// True if {u, v} is an edge. Binary-searches the adjacency of the
  /// lower-degree endpoint (lists are sorted), so the cost is
  /// O(log min(deg u, deg v)) — hub vertices never pay for their degree.
  [[nodiscard]] bool has_edge(std::uint32_t u, std::uint32_t v) const;

  /// All undirected edges as (u, v) with u < v, in sorted order
  /// (reserves exactly m).
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_list() const;

 private:
  void build_reverse_arcs();

  std::vector<std::uint32_t> offsets_;      // n + 1
  std::vector<std::uint32_t> adjacency_;    // 2 * m, sorted within each vertex
  std::vector<std::uint32_t> reverse_arc_;  // 2 * m, arc -> its reverse arc
};

}  // namespace sens
