// Compressed-sparse-row undirected graph.
//
// All graphs in this project (UDG, kNN, SENS overlays, baselines) are built
// once and then queried many times, so CSR is the natural representation:
// adjacency of vertex v is the contiguous span neighbors(v).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace sens {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Build from an undirected edge list over vertices [0, n). Each pair
  /// {u, v} is stored in both adjacency lists; self loops are dropped and
  /// duplicate edges are merged.
  static CsrGraph from_edges(std::size_t n, std::vector<std::pair<std::uint32_t, std::uint32_t>> edges);

  [[nodiscard]] std::size_t num_vertices() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t num_edges() const { return adjacency_.size() / 2; }

  [[nodiscard]] std::span<const std::uint32_t> neighbors(std::uint32_t v) const {
    return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] std::size_t degree(std::uint32_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  [[nodiscard]] std::size_t max_degree() const;
  [[nodiscard]] double mean_degree() const;

  /// True if {u, v} is an edge (binary search; adjacency lists are sorted).
  [[nodiscard]] bool has_edge(std::uint32_t u, std::uint32_t v) const;

  /// All undirected edges as (u, v) with u < v, in sorted order.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_list() const;

 private:
  std::vector<std::uint32_t> offsets_;    // n + 1
  std::vector<std::uint32_t> adjacency_;  // 2 * m, sorted within each vertex
};

}  // namespace sens
