// Flat CSR-style adjacency: one offsets array + one neighbors array.
//
// Replaces the nested `vector<vector<uint32_t>>` shape for batched query
// results (k-NN selections, radius collections) and is the interchange
// format the graph builders hand to `CsrGraph` (no intermediate pair edge
// lists): two allocations total instead of one per vertex, contiguous
// storage for cache-friendly sweeps, and chunk-parallel builders can write
// disjoint slices without synchronization (DESIGN.md §2.3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "sens/support/checked.hpp"
#include "sens/support/parallel.hpp"

namespace sens {

struct FlatAdjacency {
  std::vector<std::uint32_t> offsets;    ///< size() + 1 entries, offsets[0] == 0
  std::vector<std::uint32_t> neighbors;  ///< offsets.back() entries

  [[nodiscard]] std::size_t size() const { return offsets.empty() ? 0 : offsets.size() - 1; }

  [[nodiscard]] std::size_t degree(std::size_t i) const {
    return offsets[i + 1] - offsets[i];
  }

  /// The neighbor list of vertex i as a contiguous span.
  [[nodiscard]] std::span<const std::uint32_t> operator[](std::size_t i) const {
    return {neighbors.data() + offsets[i], neighbors.data() + offsets[i + 1]};
  }

  /// Expand to the legacy nested-vector shape (tests, compatibility).
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> to_nested() const {
    std::vector<std::vector<std::uint32_t>> out(size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      const auto nbrs = (*this)[i];
      out[i].assign(nbrs.begin(), nbrs.end());
    }
    return out;
  }
};

/// Two-pass count-then-write builder (DESIGN.md §2.3): `count(i)` returns the
/// number of neighbors of vertex i, `fill(i, out)` writes exactly that many
/// into `out`. Pass 1 counts in parallel, a serial prefix sum fixes every
/// vertex's slice, pass 2 fills the disjoint slices in parallel — no
/// per-chunk buffers, no concatenation memcpy, and both allocations are
/// exact (n + 1 offsets, sum-of-degrees neighbors). Because every slot is
/// written exactly once, indexed by vertex, the result is bit-identical at
/// any thread count. `count` and `fill` must agree and be pure in i.
/// Throws std::overflow_error when a count or the running total outgrows
/// the 32-bit offset space (DESIGN.md §2.8) — before anything is resized.
template <typename Count, typename Fill>
[[nodiscard]] FlatAdjacency build_flat_adjacency(std::size_t n, Count&& count, Fill&& fill) {
  FlatAdjacency adj;
  adj.offsets.assign(n + 1, 0);
  if (n == 0) return adj;
  parallel_for(n, [&](std::size_t i) {
    adj.offsets[i + 1] = checked_u32(count(i), "FlatAdjacency: per-vertex neighbor");
  });
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += adj.offsets[i + 1];
    adj.offsets[i + 1] = checked_u32(total, "FlatAdjacency: neighbor");
  }
  adj.neighbors.resize(adj.offsets[n]);
  parallel_for(n, [&](std::size_t i) { fill(i, adj.neighbors.data() + adj.offsets[i]); });
  return adj;
}

}  // namespace sens
