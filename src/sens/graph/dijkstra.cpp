#include "sens/graph/dijkstra.hpp"

#include <algorithm>

#include "sens/support/parallel.hpp"
#include "sens/support/scratch_pool.hpp"

namespace sens {

namespace detail {

namespace {

/// Arc-array weight: the relaxation loop reads w[arc] — no callable
/// invocation, no endpoint arithmetic.
struct SpanWeight {
  const double* w;
  double operator()(std::size_t arc, std::uint32_t, std::uint32_t) const { return w[arc]; }
};

}  // namespace

void export_costs(const DijkstraScratch& s, std::span<double> out) {
  for (std::size_t v = 0; v < out.size(); ++v) {
    out[v] = s.stamp[v] == s.epoch ? s.dist[v] : kInfCost;
  }
}

void export_path(const DijkstraScratch& s, std::uint32_t source, std::uint32_t target,
                 std::vector<std::uint32_t>& path) {
  path.clear();
  if (!s.reached(target)) return;
  for (std::uint32_t v = target;; v = s.parent[v]) {
    path.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.begin(), path.end());
}

}  // namespace detail

void dijkstra_costs_into(const CsrGraph& g, std::uint32_t source,
                         std::span<const double> arc_weights, DijkstraScratch& scratch,
                         std::span<double> out) {
  detail::dijkstra_run(g, source, detail::SpanWeight{arc_weights.data()}, scratch);
  detail::export_costs(scratch, out);
}

std::vector<double> dijkstra_costs(const CsrGraph& g, std::uint32_t source,
                                   std::span<const double> arc_weights) {
  DijkstraScratch scratch;
  std::vector<double> out(g.num_vertices());
  dijkstra_costs_into(g, source, arc_weights, scratch, out);
  return out;
}

double dijkstra_cost(const CsrGraph& g, std::uint32_t source, std::uint32_t target,
                     std::span<const double> arc_weights, DijkstraScratch& scratch) {
  detail::dijkstra_run(g, source, detail::SpanWeight{arc_weights.data()}, scratch, target);
  return scratch.reached(target) ? scratch.dist[target] : kInfCost;
}

double dijkstra_cost(const CsrGraph& g, std::uint32_t source, std::uint32_t target,
                     std::span<const double> arc_weights) {
  DijkstraScratch scratch;
  return dijkstra_cost(g, source, target, arc_weights, scratch);
}

bool dijkstra_path_into(const CsrGraph& g, std::uint32_t source, std::uint32_t target,
                        std::span<const double> arc_weights, DijkstraScratch& scratch,
                        std::vector<std::uint32_t>& path) {
  detail::dijkstra_run(g, source, detail::SpanWeight{arc_weights.data()}, scratch, target);
  detail::export_path(scratch, source, target, path);
  return !path.empty();
}

std::vector<std::uint32_t> dijkstra_path(const CsrGraph& g, std::uint32_t source,
                                         std::uint32_t target,
                                         std::span<const double> arc_weights) {
  DijkstraScratch scratch;
  std::vector<std::uint32_t> path;
  dijkstra_path_into(g, source, target, arc_weights, scratch, path);
  return path;
}

void dijkstra_many_into(const CsrGraph& g, std::span<const std::uint32_t> sources,
                        std::span<const double> arc_weights, std::span<double> out) {
  const std::size_t n = g.num_vertices();
  // One warm scratch per participant, leased per chunk from a pool that
  // dies with this call — chunks frequently hold a single source, so a
  // per-chunk scratch would pay the O(n) allocation per source, and a
  // thread_local would retain one n-sized allocation per worker thread
  // for the process lifetime. Rows depend only on (graph, weights,
  // source), so scratch reuse keeps the output bit-identical at any
  // thread count (DESIGN.md §2.4, §2.6).
  ScratchPool<DijkstraScratch> scratches;
  parallel_for_chunks(sources.size(), [&](std::size_t begin, std::size_t end) {
    const auto scratch = scratches.acquire();
    for (std::size_t i = begin; i < end; ++i) {
      dijkstra_costs_into(g, sources[i], arc_weights, *scratch, out.subspan(i * n, n));
    }
  });
}

std::vector<double> dijkstra_many(const CsrGraph& g, std::span<const std::uint32_t> sources,
                                  std::span<const double> arc_weights) {
  std::vector<double> out(sources.size() * g.num_vertices());
  dijkstra_many_into(g, sources, arc_weights, out);
  return out;
}

}  // namespace sens
