#include "sens/graph/dijkstra.hpp"

#include <algorithm>
#include <queue>

namespace sens {

namespace {

struct QueueEntry {
  double cost;
  std::uint32_t vertex;
  bool operator>(const QueueEntry& o) const { return cost > o.cost; }
};

using MinQueue = std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>;

}  // namespace

std::vector<double> dijkstra_costs(const CsrGraph& g, std::uint32_t source,
                                   const EdgeWeightFn& weight) {
  std::vector<double> cost(g.num_vertices(), kInfCost);
  MinQueue queue;
  cost[source] = 0.0;
  queue.push({0.0, source});
  while (!queue.empty()) {
    const auto [c, u] = queue.top();
    queue.pop();
    if (c > cost[u]) continue;
    for (std::uint32_t v : g.neighbors(u)) {
      const double nc = c + weight(u, v);
      if (nc < cost[v]) {
        cost[v] = nc;
        queue.push({nc, v});
      }
    }
  }
  return cost;
}

double dijkstra_cost(const CsrGraph& g, std::uint32_t source, std::uint32_t target,
                     const EdgeWeightFn& weight) {
  if (source == target) return 0.0;
  std::vector<double> cost(g.num_vertices(), kInfCost);
  MinQueue queue;
  cost[source] = 0.0;
  queue.push({0.0, source});
  while (!queue.empty()) {
    const auto [c, u] = queue.top();
    queue.pop();
    if (u == target) return c;
    if (c > cost[u]) continue;
    for (std::uint32_t v : g.neighbors(u)) {
      const double nc = c + weight(u, v);
      if (nc < cost[v]) {
        cost[v] = nc;
        queue.push({nc, v});
      }
    }
  }
  return kInfCost;
}

std::vector<std::uint32_t> dijkstra_path(const CsrGraph& g, std::uint32_t source,
                                         std::uint32_t target, const EdgeWeightFn& weight) {
  std::vector<double> cost(g.num_vertices(), kInfCost);
  std::vector<std::uint32_t> parent(g.num_vertices(), 0xffffffffu);
  MinQueue queue;
  cost[source] = 0.0;
  parent[source] = source;
  queue.push({0.0, source});
  while (!queue.empty()) {
    const auto [c, u] = queue.top();
    queue.pop();
    if (u == target) break;
    if (c > cost[u]) continue;
    for (std::uint32_t v : g.neighbors(u)) {
      const double nc = c + weight(u, v);
      if (nc < cost[v]) {
        cost[v] = nc;
        parent[v] = u;
        queue.push({nc, v});
      }
    }
  }
  std::vector<std::uint32_t> path;
  if (parent[target] == 0xffffffffu) return path;
  for (std::uint32_t v = target;; v = parent[v]) {
    path.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace sens
