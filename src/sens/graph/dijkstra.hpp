// Dijkstra shortest paths with arbitrary non-negative edge weights.
//
// The power-efficiency experiments (Li-Wan-Wang comparison, E12) need
// shortest paths under Euclidean length and under the radio power metric
// w(u,v) = d(u,v)^beta, beta in [2, 5]. Edge weights are supplied by a
// callable so one CSR graph serves every metric.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "sens/graph/csr.hpp"

namespace sens {

inline constexpr double kInfCost = std::numeric_limits<double>::infinity();

using EdgeWeightFn = std::function<double(std::uint32_t, std::uint32_t)>;

/// Cost from `source` to all vertices under `weight` (must be >= 0).
[[nodiscard]] std::vector<double> dijkstra_costs(const CsrGraph& g, std::uint32_t source,
                                                 const EdgeWeightFn& weight);

/// Cost from source to target with early exit; kInfCost when disconnected.
[[nodiscard]] double dijkstra_cost(const CsrGraph& g, std::uint32_t source, std::uint32_t target,
                                   const EdgeWeightFn& weight);

/// Min-cost path (vertex sequence including endpoints; empty if unreachable).
[[nodiscard]] std::vector<std::uint32_t> dijkstra_path(const CsrGraph& g, std::uint32_t source,
                                                       std::uint32_t target, const EdgeWeightFn& weight);

}  // namespace sens
