// Dijkstra shortest paths with arbitrary non-negative edge weights.
//
// The power-efficiency experiments (Li-Wan-Wang comparison, E12) need
// shortest paths under Euclidean length and under the radio power metric
// w(u,v) = d(u,v)^beta, beta in [2, 5], over the same CSR graph. Weights
// come in two shapes (DESIGN.md §2.4):
//   * a template functor `w(u, v)` — zero type erasure, inlined into the
//     relaxation loop (never a `std::function` per relaxed edge);
//   * a precomputed per-arc array aligned with the CSR adjacency
//     (`CsrGraph::arc_weights`) — the inner loop is a flat array read,
//     and one array serves every source of a batch.
// Hot-path queries are allocation-free: the caller owns a
// `DijkstraScratch` whose distance/heap arrays are timestamp-versioned, so
// consecutive sources skip the O(n) clear, and the 4-ary indexed heap
// decrease-keys in place instead of enqueueing stale entries. The batched
// `dijkstra_many` chunk-parallelizes over sources; every source's row is
// computed independently, so the output is bit-identical at any thread
// count (§2.4).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <type_traits>
#include <vector>

#include "sens/graph/csr.hpp"
#include "sens/obs/obs.hpp"

namespace sens {

inline constexpr double kInfCost = std::numeric_limits<double>::infinity();

/// Caller-owned working memory for Dijkstra runs. A vertex's entries are
/// valid only while `stamp[v] == epoch`, so `prepare()` is O(1): bumping
/// the epoch invalidates the previous source's state without touching the
/// arrays (a full clear happens only on resize and on the 2^32-epoch
/// wrap). Contents are opaque to callers and clobbered by every run; never
/// share one scratch between threads (DESIGN.md §2.4).
struct DijkstraScratch {
  static constexpr std::uint32_t kSettled = 0xffffffffu;

  std::vector<double> dist;           ///< tentative cost, valid when stamped
  std::vector<std::uint32_t> parent;  ///< predecessor on the best path found
  std::vector<std::uint32_t> pos;     ///< heap position, or kSettled after pop
  std::vector<std::uint32_t> stamp;   ///< per-vertex epoch mark
  std::vector<std::uint32_t> heap;    ///< 4-ary min-heap of vertex ids, keyed by dist
  std::uint32_t epoch = 0;

  /// Start a new run over a graph with n vertices.
  void prepare(std::size_t n) {
    if (stamp.size() != n) {
      dist.assign(n, 0.0);
      parent.assign(n, 0);
      pos.assign(n, 0);
      stamp.assign(n, 0);
      epoch = 0;
    }
    if (++epoch == 0) {  // epoch wrapped: hard reset once per 2^32 runs
      std::fill(stamp.begin(), stamp.end(), 0u);
      epoch = 1;
    }
    heap.clear();
  }

  [[nodiscard]] bool reached(std::uint32_t v) const { return stamp[v] == epoch; }

  void push(std::uint32_t v, double cost, std::uint32_t from) {
    dist[v] = cost;
    parent[v] = from;
    stamp[v] = epoch;
    pos[v] = static_cast<std::uint32_t>(heap.size());
    heap.push_back(v);
    sift_up(static_cast<std::uint32_t>(heap.size()) - 1);
  }

  void decrease(std::uint32_t v, double cost, std::uint32_t from) {
    dist[v] = cost;
    parent[v] = from;
    sift_up(pos[v]);
  }

  std::uint32_t pop_min() {
    const std::uint32_t top = heap.front();
    const std::uint32_t last = heap.back();
    heap.pop_back();
    if (!heap.empty()) {
      heap[0] = last;
      pos[last] = 0;
      sift_down(0);
    }
    pos[top] = kSettled;
    return top;
  }

 private:
  void sift_up(std::uint32_t i) {
    const std::uint32_t v = heap[i];
    const double key = dist[v];
    while (i > 0) {
      const std::uint32_t p = (i - 1) / 4;
      if (dist[heap[p]] <= key) break;
      heap[i] = heap[p];
      pos[heap[i]] = i;
      i = p;
    }
    heap[i] = v;
    pos[v] = i;
  }

  void sift_down(std::uint32_t i) {
    const auto size = static_cast<std::uint32_t>(heap.size());
    const std::uint32_t v = heap[i];
    const double key = dist[v];
    for (;;) {
      const std::uint32_t first = 4 * i + 1;
      if (first >= size) break;
      std::uint32_t best = first;
      double best_key = dist[heap[first]];
      const std::uint32_t end = first + 4 < size ? first + 4 : size;
      for (std::uint32_t c = first + 1; c < end; ++c) {
        const double ck = dist[heap[c]];
        if (ck < best_key) {
          best = c;
          best_key = ck;
        }
      }
      if (best_key >= key) break;
      heap[i] = heap[best];
      pos[heap[i]] = i;
      i = best;
    }
    heap[i] = v;
    pos[v] = i;
  }
};

namespace detail {

inline constexpr std::uint32_t kNoTarget = 0xffffffffu;

/// Shared engine: settle vertices from `source` until the heap drains or
/// `target` is settled. `w(arc, u, v)` supplies the weight of the arc with
/// index `arc` (a flat array read for the precomputed-weight path).
template <typename ArcWeight>
void dijkstra_run(const CsrGraph& g, std::uint32_t source, ArcWeight&& w, DijkstraScratch& s,
                  std::uint32_t target = kNoTarget) {
  // Work tallies live in plain stack locals and flush to the obs registry
  // once per exit path — the hot loop never touches shared state, and the
  // flush is a call, not a destructor: a non-trivial destructor here makes
  // the compiler thread EH cleanups through the relaxation loop, which
  // costs ~5% wall clock on Dijkstra-bound benches. uint32 tallies cannot
  // overflow (pops <= n, relaxed <= m, both < 2^32 by CSR's arc indexing)
  // and keep register pressure down. Per-source work is a pure function of
  // (graph, source, target), so totals are thread-invariant (§2.10).
  SENS_OBS(std::uint32_t obs_pops = 0; std::uint32_t obs_relaxed = 0;)
  SENS_OBS(const auto obs_flush = [&]() noexcept {
    obs::add(obs::Counter::kDijkstraRuns, 1);
    obs::add(obs::Counter::kDijkstraHeapPops, obs_pops);
    obs::add(obs::Counter::kDijkstraRelaxedArcs, obs_relaxed);
  };)
  s.prepare(g.num_vertices());
  s.push(source, 0.0, source);
  while (!s.heap.empty()) {
    const std::uint32_t u = s.pop_min();
    if (u == target) {
      SENS_OBS(++obs_pops; obs_flush();)
      return;
    }
    const double du = s.dist[u];
    const std::uint32_t begin = g.arc_begin(u);
    const std::uint32_t end = g.arc_end(u);
    SENS_OBS(++obs_pops; obs_relaxed += end - begin;)
    for (std::uint32_t a = begin; a < end; ++a) {
      const std::uint32_t v = g.arc_target(a);
      const double nc = du + w(a, u, v);
      if (!s.reached(v)) {
        s.push(v, nc, u);
      } else if (nc < s.dist[v] && s.pos[v] != DijkstraScratch::kSettled) {
        s.decrease(v, nc, u);
      }
    }
  }
  SENS_OBS(obs_flush();)
}

/// Copy a finished run's costs into a caller buffer (unreached = kInfCost).
void export_costs(const DijkstraScratch& s, std::span<double> out);

/// Walk the parent chain of a finished run into `path` (cleared; empty when
/// `target` was not reached; includes both endpoints).
void export_path(const DijkstraScratch& s, std::uint32_t source, std::uint32_t target,
                 std::vector<std::uint32_t>& path);

template <typename WeightFn>
concept EndpointWeight = std::is_invocable_r_v<double, WeightFn, std::uint32_t, std::uint32_t>;

}  // namespace detail

// --- precomputed per-arc weights (see CsrGraph::arc_weights) ---

/// Costs from `source` to all vertices, written into `out` (size n);
/// unreachable vertices get kInfCost. Allocation-free given a warm scratch.
void dijkstra_costs_into(const CsrGraph& g, std::uint32_t source,
                         std::span<const double> arc_weights, DijkstraScratch& scratch,
                         std::span<double> out);

[[nodiscard]] std::vector<double> dijkstra_costs(const CsrGraph& g, std::uint32_t source,
                                                 std::span<const double> arc_weights);

/// Cost from source to target with early exit; kInfCost when disconnected.
[[nodiscard]] double dijkstra_cost(const CsrGraph& g, std::uint32_t source, std::uint32_t target,
                                   std::span<const double> arc_weights, DijkstraScratch& scratch);
[[nodiscard]] double dijkstra_cost(const CsrGraph& g, std::uint32_t source, std::uint32_t target,
                                   std::span<const double> arc_weights);

/// Min-cost path into `path` (cleared; empty when unreachable; includes
/// both endpoints). Returns true when target was reached.
bool dijkstra_path_into(const CsrGraph& g, std::uint32_t source, std::uint32_t target,
                        std::span<const double> arc_weights, DijkstraScratch& scratch,
                        std::vector<std::uint32_t>& path);
[[nodiscard]] std::vector<std::uint32_t> dijkstra_path(const CsrGraph& g, std::uint32_t source,
                                                       std::uint32_t target,
                                                       std::span<const double> arc_weights);

/// Batched multi-source costs, chunk-parallel over `sources`: row i of
/// `out` (stride n, size sources.size() * n) receives the costs from
/// sources[i]. Rows are computed independently with scratches leased from a
/// per-call pool (no allocation outlives the call), so the output is
/// bit-identical at any thread count (DESIGN.md §2.4, §2.6).
void dijkstra_many_into(const CsrGraph& g, std::span<const std::uint32_t> sources,
                        std::span<const double> arc_weights, std::span<double> out);
[[nodiscard]] std::vector<double> dijkstra_many(const CsrGraph& g,
                                                std::span<const std::uint32_t> sources,
                                                std::span<const double> arc_weights);

// --- template weight functors (one-off queries, tests) ---

template <detail::EndpointWeight WeightFn>
void dijkstra_costs_into(const CsrGraph& g, std::uint32_t source, WeightFn&& weight,
                         DijkstraScratch& scratch, std::span<double> out) {
  detail::dijkstra_run(
      g, source, [&](std::size_t, std::uint32_t u, std::uint32_t v) { return weight(u, v); },
      scratch);
  detail::export_costs(scratch, out);
}

template <detail::EndpointWeight WeightFn>
[[nodiscard]] std::vector<double> dijkstra_costs(const CsrGraph& g, std::uint32_t source,
                                                 WeightFn&& weight) {
  DijkstraScratch scratch;
  std::vector<double> out(g.num_vertices());
  dijkstra_costs_into(g, source, std::forward<WeightFn>(weight), scratch, out);
  return out;
}

template <detail::EndpointWeight WeightFn>
[[nodiscard]] double dijkstra_cost(const CsrGraph& g, std::uint32_t source, std::uint32_t target,
                                   WeightFn&& weight) {
  DijkstraScratch scratch;
  detail::dijkstra_run(
      g, source, [&](std::size_t, std::uint32_t u, std::uint32_t v) { return weight(u, v); },
      scratch, target);
  return scratch.reached(target) ? scratch.dist[target] : kInfCost;
}

template <detail::EndpointWeight WeightFn>
[[nodiscard]] std::vector<std::uint32_t> dijkstra_path(const CsrGraph& g, std::uint32_t source,
                                                       std::uint32_t target, WeightFn&& weight) {
  DijkstraScratch scratch;
  detail::dijkstra_run(
      g, source, [&](std::size_t, std::uint32_t u, std::uint32_t v) { return weight(u, v); },
      scratch, target);
  std::vector<std::uint32_t> path;
  detail::export_path(scratch, source, target, path);
  return path;
}

}  // namespace sens
