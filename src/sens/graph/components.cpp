#include "sens/graph/components.hpp"

#include <algorithm>
#include <deque>

namespace sens {

std::vector<std::uint32_t> Components::largest_members() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t v = 0; v < label.size(); ++v)
    if (label[v] == largest) out.push_back(v);
  return out;
}

Components connected_components(const CsrGraph& g) {
  Components comps;
  const std::size_t n = g.num_vertices();
  comps.label.assign(n, 0xffffffffu);
  std::deque<std::uint32_t> queue;
  for (std::uint32_t start = 0; start < n; ++start) {
    if (comps.label[start] != 0xffffffffu) continue;
    const auto id = static_cast<std::uint32_t>(comps.size.size());
    comps.size.push_back(0);
    comps.label[start] = id;
    queue.push_back(start);
    while (!queue.empty()) {
      const std::uint32_t u = queue.front();
      queue.pop_front();
      ++comps.size[id];
      for (std::uint32_t v : g.neighbors(u)) {
        if (comps.label[v] == 0xffffffffu) {
          comps.label[v] = id;
          queue.push_back(v);
        }
      }
    }
  }
  if (!comps.size.empty()) {
    comps.largest = static_cast<std::uint32_t>(
        std::max_element(comps.size.begin(), comps.size.end()) - comps.size.begin());
  }
  return comps;
}

}  // namespace sens
