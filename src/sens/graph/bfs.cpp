#include "sens/graph/bfs.hpp"

#include "sens/obs/obs.hpp"
#include "sens/support/parallel.hpp"
#include "sens/support/scratch_pool.hpp"

namespace sens {

namespace {

constexpr std::uint32_t kNoTarget = 0xffffffffu;

/// Shared engine: label vertices outward from `source`; stops at the
/// discovery of `target` (its distance/parent are final at discovery).
/// Returns true when the target was reached.
bool bfs_run(const CsrGraph& g, std::uint32_t source, BfsScratch& s,
             std::uint32_t target = kNoTarget) {
  // Stack-local tally, flushed once per run on every exit path; per-source
  // visit counts are pure functions of (graph, source, target), so the
  // registry totals are thread-invariant (DESIGN.md §2.10).
  SENS_OBS(struct ObsTally {
    std::uint64_t visits = 0;
    ~ObsTally() {
      obs::add(obs::Counter::kBfsRuns, 1);
      obs::add(obs::Counter::kBfsVisits, visits);
    }
  } obs_tally;)
  s.prepare(g.num_vertices());
  s.dist[source] = 0;
  s.parent[source] = source;
  s.stamp[source] = s.epoch;
  SENS_OBS(++obs_tally.visits;)
  if (source == target) return true;
  s.queue.push_back(source);
  std::size_t head = 0;
  while (head < s.queue.size()) {
    const std::uint32_t u = s.queue[head++];
    const std::uint32_t du = s.dist[u];
    for (const std::uint32_t v : g.neighbors(u)) {
      if (s.reached(v)) continue;
      s.dist[v] = du + 1;
      s.parent[v] = u;
      s.stamp[v] = s.epoch;
      SENS_OBS(++obs_tally.visits;)
      if (v == target) return true;
      s.queue.push_back(v);
    }
  }
  return false;
}

}  // namespace

void bfs_distances_into(const CsrGraph& g, std::uint32_t source, BfsScratch& scratch,
                        std::span<std::uint32_t> out) {
  bfs_run(g, source, scratch);
  for (std::size_t v = 0; v < out.size(); ++v) {
    out[v] = scratch.stamp[v] == scratch.epoch ? scratch.dist[v] : kUnreachable;
  }
}

std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, std::uint32_t source) {
  BfsScratch scratch;
  std::vector<std::uint32_t> out(g.num_vertices());
  bfs_distances_into(g, source, scratch, out);
  return out;
}

std::uint32_t bfs_distance(const CsrGraph& g, std::uint32_t source, std::uint32_t target,
                           BfsScratch& scratch) {
  return bfs_run(g, source, scratch, target) ? scratch.dist[target] : kUnreachable;
}

std::uint32_t bfs_distance(const CsrGraph& g, std::uint32_t source, std::uint32_t target) {
  BfsScratch scratch;
  return bfs_distance(g, source, target, scratch);
}

bool bfs_path_into(const CsrGraph& g, std::uint32_t source, std::uint32_t target,
                   BfsScratch& scratch, std::vector<std::uint32_t>& path) {
  path.clear();
  if (!bfs_run(g, source, scratch, target)) return false;
  for (std::uint32_t v = target;; v = scratch.parent[v]) {
    path.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.begin(), path.end());
  return true;
}

std::vector<std::uint32_t> bfs_path(const CsrGraph& g, std::uint32_t source,
                                    std::uint32_t target) {
  BfsScratch scratch;
  std::vector<std::uint32_t> path;
  bfs_path_into(g, source, target, scratch, path);
  return path;
}

void bfs_many_into(const CsrGraph& g, std::span<const std::uint32_t> sources,
                   std::span<std::uint32_t> out) {
  const std::size_t n = g.num_vertices();
  // Leased per-participant scratch for the same reason as
  // dijkstra_many_into: chunks often hold one source, rows depend only on
  // (graph, source), and the pool dies with this call so no per-thread
  // allocation outlives it (DESIGN.md §2.4, §2.6).
  ScratchPool<BfsScratch> scratches;
  parallel_for_chunks(sources.size(), [&](std::size_t begin, std::size_t end) {
    const auto scratch = scratches.acquire();
    for (std::size_t i = begin; i < end; ++i) {
      bfs_distances_into(g, sources[i], *scratch, out.subspan(i * n, n));
    }
  });
}

std::vector<std::uint32_t> bfs_many(const CsrGraph& g, std::span<const std::uint32_t> sources) {
  std::vector<std::uint32_t> out(sources.size() * g.num_vertices());
  bfs_many_into(g, sources, out);
  return out;
}

}  // namespace sens
