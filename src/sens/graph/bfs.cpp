#include "sens/graph/bfs.hpp"

#include <algorithm>
#include <deque>

namespace sens {

std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, std::uint32_t source) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::deque<std::uint32_t> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop_front();
    for (std::uint32_t v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::uint32_t bfs_distance(const CsrGraph& g, std::uint32_t source, std::uint32_t target) {
  if (source == target) return 0;
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::deque<std::uint32_t> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop_front();
    for (std::uint32_t v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        if (v == target) return dist[v];
        queue.push_back(v);
      }
    }
  }
  return kUnreachable;
}

std::vector<std::uint32_t> bfs_path(const CsrGraph& g, std::uint32_t source, std::uint32_t target) {
  std::vector<std::uint32_t> parent(g.num_vertices(), kUnreachable);
  std::deque<std::uint32_t> queue;
  parent[source] = source;
  queue.push_back(source);
  bool found = source == target;
  while (!queue.empty() && !found) {
    const std::uint32_t u = queue.front();
    queue.pop_front();
    for (std::uint32_t v : g.neighbors(u)) {
      if (parent[v] == kUnreachable) {
        parent[v] = u;
        if (v == target) {
          found = true;
          break;
        }
        queue.push_back(v);
      }
    }
  }
  std::vector<std::uint32_t> path;
  if (!found) return path;
  for (std::uint32_t v = target;; v = parent[v]) {
    path.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace sens
