// Breadth-first search utilities: single-source hop distances, distances to
// a single target (early exit), shortest hop paths, and the batched
// multi-source `bfs_many`. Distances use uint32 with `kUnreachable` as the
// sentinel.
//
// Hot-path queries are allocation-free: the caller owns a `BfsScratch`
// whose distance/parent arrays are timestamp-versioned, so consecutive
// sources skip the O(n) clear (DESIGN.md §2.4). The legacy allocating
// signatures remain as thin wrappers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "sens/graph/csr.hpp"

namespace sens {

inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// Caller-owned working memory for BFS runs. Entries of a vertex are valid
/// only while `stamp[v] == epoch`; `prepare()` is O(1) between sources.
/// Contents are opaque and clobbered by every run; never share one scratch
/// between threads (DESIGN.md §2.4).
struct BfsScratch {
  std::vector<std::uint32_t> dist;    ///< hop count, valid when stamped
  std::vector<std::uint32_t> parent;  ///< predecessor on the discovery tree
  std::vector<std::uint32_t> stamp;   ///< per-vertex epoch mark
  std::vector<std::uint32_t> queue;   ///< frontier, reused across runs
  std::uint32_t epoch = 0;

  void prepare(std::size_t n) {
    if (stamp.size() != n) {
      dist.assign(n, 0);
      parent.assign(n, 0);
      stamp.assign(n, 0);
      epoch = 0;
    }
    if (++epoch == 0) {  // epoch wrapped: hard reset once per 2^32 runs
      std::fill(stamp.begin(), stamp.end(), 0u);
      epoch = 1;
    }
    queue.clear();
  }

  [[nodiscard]] bool reached(std::uint32_t v) const { return stamp[v] == epoch; }
};

/// Hop distances from `source` written into `out` (size n, kUnreachable
/// where disconnected). Allocation-free given a warm scratch.
void bfs_distances_into(const CsrGraph& g, std::uint32_t source, BfsScratch& scratch,
                        std::span<std::uint32_t> out);

/// Hop distance from `source` to every vertex (kUnreachable if none).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, std::uint32_t source);

/// Hop distance from `source` to `target` only, with early exit; returns
/// kUnreachable when disconnected.
[[nodiscard]] std::uint32_t bfs_distance(const CsrGraph& g, std::uint32_t source,
                                         std::uint32_t target, BfsScratch& scratch);
[[nodiscard]] std::uint32_t bfs_distance(const CsrGraph& g, std::uint32_t source,
                                         std::uint32_t target);

/// Shortest hop path from source to target written into `path` (cleared;
/// empty when disconnected; includes both endpoints). Returns true when
/// the target was reached.
bool bfs_path_into(const CsrGraph& g, std::uint32_t source, std::uint32_t target,
                   BfsScratch& scratch, std::vector<std::uint32_t>& path);
[[nodiscard]] std::vector<std::uint32_t> bfs_path(const CsrGraph& g, std::uint32_t source,
                                                  std::uint32_t target);

/// Batched multi-source hop distances, chunk-parallel over `sources`: row i
/// of `out` (stride n, size sources.size() * n) receives the distances from
/// sources[i]. Rows are computed independently with scratches leased from a
/// per-call pool (no allocation outlives the call), so the output is
/// bit-identical at any thread count (DESIGN.md §2.4, §2.6).
void bfs_many_into(const CsrGraph& g, std::span<const std::uint32_t> sources,
                   std::span<std::uint32_t> out);
[[nodiscard]] std::vector<std::uint32_t> bfs_many(const CsrGraph& g,
                                                  std::span<const std::uint32_t> sources);

}  // namespace sens
