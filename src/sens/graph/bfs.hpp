// Breadth-first search utilities: single-source hop distances and distances
// restricted to a target set (early exit). Distances use uint32 with
// `unreachable` as the sentinel.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sens/graph/csr.hpp"

namespace sens {

inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// Hop distance from `source` to every vertex (kUnreachable if none).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, std::uint32_t source);

/// Hop distance from `source` to `target` only, with early exit; returns
/// kUnreachable when disconnected.
[[nodiscard]] std::uint32_t bfs_distance(const CsrGraph& g, std::uint32_t source, std::uint32_t target);

/// Shortest hop path from source to target (empty when disconnected);
/// includes both endpoints.
[[nodiscard]] std::vector<std::uint32_t> bfs_path(const CsrGraph& g, std::uint32_t source,
                                                  std::uint32_t target);

}  // namespace sens
