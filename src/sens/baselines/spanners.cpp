#include "sens/baselines/spanners.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sens/support/parallel.hpp"

namespace sens {

namespace {

/// Shared skeleton: keep the UDG edges passing `keep(u, v)`. The per-vertex
/// tests are independent (they only read `udg`), so the scan runs on the
/// chunk-ordered collector (DESIGN.md §2.3) — bench_e12 filters three
/// spanners over the same UDG, and the result is bit-identical at any
/// thread count.
template <typename Keep>
GeoGraph filter_edges(const GeoGraph& udg, Keep&& keep) {
  GeoGraph out;
  out.points = udg.points;
  auto kept = collect_chunk_ordered<std::pair<std::uint32_t, std::uint32_t>>(
      udg.graph.num_vertices(), [&](std::size_t begin, std::size_t end, auto& sink) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto u = static_cast<std::uint32_t>(i);
          for (const std::uint32_t v : udg.graph.neighbors(u)) {
            if (u < v && keep(u, v)) sink.emplace_back(u, v);
          }
        }
      });
  out.graph = CsrGraph::from_edges(udg.points.size(), std::move(kept));
  return out;
}

}  // namespace

GeoGraph gabriel_graph(const GeoGraph& udg) {
  return filter_edges(udg, [&](std::uint32_t u, std::uint32_t v) {
    const Vec2 mid = (udg.points[u] + udg.points[v]) * 0.5;
    const double r2 = dist2(udg.points[u], mid);
    // Witnesses must be within the diameter disk; every witness is a UDG
    // neighbor of u (it is closer to u than v is), so scanning adj(u) is
    // exhaustive.
    for (const std::uint32_t w : udg.graph.neighbors(u)) {
      if (w != v && dist2(udg.points[w], mid) < r2 - 1e-15) return false;
    }
    return true;
  });
}

GeoGraph relative_neighborhood_graph(const GeoGraph& udg) {
  return filter_edges(udg, [&](std::uint32_t u, std::uint32_t v) {
    const double d2 = dist2(udg.points[u], udg.points[v]);
    // A lune witness w satisfies d(u,w) < d(u,v) <= link radius, so it is a
    // UDG neighbor of u.
    for (const std::uint32_t w : udg.graph.neighbors(u)) {
      if (w == v) continue;
      if (dist2(udg.points[u], udg.points[w]) < d2 - 1e-15 &&
          dist2(udg.points[v], udg.points[w]) < d2 - 1e-15)
        return false;
    }
    return true;
  });
}

GeoGraph yao_graph(const GeoGraph& udg, std::size_t cones) {
  if (cones < 1) throw std::invalid_argument("yao_graph: cones < 1");
  GeoGraph out;
  out.points = udg.points;
  auto kept = collect_chunk_ordered<std::pair<std::uint32_t, std::uint32_t>>(
      udg.graph.num_vertices(), [&](std::size_t begin, std::size_t end, auto& sink) {
        // Per-cone winner buffers hoisted to chunk scope: allocated once
        // per chunk, not once per vertex.
        std::vector<std::uint32_t> best(cones);
        std::vector<double> best_d2(cones);
        for (std::size_t i = begin; i < end; ++i) {
          const auto u = static_cast<std::uint32_t>(i);
          std::fill(best.begin(), best.end(), 0xffffffffu);
          std::fill(best_d2.begin(), best_d2.end(), std::numeric_limits<double>::infinity());
          for (const std::uint32_t v : udg.graph.neighbors(u)) {
            const Vec2 delta = udg.points[v] - udg.points[u];
            double angle = std::atan2(delta.y, delta.x);
            if (angle < 0.0) angle += 2.0 * std::numbers::pi;
            auto cone = static_cast<std::size_t>(angle / (2.0 * std::numbers::pi) *
                                                 static_cast<double>(cones));
            if (cone >= cones) cone = cones - 1;
            const double d2 = delta.norm2();
            // Tie-break by index for determinism.
            if (d2 < best_d2[cone] || (d2 == best_d2[cone] && v < best[cone])) {
              best_d2[cone] = d2;
              best[cone] = v;
            }
          }
          for (const std::uint32_t v : best)
            if (v != 0xffffffffu) sink.emplace_back(u, v);
        }
      });
  out.graph = CsrGraph::from_edges(udg.points.size(), std::move(kept));
  return out;
}

}  // namespace sens
