#include "sens/baselines/spanners.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sens/graph/flat_adjacency.hpp"
#include "sens/support/parallel.hpp"

namespace sens {

namespace {

/// Shared skeleton: keep the UDG edges passing `keep(u, v)`. The predicate
/// is evaluated once per undirected edge in canonical orientation (u < v)
/// into a per-arc kept mask, the mask is mirrored to the reverse arcs, and
/// the surviving adjacency is written by the two-pass count-then-write
/// builder — no edge-pair list, no global sort, no per-chunk buffers
/// (DESIGN.md §2.3/§2.4). Every pass writes disjoint slots indexed by
/// vertex/arc, so the result is bit-identical at any thread count.
template <typename Keep>
GeoGraph filter_edges(const GeoGraph& udg, Keep&& keep) {
  GeoGraph out;
  out.points = udg.points;
  const CsrGraph& g = udg.graph;
  const std::size_t n = g.num_vertices();

  std::vector<std::uint8_t> kept(g.num_arcs());
  parallel_for(n, [&](std::size_t i) {
    const auto u = static_cast<std::uint32_t>(i);
    for (std::uint32_t a = g.arc_begin(u); a < g.arc_end(u); ++a) {
      const std::uint32_t v = g.arc_target(a);
      if (u < v) kept[a] = keep(u, v) ? 1 : 0;
    }
  });
  parallel_for(n, [&](std::size_t i) {
    const auto u = static_cast<std::uint32_t>(i);
    for (std::uint32_t a = g.arc_begin(u); a < g.arc_end(u); ++a) {
      // Mirror the canonical orientation's verdict through the precomputed
      // reverse-arc permutation (flat lookup, no per-edge binary search).
      if (u > g.arc_target(a)) kept[a] = kept[g.reverse_arc(a)];
    }
  });

  FlatAdjacency adj = build_flat_adjacency(
      n,
      [&](std::size_t i) {
        const auto u = static_cast<std::uint32_t>(i);
        std::size_t count = 0;
        for (std::uint32_t a = g.arc_begin(u); a < g.arc_end(u); ++a) count += kept[a];
        return count;
      },
      [&](std::size_t i, std::uint32_t* slot) {
        const auto u = static_cast<std::uint32_t>(i);
        for (std::uint32_t a = g.arc_begin(u); a < g.arc_end(u); ++a) {
          if (kept[a]) *slot++ = g.arc_target(a);
        }
      });
  // Each surviving list is a subsequence of the (sorted) UDG adjacency.
  out.graph = CsrGraph::from_symmetric_adjacency(std::move(adj), /*lists_sorted=*/true);
  return out;
}

}  // namespace

GeoGraph gabriel_graph(const GeoGraph& udg) {
  return filter_edges(udg, [&](std::uint32_t u, std::uint32_t v) {
    const Vec2 mid = (udg.points[u] + udg.points[v]) * 0.5;
    const double r2 = dist2(udg.points[u], mid);
    // Witnesses must be within the diameter disk; every witness is a UDG
    // neighbor of u (it is closer to u than v is), so scanning adj(u) is
    // exhaustive.
    for (const std::uint32_t w : udg.graph.neighbors(u)) {
      if (w != v && dist2(udg.points[w], mid) < r2 - 1e-15) return false;
    }
    return true;
  });
}

GeoGraph relative_neighborhood_graph(const GeoGraph& udg) {
  return filter_edges(udg, [&](std::uint32_t u, std::uint32_t v) {
    const double d2 = dist2(udg.points[u], udg.points[v]);
    // A lune witness w satisfies d(u,w) < d(u,v) <= link radius, so it is a
    // UDG neighbor of u.
    for (const std::uint32_t w : udg.graph.neighbors(u)) {
      if (w == v) continue;
      if (dist2(udg.points[u], udg.points[w]) < d2 - 1e-15 &&
          dist2(udg.points[v], udg.points[w]) < d2 - 1e-15)
        return false;
    }
    return true;
  });
}

GeoGraph yao_graph(const GeoGraph& udg, std::size_t cones) {
  if (cones < 1) throw std::invalid_argument("yao_graph: cones < 1");
  GeoGraph out;
  out.points = udg.points;
  const std::size_t n = udg.graph.num_vertices();
  constexpr std::uint32_t kNone = 0xffffffffu;

  // Per-vertex cone winners into a padded n x cones table (one atan2 pass;
  // each row is written by exactly one task), then compacted into directed
  // selection lists and symmetrized — no edge-pair list.
  std::vector<std::uint32_t> winner(n * cones, kNone);
  parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
    // Winner-distance buffer hoisted to chunk scope: allocated once per
    // chunk, not once per vertex.
    std::vector<double> best_d2(cones);
    for (std::size_t i = begin; i < end; ++i) {
      const auto u = static_cast<std::uint32_t>(i);
      std::uint32_t* best = winner.data() + i * cones;
      std::fill(best_d2.begin(), best_d2.end(), std::numeric_limits<double>::infinity());
      for (const std::uint32_t v : udg.graph.neighbors(u)) {
        const Vec2 delta = udg.points[v] - udg.points[u];
        double angle = std::atan2(delta.y, delta.x);
        if (angle < 0.0) angle += 2.0 * std::numbers::pi;
        auto cone = static_cast<std::size_t>(angle / (2.0 * std::numbers::pi) *
                                             static_cast<double>(cones));
        if (cone >= cones) cone = cones - 1;
        const double d2 = delta.norm2();
        // Tie-break by index for determinism.
        if (d2 < best_d2[cone] || (d2 == best_d2[cone] && v < best[cone])) {
          best_d2[cone] = d2;
          best[cone] = v;
        }
      }
    }
  });
  FlatAdjacency sel = build_flat_adjacency(
      n,
      [&](std::size_t i) {
        std::size_t count = 0;
        for (std::size_t c = 0; c < cones; ++c) count += winner[i * cones + c] != kNone;
        return count;
      },
      [&](std::size_t i, std::uint32_t* slot) {
        for (std::size_t c = 0; c < cones; ++c) {
          if (winner[i * cones + c] != kNone) *slot++ = winner[i * cones + c];
        }
      });
  out.graph = CsrGraph::from_selections(std::move(sel));
  return out;
}

}  // namespace sens
