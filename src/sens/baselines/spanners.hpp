// Classic topology-control baselines built over a unit-disk graph.
//
// The paper positions SENS against the spanner line of work it cites
// (Li-Wan-Wang power-efficient spanners; the Li-Wang survey). These are the
// standard constructions that line uses, implemented here as comparators
// for experiment E12 (degree / hop stretch / power stretch):
//
//   * Gabriel graph GG: keep edge (u,v) iff the open disk with diameter uv
//     contains no other point. Contains the MST; power stretch 1 for
//     beta >= 2.
//   * Relative neighborhood graph RNG: keep (u,v) iff no w has
//     max(d(u,w), d(v,w)) < d(u,v) (the "lune" is empty). RNG ⊆ GG.
//   * Yao graph YG_c: split each node's neighborhood into c equal cones and
//     keep the nearest neighbor per cone. Out-degree <= c.
//
// All three keep only UDG edges, so each is a subgraph of the input and, on
// a connected UDG, remains connected (GG/RNG contain the MST; Yao with
// c >= 6 preserves connectivity).
#pragma once

#include <cstddef>

#include "sens/geograph/geo_graph.hpp"

namespace sens {

[[nodiscard]] GeoGraph gabriel_graph(const GeoGraph& udg);

[[nodiscard]] GeoGraph relative_neighborhood_graph(const GeoGraph& udg);

/// Yao graph with `cones` sectors per node (cones >= 6 recommended).
[[nodiscard]] GeoGraph yao_graph(const GeoGraph& udg, std::size_t cones);

}  // namespace sens
