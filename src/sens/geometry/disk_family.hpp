// Regions defined as the intersection of a family of disks.
//
// The paper's relay regions have the form
//     E = { p : d(p, q) <= R(q)  for every q in one or more disks },
// where R(q) is the radius of the largest disk centered at q that stays
// inside a rectangle union (NN construction, Sec 2.2) or a constant (UDG
// construction, Sec 2.1). Because R is concave (a min of linear functions)
// and -d(p, .) is concave, the margin f(q) = R(q) - d(p, q) is concave in q,
// so its minimum over the generator disk is attained on the boundary circle.
// Membership therefore reduces to a 1-D minimization per generator circle,
// done by coarse angular scan + golden-section refinement.
//
// Such intersections are convex, so each region is polygonized once (ray
// casting from an interior point) and the hot path is an O(log n)
// point-in-convex-polygon test.
#pragma once

#include <functional>
#include <vector>

#include "sens/geometry/box.hpp"
#include "sens/geometry/circle.hpp"
#include "sens/geometry/polygon.hpp"
#include "sens/geometry/vec2.hpp"

namespace sens {

/// One generator: all q on (and, by concavity, inside) `circle` constrain the
/// region through d(p, q) <= radius_at(q).
struct DiskFamilyGenerator {
  Circle circle;                              ///< generator disk (constraints from its boundary)
  std::function<double(Vec2)> radius_at;      ///< concave radius field R(q)

  /// Generator with a constant radius: intersection over q of ball(q, r)
  /// has the closed form ball(center, r - circle.radius); kept in the general
  /// framework so the same code path covers both constructions.
  static DiskFamilyGenerator constant(Circle c, double r);
  /// Generator whose radius at q is the inscribed radius of `domain`
  /// (largest disk centered at q inside the rectangle), as in Sec 2.2.
  static DiskFamilyGenerator inscribed(Circle c, Box domain);
};

class DiskFamilyRegion {
 public:
  DiskFamilyRegion(std::vector<DiskFamilyGenerator> generators, std::size_t scan_samples = 128);

  /// min over all generators and q of R(q) - d(p, q); >= 0 iff p is in the
  /// region (up to refinement tolerance).
  [[nodiscard]] double margin(Vec2 p) const;

  /// Exact-oracle membership (slow path; scan + refinement per generator).
  [[nodiscard]] bool contains(Vec2 p, double eps = 1e-9) const;

  /// Polygonize the region (convex) with `directions` boundary rays cast
  /// from `interior`; `interior` must satisfy contains(). Returns an empty
  /// polygon when the region is empty at `interior`.
  [[nodiscard]] ConvexPolygon polygonize(Vec2 interior, double max_radius,
                                         std::size_t directions = 256) const;

  [[nodiscard]] const std::vector<DiskFamilyGenerator>& generators() const { return generators_; }

 private:
  [[nodiscard]] double generator_margin(const DiskFamilyGenerator& gen, Vec2 p) const;

  std::vector<DiskFamilyGenerator> generators_;
  std::size_t scan_samples_;
};

}  // namespace sens
