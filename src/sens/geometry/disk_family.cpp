#include "sens/geometry/disk_family.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "sens/support/parallel.hpp"

namespace sens {

DiskFamilyGenerator DiskFamilyGenerator::constant(Circle c, double r) {
  return {c, [r](Vec2) { return r; }};
}

DiskFamilyGenerator DiskFamilyGenerator::inscribed(Circle c, Box domain) {
  return {c, [domain](Vec2 q) { return domain.inscribed_radius(q); }};
}

DiskFamilyRegion::DiskFamilyRegion(std::vector<DiskFamilyGenerator> generators,
                                   std::size_t scan_samples)
    : generators_(std::move(generators)), scan_samples_(scan_samples) {
  if (generators_.empty()) throw std::invalid_argument("DiskFamilyRegion: no generators");
  if (scan_samples_ < 8) scan_samples_ = 8;
}

double DiskFamilyRegion::generator_margin(const DiskFamilyGenerator& gen, Vec2 p) const {
  const Circle& g = gen.circle;
  if (g.radius <= 0.0) return gen.radius_at(g.center) - dist(p, g.center);

  auto f = [&](double theta) {
    const Vec2 q = g.center + g.radius * unit_vec(theta);
    return gen.radius_at(q) - dist(p, q);
  };

  // Coarse scan over the boundary circle.
  double best = std::numeric_limits<double>::infinity();
  double best_theta = 0.0;
  const double step = 2.0 * std::numbers::pi / static_cast<double>(scan_samples_);
  for (std::size_t i = 0; i < scan_samples_; ++i) {
    const double theta = static_cast<double>(i) * step;
    const double v = f(theta);
    if (v < best) {
      best = v;
      best_theta = theta;
    }
  }

  // Golden-section refinement in the bracketing interval around the coarse
  // minimizer. f restricted to the circle is piecewise smooth; the bracket
  // of one coarse step each side contains the true minimizer of its basin.
  const double gr = 0.6180339887498949;
  double a = best_theta - step;
  double b = best_theta + step;
  double x1 = b - gr * (b - a);
  double x2 = a + gr * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  for (int iter = 0; iter < 48; ++iter) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - gr * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + gr * (b - a);
      f2 = f(x2);
    }
  }
  return std::min(best, std::min(f1, f2));
}

double DiskFamilyRegion::margin(Vec2 p) const {
  double m = std::numeric_limits<double>::infinity();
  for (const auto& gen : generators_) m = std::min(m, generator_margin(gen, p));
  return m;
}

bool DiskFamilyRegion::contains(Vec2 p, double eps) const { return margin(p) >= -eps; }

ConvexPolygon DiskFamilyRegion::polygonize(Vec2 interior, double max_radius,
                                           std::size_t directions) const {
  if (!contains(interior, 1e-9)) return ConvexPolygon{};
  // Each boundary ray is independent (contains() is const), so the casts run
  // under the chunked parallel layer; vertex i is always the ray at angle
  // 2*pi*i/directions, keeping the polygon bit-identical at any thread count.
  std::vector<Vec2> verts(directions);
  parallel_for(directions, [&](std::size_t i) {
    const double theta =
        2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(directions);
    const Vec2 dir = unit_vec(theta);
    double lo = 0.0;
    double hi = max_radius;
    // Expand hi only if needed (region could extend past max_radius guess).
    if (contains(interior + dir * hi)) {
      verts[i] = interior + dir * hi;
      return;
    }
    for (int iter = 0; iter < 48; ++iter) {
      const double mid = (lo + hi) / 2.0;
      if (contains(interior + dir * mid))
        lo = mid;
      else
        hi = mid;
    }
    verts[i] = interior + dir * lo;
  });
  return ConvexPolygon(std::move(verts));
}

}  // namespace sens
