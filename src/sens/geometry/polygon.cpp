#include "sens/geometry/polygon.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sens {

ConvexPolygon::ConvexPolygon(std::vector<Vec2> vertices) : vertices_(std::move(vertices)) {}

double ConvexPolygon::area() const {
  if (empty()) return 0.0;
  double twice = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2 a = vertices_[i];
    const Vec2 b = vertices_[(i + 1) % vertices_.size()];
    twice += a.cross(b);
  }
  return twice / 2.0;
}

Vec2 ConvexPolygon::centroid() const {
  if (empty()) return {};
  double twice = 0.0;
  Vec2 acc{0.0, 0.0};
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2 a = vertices_[i];
    const Vec2 b = vertices_[(i + 1) % vertices_.size()];
    const double w = a.cross(b);
    twice += w;
    acc += (a + b) * w;
  }
  if (twice == 0.0) return vertices_[0];
  return acc / (3.0 * twice);
}

bool ConvexPolygon::contains(Vec2 p, double eps) const {
  const std::size_t n = vertices_.size();
  if (n < 3) return false;
  const Vec2 v0 = vertices_[0];
  // Outside the fan wedge [v1, v_{n-1}]?
  if ((vertices_[1] - v0).cross(p - v0) < -eps) return false;
  if ((vertices_[n - 1] - v0).cross(p - v0) > eps) return false;
  // Binary search for the fan triangle containing direction (p - v0).
  std::size_t lo = 1, hi = n - 1;
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if ((vertices_[mid] - v0).cross(p - v0) >= 0.0)
      lo = mid;
    else
      hi = mid;
  }
  return (vertices_[hi] - vertices_[lo]).cross(p - vertices_[lo]) >= -eps;
}

bool ConvexPolygon::is_convex(double eps) const {
  const std::size_t n = vertices_.size();
  if (n < 3) return false;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = vertices_[i];
    const Vec2 b = vertices_[(i + 1) % n];
    const Vec2 c = vertices_[(i + 2) % n];
    if ((b - a).cross(c - b) < -eps) return false;
  }
  return true;
}

Box ConvexPolygon::bounding_box() const {
  if (empty()) return {};
  Vec2 lo = vertices_[0], hi = vertices_[0];
  for (const Vec2 v : vertices_) {
    lo.x = std::min(lo.x, v.x);
    lo.y = std::min(lo.y, v.y);
    hi.x = std::max(hi.x, v.x);
    hi.y = std::max(hi.y, v.y);
  }
  return {lo, hi};
}

ConvexPolygon ConvexPolygon::clip_halfplane(Vec2 n, double c) const {
  std::vector<Vec2> out;
  const std::size_t count = vertices_.size();
  out.reserve(count + 1);
  for (std::size_t i = 0; i < count; ++i) {
    const Vec2 a = vertices_[i];
    const Vec2 b = vertices_[(i + 1) % count];
    const double da = n.dot(a) - c;
    const double db = n.dot(b) - c;
    if (da <= 0.0) out.push_back(a);
    if ((da < 0.0 && db > 0.0) || (da > 0.0 && db < 0.0)) {
      const double t = da / (da - db);
      out.push_back(a + (b - a) * t);
    }
  }
  return ConvexPolygon(std::move(out));
}

ConvexPolygon ConvexPolygon::clip_box(const Box& box) const {
  return clip_halfplane({1.0, 0.0}, box.hi.x)
      .clip_halfplane({-1.0, 0.0}, -box.lo.x)
      .clip_halfplane({0.0, 1.0}, box.hi.y)
      .clip_halfplane({0.0, -1.0}, -box.lo.y);
}

ConvexPolygon box_polygon(const Box& box) {
  return ConvexPolygon({box.lo, {box.hi.x, box.lo.y}, box.hi, {box.lo.x, box.hi.y}});
}

ConvexPolygon circle_polygon(Vec2 center, double radius, std::size_t n) {
  if (n < 3) throw std::invalid_argument("circle_polygon: n < 3");
  std::vector<Vec2> verts;
  verts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double theta = 2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(n);
    verts.push_back(center + radius * unit_vec(theta));
  }
  return ConvexPolygon(std::move(verts));
}

}  // namespace sens
