// Exact area of the intersection of a disk with a convex polygon.
//
// Used to compute relay-region areas of the form (convex region) \ C0:
// area(polygon) - area(polygon ∩ C0). The algorithm decomposes the polygon
// into signed fan triangles from the disk center and replaces the parts of
// each edge outside the disk by circular sectors — exact up to floating point.
#pragma once

#include "sens/geometry/circle.hpp"
#include "sens/geometry/polygon.hpp"

namespace sens {

/// Signed area of polygon ∩ disk; for CCW polygons the result is >= 0.
[[nodiscard]] double disk_polygon_area(const Circle& disk, const ConvexPolygon& poly);

}  // namespace sens
