// 2-D vector/point type. Everything in the library works in double precision
// Euclidean coordinates on R^2 (the paper's setting).
#pragma once

#include <cmath>

namespace sens {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr bool operator==(const Vec2&) const = default;

  [[nodiscard]] constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; >0 when `o` is CCW from *this.
  [[nodiscard]] constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{0.0, 0.0};
  }
  /// Perpendicular (rotated +90 degrees).
  [[nodiscard]] constexpr Vec2 perp() const { return {-y, x}; }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

[[nodiscard]] inline double dist(Vec2 a, Vec2 b) { return (a - b).norm(); }
[[nodiscard]] constexpr double dist2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

/// Unit vector at angle theta (radians).
[[nodiscard]] inline Vec2 unit_vec(double theta) { return {std::cos(theta), std::sin(theta)}; }

}  // namespace sens
