// Circle/disk helpers, including the closed-form lens (two-disk intersection)
// area used to validate the relay-region machinery.
#pragma once

#include <algorithm>
#include <cmath>
#include <numbers>

#include "sens/geometry/vec2.hpp"

namespace sens {

struct Circle {
  Vec2 center;
  double radius = 0.0;

  constexpr Circle() = default;
  constexpr Circle(Vec2 c, double r) : center(c), radius(r) {}

  [[nodiscard]] constexpr bool contains(Vec2 p, double eps = 0.0) const {
    const double rr = radius + eps;
    return dist2(p, center) <= rr * rr;
  }

  [[nodiscard]] double area() const { return std::numbers::pi * radius * radius; }
};

/// Exact area of the intersection of two disks.
[[nodiscard]] inline double lens_area(const Circle& a, const Circle& b) {
  const double d = dist(a.center, b.center);
  const double r = a.radius;
  const double s = b.radius;
  if (d >= r + s) return 0.0;                                  // disjoint
  if (d + std::min(r, s) <= std::max(r, s)) {                  // one inside the other
    const double rm = std::min(r, s);
    return std::numbers::pi * rm * rm;
  }
  const double r2 = r * r, s2 = s * s, d2 = d * d;
  const double alpha = std::acos(std::clamp((d2 + r2 - s2) / (2.0 * d * r), -1.0, 1.0));
  const double beta = std::acos(std::clamp((d2 + s2 - r2) / (2.0 * d * s), -1.0, 1.0));
  return r2 * (alpha - std::sin(2.0 * alpha) / 2.0) + s2 * (beta - std::sin(2.0 * beta) / 2.0);
}

}  // namespace sens
