#include "sens/geometry/circle_clip.hpp"

#include <algorithm>
#include <cmath>

namespace sens {

namespace {

/// Area contribution of the region bounded by (center->u), the circle/chord,
/// and (v->center), for points u,v relative to the disk center.
double triangle_part(Vec2 u, Vec2 v) { return 0.5 * u.cross(v); }

double sector_part(Vec2 u, Vec2 v, double r) {
  const double angle = std::atan2(u.cross(v), u.dot(v));
  return 0.5 * r * r * angle;
}

/// Contribution of one directed polygon edge (a -> b), both relative to the
/// disk center, to the signed area of polygon ∩ disk.
double edge_contribution(Vec2 a, Vec2 b, double r) {
  const Vec2 d = b - a;
  const double qa = d.norm2();
  const double r2 = r * r;
  if (qa == 0.0) return 0.0;
  const double qb = 2.0 * a.dot(d);
  const double qc = a.norm2() - r2;
  const double disc = qb * qb - 4.0 * qa * qc;

  auto piece = [&](Vec2 u, Vec2 v) {
    // The open segment (u, v) lies entirely inside or entirely outside the
    // disk; decide by its midpoint.
    const Vec2 mid = (u + v) * 0.5;
    return mid.norm2() <= r2 ? triangle_part(u, v) : sector_part(u, v, r);
  };

  if (disc <= 0.0) return piece(a, b);

  const double sq = std::sqrt(disc);
  double t1 = (-qb - sq) / (2.0 * qa);
  double t2 = (-qb + sq) / (2.0 * qa);
  t1 = std::clamp(t1, 0.0, 1.0);
  t2 = std::clamp(t2, 0.0, 1.0);
  if (t2 <= t1) return piece(a, b);

  const Vec2 p1 = a + d * t1;
  const Vec2 p2 = a + d * t2;
  double total = 0.0;
  if (t1 > 0.0) total += piece(a, p1);
  total += triangle_part(p1, p2);  // the chord segment is inside by construction
  if (t2 < 1.0) total += piece(p2, b);
  return total;
}

}  // namespace

double disk_polygon_area(const Circle& disk, const ConvexPolygon& poly) {
  if (poly.empty() || disk.radius <= 0.0) return 0.0;
  const auto& verts = poly.vertices();
  double area = 0.0;
  for (std::size_t i = 0; i < verts.size(); ++i) {
    const Vec2 a = verts[i] - disk.center;
    const Vec2 b = verts[(i + 1) % verts.size()] - disk.center;
    area += edge_contribution(a, b, disk.radius);
  }
  return area;
}

}  // namespace sens
