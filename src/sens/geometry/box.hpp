// Axis-aligned box (closed on the low edge, open on the high edge, matching
// the half-open tiling convention used to partition R^2 without overlap).
#pragma once

#include <algorithm>

#include "sens/geometry/vec2.hpp"

namespace sens {

struct Box {
  Vec2 lo;
  Vec2 hi;

  constexpr Box() = default;
  constexpr Box(Vec2 lo_, Vec2 hi_) : lo(lo_), hi(hi_) {}
  static constexpr Box centered(Vec2 center, double half_w, double half_h) {
    return {{center.x - half_w, center.y - half_h}, {center.x + half_w, center.y + half_h}};
  }
  static constexpr Box square(Vec2 center, double side) {
    return centered(center, side / 2.0, side / 2.0);
  }

  [[nodiscard]] constexpr double width() const { return hi.x - lo.x; }
  [[nodiscard]] constexpr double height() const { return hi.y - lo.y; }
  [[nodiscard]] constexpr double area() const { return width() * height(); }
  [[nodiscard]] constexpr Vec2 center() const { return {(lo.x + hi.x) / 2.0, (lo.y + hi.y) / 2.0}; }

  /// Half-open containment: lo <= p < hi (tiling convention).
  [[nodiscard]] constexpr bool contains(Vec2 p) const {
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y;
  }
  /// Closed containment with tolerance; used by geometric region tests.
  [[nodiscard]] constexpr bool contains_closed(Vec2 p, double eps = 0.0) const {
    return p.x >= lo.x - eps && p.x <= hi.x + eps && p.y >= lo.y - eps && p.y <= hi.y + eps;
  }

  [[nodiscard]] constexpr bool intersects(const Box& o) const {
    return lo.x < o.hi.x && o.lo.x < hi.x && lo.y < o.hi.y && o.lo.y < hi.y;
  }

  /// Largest radius r such that disk(p, r) stays inside this box; negative
  /// if p is outside.
  [[nodiscard]] constexpr double inscribed_radius(Vec2 p) const {
    return std::min(std::min(p.x - lo.x, hi.x - p.x), std::min(p.y - lo.y, hi.y - p.y));
  }

  [[nodiscard]] constexpr Box expanded(double margin) const {
    return {{lo.x - margin, lo.y - margin}, {hi.x + margin, hi.y + margin}};
  }

  [[nodiscard]] constexpr Box united(const Box& o) const {
    return {{std::min(lo.x, o.lo.x), std::min(lo.y, o.lo.y)},
            {std::max(hi.x, o.hi.x), std::max(hi.y, o.hi.y)}};
  }
};

}  // namespace sens
