// Convex polygons in counter-clockwise order with O(log n) point location.
//
// Region geometry in this project reduces to convex sets (intersections of
// disks are convex), so a polygon approximation with a few hundred vertices
// gives fast, accurate membership tests for the tile-classification hot path.
#pragma once

#include <cstddef>
#include <vector>

#include "sens/geometry/box.hpp"
#include "sens/geometry/vec2.hpp"

namespace sens {

class ConvexPolygon {
 public:
  ConvexPolygon() = default;
  /// Vertices must be in counter-clockwise order and form a convex chain;
  /// verified in debug via is_convex().
  explicit ConvexPolygon(std::vector<Vec2> vertices);

  [[nodiscard]] bool empty() const { return vertices_.size() < 3; }
  [[nodiscard]] std::size_t size() const { return vertices_.size(); }
  [[nodiscard]] const std::vector<Vec2>& vertices() const { return vertices_; }

  /// Signed (shoelace) area; >= 0 for CCW polygons.
  [[nodiscard]] double area() const;

  [[nodiscard]] Vec2 centroid() const;

  /// Point membership (closed set, tolerance eps) by fan binary search from
  /// vertices_[0]: O(log n).
  [[nodiscard]] bool contains(Vec2 p, double eps = 1e-12) const;

  /// True if every interior angle turns left (allowing collinear runs).
  [[nodiscard]] bool is_convex(double eps = 1e-12) const;

  [[nodiscard]] Box bounding_box() const;

  /// Clip by half-plane {p : n.dot(p) <= c} (Sutherland-Hodgman step).
  [[nodiscard]] ConvexPolygon clip_halfplane(Vec2 n, double c) const;

  /// Clip to an axis-aligned box.
  [[nodiscard]] ConvexPolygon clip_box(const Box& box) const;

 private:
  std::vector<Vec2> vertices_;
};

/// CCW rectangle polygon for a box.
[[nodiscard]] ConvexPolygon box_polygon(const Box& box);

/// Regular n-gon inscribed approximation of a circle (CCW).
[[nodiscard]] ConvexPolygon circle_polygon(Vec2 center, double radius, std::size_t n);

}  // namespace sens
