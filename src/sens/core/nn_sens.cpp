#include "sens/core/nn_sens.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace sens {

namespace {

/// Lazy cache of k-NN selections for the (few) overlay nodes. Queries go
/// through one reused scratch buffer, so only the cached result allocates.
class KnnEdgeOracle {
 public:
  KnnEdgeOracle(const KdTree& tree, std::size_t k) : tree_(&tree), k_(k) {}

  [[nodiscard]] bool has_edge(std::uint32_t u, std::uint32_t v) {
    return selects(u, v) || selects(v, u);
  }

 private:
  [[nodiscard]] bool selects(std::uint32_t from, std::uint32_t to) {
    auto it = cache_.find(from);
    if (it == cache_.end()) {
      tree_->nearest_into(tree_->points()[from], k_, from, scratch_, found_);
      std::sort(found_.begin(), found_.end());
      it = cache_.emplace(from, found_).first;
    }
    return std::binary_search(it->second.begin(), it->second.end(), to);
  }

  const KdTree* tree_;
  std::size_t k_;
  KdTree::QueryScratch scratch_;
  std::vector<std::uint32_t> found_;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> cache_;
};

}  // namespace

Overlay build_nn_overlay(const NnClassification& cls, std::span<const Vec2> points,
                         const KdTree& tree) {
  Overlay ov;
  ov.window = cls.window;
  ov.tile_side = 10.0 * cls.a;
  ov.sites = cls.site_grid();
  ov.rep_node.assign(cls.window.tile_count(), Overlay::no_node());
  ov.exit_chain.assign(cls.window.tile_count(), {});

  std::unordered_map<std::uint32_t, std::uint32_t> node_of_point;
  auto overlay_node = [&](std::uint32_t point_idx) {
    auto [it, inserted] = node_of_point.try_emplace(
        point_idx, static_cast<std::uint32_t>(ov.base_index.size()));
    if (inserted) ov.base_index.push_back(point_idx);
    return it->second;
  };

  KnnEdgeOracle oracle(tree, cls.k);
  CsrGraph::Builder edges;
  auto try_edge = [&](std::uint32_t a, std::uint32_t b) {
    if (a == b) return;
    ++ov.edges_expected;
    if (oracle.has_edge(ov.base_index[a], ov.base_index[b])) {
      edges.add_edge(a, b);
    } else {
      ++ov.edges_missing;
    }
  };

  const SiteGrid& grid = ov.sites;
  for (std::int32_t y = 0; y < grid.height(); ++y) {
    for (std::int32_t x = 0; x < grid.width(); ++x) {
      const Site s{x, y};
      if (!grid.open(s)) continue;
      const std::size_t idx = ov.tile_index(s);
      const NnTileNodes& tn = cls.nodes[idx];
      const std::uint32_t rep = overlay_node(tn.rep);
      ov.rep_node[idx] = rep;
      for (int dir = 0; dir < 4; ++dir) {
        const auto d = static_cast<std::size_t>(dir);
        const std::uint32_t e_relay = overlay_node(tn.e_relay[d]);
        const std::uint32_t c_relay = overlay_node(tn.c_relay[d]);
        ov.exit_chain[idx][d] = {e_relay, c_relay};
        try_edge(rep, e_relay);
        try_edge(e_relay, c_relay);
      }
    }
  }

  for (std::int32_t y = 0; y < grid.height(); ++y) {
    for (std::int32_t x = 0; x < grid.width(); ++x) {
      const Site s{x, y};
      if (!grid.open(s)) continue;
      const std::size_t idx = ov.tile_index(s);
      for (int dir : {0, 2}) {
        const Site n{x + (dir == 0 ? 1 : 0), y + (dir == 2 ? 1 : 0)};
        if (!grid.in_bounds(n) || !grid.open(n)) continue;
        const std::size_t nidx = ov.tile_index(n);
        const std::uint32_t a = ov.exit_chain[idx][static_cast<std::size_t>(dir)].back();
        const std::uint32_t b =
            ov.exit_chain[nidx][static_cast<std::size_t>(opposite_dir(dir))].back();
        try_edge(a, b);
      }
    }
  }

  ov.geo.points.reserve(ov.base_index.size());
  for (const std::uint32_t p : ov.base_index) ov.geo.points.push_back(points[p]);
  ov.geo.graph = std::move(edges).build(ov.base_index.size());
  ov.comps = connected_components(ov.geo.graph);
  return ov;
}

NnSensResult build_nn_sens(const NnTileSpec& spec, int tiles_x, int tiles_y, std::uint64_t seed,
                           double buffer_tiles) {
  NnSensResult result;
  const Tiling tiling(spec.side());
  const TileWindow window{0, 0, tiles_x, tiles_y};
  const Box sample_bounds = window.bounds(tiling).expanded(buffer_tiles * spec.side());
  result.points = poisson_point_set(sample_bounds, 1.0, seed);
  result.classification = classify_nn(spec, result.points.points, window);
  const KdTree tree(result.points.points);
  result.overlay = build_nn_overlay(result.classification, result.points.points, tree);
  return result;
}

}  // namespace sens
