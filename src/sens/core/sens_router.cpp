#include "sens/core/sens_router.hpp"

#include <algorithm>
#include <cmath>

#include "sens/tiles/udg_tile.hpp"

namespace sens {

namespace {
/// Direction index (kDirVec convention) of the unit step from a to b.
int step_dir(Site a, Site b) {
  if (b.x == a.x + 1 && b.y == a.y) return 0;
  if (b.x == a.x - 1 && b.y == a.y) return 1;
  if (b.x == a.x && b.y == a.y + 1) return 2;
  return 3;
}
}  // namespace

SensRoute SensRouter::route(Site src, Site dst) const {
  SensRouteScratch scratch;
  return route(src, dst, scratch);
}

SensRoute SensRouter::route(Site src, Site dst, SensRouteScratch& scratch) const {
  SensRoute out;
  const MeshRoute mesh_route = mesh_.route(src, dst, scratch.mesh);
  out.probes = mesh_route.probes;
  if (!mesh_route.success) return out;
  out.tile_hops = mesh_route.hops();

  const Overlay& ov = *overlay_;
  out.node_path.push_back(ov.rep_of(src));
  for (std::size_t i = 1; i < mesh_route.path.size(); ++i) {
    const Site a = mesh_route.path[i - 1];
    const Site b = mesh_route.path[i];
    const int dir = step_dir(a, b);
    // rep(a) -> exit chain of a toward dir -> reversed chain of b -> rep(b).
    for (const std::uint32_t node : ov.exit_chain[ov.tile_index(a)][static_cast<std::size_t>(dir)])
      out.node_path.push_back(node);
    const auto& back = ov.exit_chain[ov.tile_index(b)][static_cast<std::size_t>(opposite_dir(dir))];
    for (auto it = back.rbegin(); it != back.rend(); ++it) out.node_path.push_back(*it);
    out.node_path.push_back(ov.rep_node[ov.tile_index(b)]);
  }
  // A node may play two consecutive roles; collapse repeats.
  out.node_path.erase(std::unique(out.node_path.begin(), out.node_path.end()),
                      out.node_path.end());

  for (std::size_t i = 1; i < out.node_path.size(); ++i) {
    const double d = ov.geo.edge_length(out.node_path[i - 1], out.node_path[i]);
    out.euclid_length += d;
    out.power2 += d * d;
  }
  out.success = true;
  return out;
}

}  // namespace sens
