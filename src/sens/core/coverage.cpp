#include "sens/core/coverage.hpp"

#include <algorithm>

#include "sens/rng/rng.hpp"
#include "sens/spatial/grid_index.hpp"

namespace sens {

std::vector<double> empty_block_probability(const Overlay& overlay,
                                            std::span<const int> box_sizes) {
  const std::int32_t w = overlay.sites.width();
  const std::int32_t h = overlay.sites.height();
  // Summed-area table of the "giant rep present" indicator.
  std::vector<std::int64_t> sat(static_cast<std::size_t>(w + 1) * static_cast<std::size_t>(h + 1),
                                0);
  auto sat_at = [&](std::int32_t x, std::int32_t y) -> std::int64_t& {
    return sat[static_cast<std::size_t>(y) * static_cast<std::size_t>(w + 1) +
               static_cast<std::size_t>(x)];
  };
  for (std::int32_t y = 1; y <= h; ++y) {
    for (std::int32_t x = 1; x <= w; ++x) {
      const std::int64_t present = overlay.rep_in_giant({x - 1, y - 1}) ? 1 : 0;
      sat_at(x, y) = present + sat_at(x - 1, y) + sat_at(x, y - 1) - sat_at(x - 1, y - 1);
    }
  }

  std::vector<double> out;
  out.reserve(box_sizes.size());
  for (const int m : box_sizes) {
    if (m <= 0 || m > w || m > h) {
      out.push_back(1.0);
      continue;
    }
    std::int64_t empty = 0;
    std::int64_t total = 0;
    for (std::int32_t y = 0; y + m <= h; ++y) {
      for (std::int32_t x = 0; x + m <= w; ++x) {
        const std::int64_t sum =
            sat_at(x + m, y + m) - sat_at(x, y + m) - sat_at(x + m, y) + sat_at(x, y);
        ++total;
        if (sum == 0) ++empty;
      }
    }
    out.push_back(total == 0 ? 1.0 : static_cast<double>(empty) / static_cast<double>(total));
  }
  return out;
}

Proportion empty_box_probability(const Overlay& overlay, double ell, std::size_t trials,
                                 std::uint64_t seed) {
  // Giant-component overlay node positions, spatially indexed for the
  // emptiness queries.
  std::vector<Vec2> giant_points;
  for (std::uint32_t v = 0; v < overlay.geo.size(); ++v)
    if (overlay.comps.in_largest(v)) giant_points.push_back(overlay.geo.points[v]);

  const Tiling tiling(overlay.tile_side);
  const Box bounds = overlay.window.bounds(tiling);
  Proportion result;
  result.trials = trials;
  if (giant_points.empty()) {
    result.successes = trials;
    return result;
  }
  const GridIndex index(giant_points, bounds, std::max(ell, overlay.tile_side));

  Rng rng = Rng::stream(seed, 0xb0c5);
  const double span_x = bounds.width() - ell;
  const double span_y = bounds.height() - ell;
  if (span_x <= 0.0 || span_y <= 0.0) {
    result.successes = 0;
    return result;
  }
  for (std::size_t t = 0; t < trials; ++t) {
    const Vec2 lo{bounds.lo.x + rng.uniform() * span_x, bounds.lo.y + rng.uniform() * span_y};
    const Box box{lo, {lo.x + ell, lo.y + ell}};
    // Any giant node in the box? Query the circumscribed radius, filter, and
    // stop the scan at the first hit (the visitor template inlines; no
    // std::function in the trial loop).
    const bool occupied = index.for_each_in_radius_until(
        box.center(), ell * 0.7071067811865476 + 1e-9,
        [&](std::uint32_t j) { return box.contains(giant_points[j]); });
    if (!occupied) ++result.successes;
  }
  return result;
}

}  // namespace sens
