// Routing on the SENS overlay (Section 4.2): tile-level x-y routing with
// distributed-BFS recovery (Angel et al., sens/perc/mesh_router.hpp) whose
// mesh hops are realized through the relay chains of the overlay —
// "representative points of a tile act as if they are open lattice points
// in Z^2; they use relay points to send packets to the representative
// points of their neighbouring good tiles" (Figure 8).
#pragma once

#include <cstdint>
#include <vector>

#include "sens/core/overlay.hpp"
#include "sens/perc/mesh_router.hpp"

namespace sens {

struct SensRoute {
  bool success = false;
  std::vector<std::uint32_t> node_path;  ///< overlay node ids, source rep first
  std::size_t tile_hops = 0;             ///< mesh hops of the underlying tile route
  std::size_t probes = 0;                ///< openness queries of the mesh router
  double euclid_length = 0.0;            ///< total Euclidean length of node path
  double power2 = 0.0;                   ///< sum d^2 over the node path (beta = 2)

  [[nodiscard]] std::size_t node_hops() const {
    return node_path.empty() ? 0 : node_path.size() - 1;
  }
};

/// Caller-owned working memory for SensRouter::route — the serving contract
/// (DESIGN.md §2.6): routers hold no mutable scratch, so one router instance
/// serves any number of concurrent callers, each bringing its own scratch.
/// Contents are opaque and clobbered by every call; never share one scratch
/// between threads.
struct SensRouteScratch {
  MeshRouteScratch mesh;  ///< detour-BFS memory of the underlying mesh route
};

class SensRouter {
 public:
  explicit SensRouter(const Overlay& overlay) : overlay_(&overlay), mesh_(overlay.sites) {}

  /// Route between the representatives of two good tiles. The tile route
  /// comes from the percolated-mesh router; every mesh edge (t -> t') is
  /// realized as rep(t) -> exit relays of t -> entry relays of t' -> rep(t').
  /// Allocation-free detour BFS given a warm caller-owned scratch
  /// (DESIGN.md §2.4); the router itself is immutable after construction
  /// and safe to share between concurrent callers (§2.6).
  [[nodiscard]] SensRoute route(Site src, Site dst, SensRouteScratch& scratch) const;

  /// Allocating wrapper (one-off routes, tests).
  [[nodiscard]] SensRoute route(Site src, Site dst) const;

 private:
  const Overlay* overlay_;
  MeshRouter mesh_;
};

}  // namespace sens
