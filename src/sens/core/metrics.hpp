// Overlay property measurements: sparsity (P1), stretch (P2 / Theorem 3.2)
// and the Claim 2.1 / 2.3 inter-tile path checks.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sens/core/overlay.hpp"

namespace sens {

/// Degree distribution of the overlay graph. P1 asserts max <= 4.
struct DegreeReport {
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  std::array<std::size_t, 8> histogram{};  ///< counts of degree 0..6, 7+ in [7]
  std::size_t nodes = 0;
};

[[nodiscard]] DegreeReport overlay_degree_report(const Overlay& overlay);

/// One stretch observation between two representatives of the largest
/// overlay component.
struct StretchSample {
  double euclid = 0.0;       ///< straight-line distance between the reps
  std::uint32_t hops = 0;    ///< overlay graph distance
  double path_length = 0.0;  ///< Euclidean length along the overlay path
  double path_power2 = 0.0;  ///< sum of d^2 along the overlay path
  std::int32_t lattice = 0;  ///< tile-lattice L1 distance D(x, y)

  [[nodiscard]] double length_stretch() const {
    return euclid > 0.0 ? path_length / euclid : 1.0;
  }
  /// Hop stretch against lattice distance (Theorem 3.2's d(x,y) vs D(x,y)).
  [[nodiscard]] double hop_per_lattice() const {
    return lattice > 0 ? static_cast<double>(hops) / static_cast<double>(lattice) : 0.0;
  }
};

/// Sample `pairs` random rep pairs of the largest component; each sample
/// runs one BFS + path reconstruction on the overlay graph.
[[nodiscard]] std::vector<StretchSample> sample_overlay_stretch(const Overlay& overlay,
                                                                std::size_t pairs,
                                                                std::uint64_t seed);

/// Claim 2.1 / 2.3 verification over every adjacent pair of good tiles in
/// the window: does the prescribed relay path exist edge-by-edge, and what
/// is its Euclidean length relative to the rep-rep distance (the c_u / c_k
/// constant)?
struct ClaimCheck {
  std::size_t adjacent_good_pairs = 0;
  std::size_t paths_realized = 0;     ///< all prescribed edges exist
  double worst_edge_length = 0.0;     ///< longest overlay edge on a realized path
  double worst_stretch = 0.0;         ///< max path length / rep-rep distance
  double mean_stretch = 0.0;

  [[nodiscard]] double realized_fraction() const {
    return adjacent_good_pairs == 0
               ? 1.0
               : static_cast<double>(paths_realized) / static_cast<double>(adjacent_good_pairs);
  }
};

[[nodiscard]] ClaimCheck check_adjacent_tile_paths(const Overlay& overlay);

}  // namespace sens
