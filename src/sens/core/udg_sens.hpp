// UDG-SENS(2, lambda) construction (Section 2.1 + Figure 7, centralized
// equivalent of the distributed protocol in sens/runtime).
//
// Pipeline: Poisson points -> tile classification (goodness + per-region
// leader election) -> overlay graph over the elected reps/relays. Overlay
// edges follow Figure 7: rep(t)-relay(t, dir) inside every good tile and
// relay(t, dir)-relay(t', opposite) across every pair of adjacent good
// tiles. An edge is realized only when the two nodes are within the UDG
// link radius; with the strict() spec this always holds (Claim 2.1), with
// the paper() spec violations are possible and are counted.
#pragma once

#include <cstdint>
#include <span>

#include "sens/core/overlay.hpp"
#include "sens/geograph/point_set.hpp"
#include "sens/tiles/classify.hpp"

namespace sens {

/// Overlay from an existing classification (points in the same indexing the
/// classification was built from).
[[nodiscard]] Overlay build_udg_overlay(const UdgClassification& cls,
                                        std::span<const Vec2> points);

struct UdgSensResult {
  PointSet points;
  UdgClassification classification;
  Overlay overlay;
};

/// End-to-end build on a tiles_x x tiles_y tile window anchored at the
/// origin, with PPP(lambda) input sampled from `seed`.
[[nodiscard]] UdgSensResult build_udg_sens(const UdgTileSpec& spec, double lambda, int tiles_x,
                                           int tiles_y, std::uint64_t seed);

}  // namespace sens
