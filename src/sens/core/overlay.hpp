// The SENS overlay: the subnetwork of representatives and relays built on a
// classified tile window. This is the object the paper calls
// UDG-SENS(2, lambda) / NN-SENS(2, k) (strictly: their largest connected
// component, exposed through `comps`).
//
// An overlay couples three views of the same structure:
//   * a geometric graph (`geo`, `base_index`) over the elected nodes,
//   * the site-percolation configuration (`sites`) the tiles induce,
//   * per-tile exit chains that realize a tile-level mesh hop as a node
//     path (rep -> relays -> boundary), used by SensRouter.
// Edges are inserted only when the corresponding base-graph edge actually
// exists; `edges_missing` counts the claim violations (see DESIGN.md §1.1).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sens/geograph/geo_graph.hpp"
#include "sens/graph/components.hpp"
#include "sens/perc/site_grid.hpp"
#include "sens/tiles/tiling.hpp"

namespace sens {

struct Overlay {
  /// Overlay nodes (subset of base points, re-indexed) and overlay edges.
  GeoGraph geo;
  /// Overlay node id -> index into the base point set.
  std::vector<std::uint32_t> base_index;

  /// Tile window and side used to build the overlay.
  TileWindow window;
  double tile_side = 0.0;
  /// Goodness configuration: site open <=> tile good.
  SiteGrid sites;

  /// Per tile (window.index order): overlay node id of the representative,
  /// or kNoNode for bad tiles.
  std::vector<std::uint32_t> rep_node;
  /// Per tile and direction: overlay node ids from (exclusive) the rep to
  /// the tile boundary — {relay} for UDG, {E relay, C relay} for NN.
  std::vector<std::array<std::vector<std::uint32_t>, 4>> exit_chain;

  /// Connected components of the overlay graph; the SENS subgraph proper is
  /// the largest one.
  Components comps;

  /// Edge realization accounting (DESIGN.md §1.1).
  std::size_t edges_expected = 0;
  std::size_t edges_missing = 0;

  // --- convenience ---

  [[nodiscard]] static constexpr std::uint32_t no_node() { return 0xffffffffu; }

  [[nodiscard]] std::size_t tile_index(Site s) const {
    return static_cast<std::size_t>(s.y) * static_cast<std::size_t>(window.width) +
           static_cast<std::size_t>(s.x);
  }
  [[nodiscard]] bool tile_good(Site s) const { return sites.open(s); }
  [[nodiscard]] std::uint32_t rep_of(Site s) const { return rep_node[tile_index(s)]; }

  /// True if the tile's rep exists and belongs to the largest overlay
  /// component (i.e. the tile participates in the SENS subgraph).
  [[nodiscard]] bool rep_in_giant(Site s) const {
    const std::uint32_t r = rep_of(s);
    return r != no_node() && comps.in_largest(r);
  }

  /// Sites whose representatives lie in the largest overlay component.
  [[nodiscard]] std::vector<Site> giant_rep_sites() const;

  /// Overlay nodes of the largest component.
  [[nodiscard]] std::size_t giant_size() const { return comps.largest_size(); }
};

}  // namespace sens
