#include "sens/core/metrics.hpp"

#include <algorithm>

#include "sens/graph/bfs.hpp"
#include "sens/rng/rng.hpp"
#include "sens/tiles/udg_tile.hpp"

namespace sens {

DegreeReport overlay_degree_report(const Overlay& overlay) {
  DegreeReport report;
  const CsrGraph& g = overlay.geo.graph;
  report.nodes = g.num_vertices();
  report.max_degree = g.max_degree();
  report.mean_degree = g.mean_degree();
  for (std::uint32_t v = 0; v < g.num_vertices(); ++v) {
    const std::size_t d = g.degree(v);
    ++report.histogram[std::min<std::size_t>(d, report.histogram.size() - 1)];
  }
  return report;
}

std::vector<StretchSample> sample_overlay_stretch(const Overlay& overlay, std::size_t pairs,
                                                  std::uint64_t seed) {
  std::vector<StretchSample> samples;
  const std::vector<Site> reps = overlay.giant_rep_sites();
  if (reps.size() < 2) return samples;
  Rng rng = Rng::stream(seed, 0x57e7c4);
  samples.reserve(pairs);
  // One BFS scratch + path buffer reused across every pair (DESIGN.md §2.4).
  BfsScratch scratch;
  std::vector<std::uint32_t> path;
  for (std::size_t i = 0; i < pairs; ++i) {
    const Site sa = reps[rng.uniform_index(reps.size())];
    const Site sb = reps[rng.uniform_index(reps.size())];
    if (sa == sb) continue;
    const std::uint32_t u = overlay.rep_of(sa);
    const std::uint32_t v = overlay.rep_of(sb);
    bfs_path_into(overlay.geo.graph, u, v, scratch, path);
    if (path.empty()) continue;  // cannot happen within the largest component
    StretchSample s;
    s.euclid = dist(overlay.geo.points[u], overlay.geo.points[v]);
    s.hops = static_cast<std::uint32_t>(path.size() - 1);
    s.path_length = overlay.geo.path_length(path);
    s.path_power2 = overlay.geo.path_power(path, 2.0);
    s.lattice = lattice_distance(sa, sb);
    samples.push_back(s);
  }
  return samples;
}

ClaimCheck check_adjacent_tile_paths(const Overlay& overlay) {
  ClaimCheck check;
  const SiteGrid& grid = overlay.sites;
  double stretch_sum = 0.0;
  for (std::int32_t y = 0; y < grid.height(); ++y) {
    for (std::int32_t x = 0; x < grid.width(); ++x) {
      const Site s{x, y};
      if (!grid.open(s)) continue;
      for (int dir : {0, 2}) {
        const Site n{x + (dir == 0 ? 1 : 0), y + (dir == 2 ? 1 : 0)};
        if (!grid.in_bounds(n) || !grid.open(n)) continue;
        ++check.adjacent_good_pairs;

        // The prescribed path: rep -> exit chain -> reversed neighbor exit
        // chain -> neighbor rep; all consecutive pairs must be overlay edges.
        const std::size_t idx = overlay.tile_index(s);
        const std::size_t nidx = overlay.tile_index(n);
        std::vector<std::uint32_t> path{overlay.rep_node[idx]};
        for (std::uint32_t node : overlay.exit_chain[idx][static_cast<std::size_t>(dir)])
          path.push_back(node);
        const auto& back_chain =
            overlay.exit_chain[nidx][static_cast<std::size_t>(opposite_dir(dir))];
        for (auto it = back_chain.rbegin(); it != back_chain.rend(); ++it) path.push_back(*it);
        path.push_back(overlay.rep_node[nidx]);
        // Collapse duplicate shared nodes (a point can hold two roles).
        path.erase(std::unique(path.begin(), path.end()), path.end());

        bool realized = true;
        double worst_edge = 0.0;
        for (std::size_t i = 1; i < path.size(); ++i) {
          if (!overlay.geo.graph.has_edge(path[i - 1], path[i])) {
            realized = false;
            break;
          }
          worst_edge = std::max(worst_edge, overlay.geo.edge_length(path[i - 1], path[i]));
        }
        if (!realized) continue;
        ++check.paths_realized;
        check.worst_edge_length = std::max(check.worst_edge_length, worst_edge);
        const double rep_dist =
            dist(overlay.geo.points[path.front()], overlay.geo.points[path.back()]);
        const double plen = overlay.geo.path_length(path);
        const double stretch = rep_dist > 0.0 ? plen / rep_dist : 1.0;
        check.worst_stretch = std::max(check.worst_stretch, stretch);
        stretch_sum += stretch;
      }
    }
  }
  check.mean_stretch =
      check.paths_realized == 0 ? 0.0 : stretch_sum / static_cast<double>(check.paths_realized);
  return check;
}

}  // namespace sens
