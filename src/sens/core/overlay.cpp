#include "sens/core/overlay.hpp"

namespace sens {

std::vector<Site> Overlay::giant_rep_sites() const {
  std::vector<Site> out;
  for (std::int32_t y = 0; y < sites.height(); ++y) {
    for (std::int32_t x = 0; x < sites.width(); ++x) {
      const Site s{x, y};
      if (rep_in_giant(s)) out.push_back(s);
    }
  }
  return out;
}

}  // namespace sens
