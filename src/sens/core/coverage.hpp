// Coverage measurements (Theorem 3.3 / property P3): the probability that a
// square region contains no node of the SENS subgraph, as a function of the
// region side. Two estimators:
//
//   * tile level, exact sliding window — P(an m x m block of tiles contains
//     no giant-component representative), evaluated over *every* block
//     position via a summed-area table. This mirrors the proof (all sites of
//     phi(T_B(l)) outside the infinite cluster) and has the best statistics.
//   * node level, Monte Carlo — P(a side-l box in R^2 contains no
//     giant-component overlay node), the literal statement of Theorem 3.3.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sens/core/overlay.hpp"
#include "sens/support/stats.hpp"

namespace sens {

/// Exact fraction of m x m site blocks containing no giant-component rep,
/// for each m in `box_sizes` (values larger than the window give 0 blocks
/// and report probability 1).
[[nodiscard]] std::vector<double> empty_block_probability(const Overlay& overlay,
                                                          std::span<const int> box_sizes);

/// Monte-Carlo estimate of P(|B(l) ∩ SENS| = 0) with axis-aligned side-l
/// boxes placed uniformly inside the overlay window (margin keeps boxes
/// fully interior).
[[nodiscard]] Proportion empty_box_probability(const Overlay& overlay, double ell,
                                               std::size_t trials, std::uint64_t seed);

}  // namespace sens
