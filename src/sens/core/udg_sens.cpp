#include "sens/core/udg_sens.hpp"

#include <unordered_map>
#include <utility>

namespace sens {

Overlay build_udg_overlay(const UdgClassification& cls, std::span<const Vec2> points) {
  Overlay ov;
  ov.window = cls.window;
  ov.tile_side = cls.spec.side;
  ov.sites = cls.site_grid();
  ov.rep_node.assign(cls.window.tile_count(), Overlay::no_node());
  ov.exit_chain.assign(cls.window.tile_count(), {});

  // Dedupe overlay nodes: one point may serve several roles (e.g. relay for
  // two adjacent directions when the lenses overlap).
  std::unordered_map<std::uint32_t, std::uint32_t> node_of_point;
  auto overlay_node = [&](std::uint32_t point_idx) {
    auto [it, inserted] = node_of_point.try_emplace(
        point_idx, static_cast<std::uint32_t>(ov.base_index.size()));
    if (inserted) ov.base_index.push_back(point_idx);
    return it->second;
  };

  CsrGraph::Builder edges;
  const double link2 = cls.spec.link_radius * cls.spec.link_radius;
  auto try_edge = [&](std::uint32_t a, std::uint32_t b) {
    ++ov.edges_expected;
    if (dist2(points[ov.base_index[a]], points[ov.base_index[b]]) <= link2) {
      edges.add_edge(a, b);
    } else {
      ++ov.edges_missing;
    }
  };

  const SiteGrid& grid = ov.sites;
  for (std::int32_t y = 0; y < grid.height(); ++y) {
    for (std::int32_t x = 0; x < grid.width(); ++x) {
      const Site s{x, y};
      if (!grid.open(s)) continue;
      const std::size_t idx = ov.tile_index(s);
      const UdgTileNodes& tn = cls.nodes[idx];
      const std::uint32_t rep = overlay_node(tn.rep);
      ov.rep_node[idx] = rep;
      for (int dir = 0; dir < 4; ++dir) {
        const std::uint32_t relay = overlay_node(tn.relay[static_cast<std::size_t>(dir)]);
        ov.exit_chain[idx][static_cast<std::size_t>(dir)] = {relay};
        if (relay != rep) try_edge(rep, relay);
      }
    }
  }

  // Cross-tile relay handshakes (directions +x and +y to visit each pair once).
  for (std::int32_t y = 0; y < grid.height(); ++y) {
    for (std::int32_t x = 0; x < grid.width(); ++x) {
      const Site s{x, y};
      if (!grid.open(s)) continue;
      const std::size_t idx = ov.tile_index(s);
      for (int dir : {0, 2}) {
        const Site n{x + (dir == 0 ? 1 : 0), y + (dir == 2 ? 1 : 0)};
        if (!grid.in_bounds(n) || !grid.open(n)) continue;
        const std::size_t nidx = ov.tile_index(n);
        const std::uint32_t a = ov.exit_chain[idx][static_cast<std::size_t>(dir)].back();
        const std::uint32_t b =
            ov.exit_chain[nidx][static_cast<std::size_t>(opposite_dir(dir))].back();
        if (a != b) try_edge(a, b);
      }
    }
  }

  ov.geo.points.reserve(ov.base_index.size());
  for (const std::uint32_t p : ov.base_index) ov.geo.points.push_back(points[p]);
  ov.geo.graph = std::move(edges).build(ov.base_index.size());
  ov.comps = connected_components(ov.geo.graph);
  return ov;
}

UdgSensResult build_udg_sens(const UdgTileSpec& spec, double lambda, int tiles_x, int tiles_y,
                             std::uint64_t seed) {
  UdgSensResult result;
  const Tiling tiling(spec.side);
  const TileWindow window{0, 0, tiles_x, tiles_y};
  result.points = poisson_point_set(window.bounds(tiling), lambda, seed);
  result.classification = classify_udg(spec, result.points.points, window);
  result.overlay = build_udg_overlay(result.classification, result.points.points);
  return result;
}

}  // namespace sens
