// NN-SENS(2, k) construction (Section 2.2).
//
// Same pipeline as UDG-SENS with two differences:
//   * points are sampled on a window enlarged by a buffer so that k-NN
//     neighborhoods of interior tiles are not distorted by the boundary;
//   * overlay edges must exist in the k-NN graph NN(2, k). Existence is
//     checked against actual k-nearest selections (edge {u,v} exists iff
//     v in kNN(u) or u in kNN(v)), queried on demand from a kd-tree —
//     the full 3M-edge CSR graph is never materialized.
//
// Per Claim 2.3, when adjacent tiles are both good the 5-edge path
// rep - E relay - C relay - C' relay - E' relay - rep' is guaranteed; the
// builder counts any violation (expected zero; verified by tests and E5).
#pragma once

#include <cstdint>
#include <span>

#include "sens/core/overlay.hpp"
#include "sens/geograph/point_set.hpp"
#include "sens/spatial/kdtree.hpp"
#include "sens/tiles/classify.hpp"

namespace sens {

/// Overlay from an existing classification; `tree` must index exactly the
/// same `points` the classification was built from.
[[nodiscard]] Overlay build_nn_overlay(const NnClassification& cls, std::span<const Vec2> points,
                                       const KdTree& tree);

struct NnSensResult {
  PointSet points;
  NnClassification classification;
  Overlay overlay;
};

/// End-to-end build of NN-SENS on a tiles_x x tiles_y window (unit density;
/// the NN model is scale free). `buffer_tiles` widens the sampling window on
/// every side so interior k-NN neighborhoods are exact.
[[nodiscard]] NnSensResult build_nn_sens(const NnTileSpec& spec, int tiles_x, int tiles_y,
                                         std::uint64_t seed, double buffer_tiles = 1.0);

}  // namespace sens
