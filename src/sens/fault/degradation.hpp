// Degradation audit: what a failure scenario costs a topology
// (DESIGN.md §2.9).
//
// The paper's sparse constructions trade edges for power; the audit asks
// what that trade costs in survivability. For any embedded graph (intact
// or post-`apply_faults`) it reports the metrics the E19 degradation
// curves plot against failure fraction:
//
//   * giant fraction     — largest component size / n (connectivity mass);
//   * coverage fraction  — fraction of unit grid cells of the deployment
//     window holding at least one live node (the paper's coverage notion
//     at the sensing scale; loss is computed by the caller as a delta
//     against the intact graph);
//   * mean length stretch — sampled well-separated connected s-t pairs,
//     graph distance / straight-line distance (exact Dijkstra);
//   * certified rate     — fraction of sampled queries the landmark oracle
//     answers within its stretch budget without an exact fallback
//     (serve/landmark_oracle.hpp), i.e. how much of the serving fast path
//     survives the failure;
//   * disconnected rate  — fraction of sampled queries (drawn over ALL
//     survivors, not just the giant) with no path.
//
// Every number is a pure function of (graph, window, params): the pair
// sample comes from a seeded stream, stretch sums reduce in chunk order,
// and the oracle is the §2.6 deterministic one — so audit rows are
// byte-stable in the E19 JSON at any --threads.
#pragma once

#include <cstdint>

#include "sens/geograph/geo_graph.hpp"
#include "sens/geometry/box.hpp"
#include "sens/serve/landmark_oracle.hpp"

namespace sens {

struct DegradationParams {
  std::size_t sample_pairs = 256;     ///< sampled s-t pairs (attempted)
  double min_separation = 5.0;        ///< stretch pairs: straight-line floor
  std::size_t num_landmarks = 16;
  double max_stretch = 1.5;           ///< oracle certification budget
  LandmarkSelection selection = LandmarkSelection::kFarthestPoint;
  std::uint64_t seed = 0xde94ULL;
};

struct DegradationReport {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  double giant_fraction = 0.0;      ///< 0 when the graph is empty
  double coverage_fraction = 0.0;   ///< occupied unit cells / total cells
  double mean_stretch = 0.0;        ///< 0 when no eligible pair exists
  std::size_t stretch_pairs = 0;    ///< pairs behind mean_stretch
  double certified_rate = 0.0;      ///< oracle-certified / sampled queries
  double disconnected_rate = 0.0;   ///< unreachable / sampled queries
};

/// Audit `geo` deployed in `window`. Run on the intact graph and again on
/// each `apply_faults` result; curves are the deltas/ratios across rows.
[[nodiscard]] DegradationReport audit_degradation(const GeoGraph& geo, const Box& window,
                                                  const DegradationParams& params);

}  // namespace sens
