// Deterministic fault injection over geometric graphs (DESIGN.md §2.9).
//
// Sensor deployments fail three ways that matter to the sparse-topology
// claims: individual nodes crash (battery death, arXiv:cs/0411040's
// lifetime horizon), whole regions black out (weather, jamming, a crushed
// corridor), and individual links fade below usability while both
// endpoints stay up (the quasi-UDG concern of ROADMAP direction 4). A
// `FaultPlan` describes one such failure scenario; a `FaultInjector`
// evaluates it as a *pure function* of the plan — every draw comes from a
// dedicated per-entity rng stream (seed, kind, id), never from a shared
// sequence, so the verdict for node 17 does not depend on how many other
// nodes were asked first, on the iteration order, or on `--threads`
// (the §2.3 determinism contract extended to failures).
//
// `apply_faults` materializes the scenario: the induced subgraph on the
// surviving nodes, minus the individually failed links, relabeled dense
// with the order-preserving survivor map. The oracle contract (same
// discipline as §2.7's DynamicHng) is edge-for-edge equality with a fresh
// rebuild over the survivors:
//
//   apply_faults(geo, inj).geo.graph == relabel(filter(geo.graph.edge_list()))
//
// asserted by tests/test_fault.cpp at --threads 1/2/8 (`fault` ctest
// label). Extraction is the two-pass count-then-fill builder
// (graph/flat_adjacency.hpp), so it is chunk-parallel and bit-identical
// at any worker count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sens/geograph/geo_graph.hpp"
#include "sens/geometry/box.hpp"
#include "sens/rng/rng.hpp"

namespace sens {

/// One failure scenario. Fractions are per-entity Bernoulli probabilities;
/// blackout boxes kill geometrically (half-open containment, box.hpp).
struct FaultPlan {
  double node_crash = 0.0;        ///< P(node dies), per-node stream draw
  double link_failure = 0.0;      ///< P(edge dies | both endpoints alive)
  std::vector<Box> blackouts;     ///< regions whose interior nodes all die
  std::uint64_t seed = 0xfa17ULL;
};

/// Pure per-entity evaluation of a FaultPlan. All predicates are const and
/// stateless; concurrent calls are safe and order-independent.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Bernoulli crash draw of node `id` — stream (seed, kCrash, id).
  [[nodiscard]] bool node_crashes(std::uint32_t id) const {
    if (plan_.node_crash <= 0.0) return false;
    return Rng::stream(plan_.seed, kCrashStream, id).bernoulli(plan_.node_crash);
  }

  /// Geometric blackout test (no randomness).
  [[nodiscard]] bool node_blacked_out(Vec2 p) const {
    for (const Box& b : plan_.blackouts) {
      if (b.contains(p)) return true;
    }
    return false;
  }

  /// Node `id` at position `p` fails (crash draw or blackout).
  [[nodiscard]] bool node_fails(std::uint32_t id, Vec2 p) const {
    return node_crashes(id) || node_blacked_out(p);
  }

  /// Bernoulli link-failure draw of edge {u, v} — stream
  /// (seed, kLink, min, max), so both arc directions agree by construction.
  [[nodiscard]] bool link_fails(std::uint32_t u, std::uint32_t v) const {
    if (plan_.link_failure <= 0.0) return false;
    const std::uint32_t lo = u < v ? u : v;
    const std::uint32_t hi = u < v ? v : u;
    return Rng::stream(plan_.seed, kLinkStream, lo, hi).bernoulli(plan_.link_failure);
  }

  /// Liveness mask over `points` (1 = survives), chunk-parallel; entry i is
  /// a pure function of (plan, i, points[i]).
  [[nodiscard]] std::vector<std::uint8_t> alive_mask(std::span<const Vec2> points) const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  // Rng stream tags of the fault draws (one tag per consumer, rng.hpp).
  static constexpr std::uint64_t kCrashStream = 0xfa17c0ffULL;
  static constexpr std::uint64_t kLinkStream = 0xfa171177ULL;

  FaultPlan plan_;
};

/// The materialized scenario: survivors relabeled dense (order-preserving,
/// so survivor ids ascend with the original ids) plus both id maps and the
/// loss accounting.
struct FaultedGraph {
  /// Sentinel in `new_id` for nodes that failed.
  static constexpr std::uint32_t kDead = 0xffffffffu;

  GeoGraph geo;                           ///< surviving subgraph, dense ids
  std::vector<std::uint32_t> survivor;    ///< new id -> original id (ascending)
  std::vector<std::uint32_t> new_id;      ///< original id -> new id, or kDead
  std::size_t nodes_failed = 0;
  std::size_t edges_lost_endpoint = 0;    ///< edges dropped with a dead endpoint
  std::size_t edges_lost_link = 0;        ///< surviving-endpoint edges that drew failure
};

/// Apply the plan to an embedded graph: induced subgraph on the survivors
/// minus the failed links, relabeled dense. Bit-identical at any --threads
/// and edge-for-edge equal to a fresh rebuild over the survivors (header
/// comment; the full-rebuild oracle is asserted in tests/test_fault.cpp).
[[nodiscard]] FaultedGraph apply_faults(const GeoGraph& geo, const FaultInjector& injector);

}  // namespace sens
