#include "sens/fault/degradation.hpp"

#include <algorithm>
#include <cmath>

#include "sens/graph/components.hpp"
#include "sens/graph/dijkstra.hpp"
#include "sens/rng/rng.hpp"
#include "sens/support/parallel.hpp"

namespace sens {

namespace {

/// Rng stream tag of the audit's query-pair sample (one tag per consumer).
constexpr std::uint64_t kPairStream = 0xde9a9a17ULL;

/// Fraction of unit grid cells of `window` holding at least one point.
double coverage_fraction(std::span<const Vec2> points, const Box& window) {
  const auto cx = static_cast<std::size_t>(std::max(1.0, std::ceil(window.width())));
  const auto cy = static_cast<std::size_t>(std::max(1.0, std::ceil(window.height())));
  std::vector<std::uint8_t> occupied(cx * cy, 0);
  for (const Vec2 p : points) {
    const auto ix = std::min(cx - 1, static_cast<std::size_t>(std::max(0.0, p.x - window.lo.x)));
    const auto iy = std::min(cy - 1, static_cast<std::size_t>(std::max(0.0, p.y - window.lo.y)));
    occupied[iy * cx + ix] = 1;
  }
  std::size_t hit = 0;
  for (const std::uint8_t o : occupied) hit += o;
  return static_cast<double>(hit) / static_cast<double>(cx * cy);
}

}  // namespace

DegradationReport audit_degradation(const GeoGraph& geo, const Box& window,
                                    const DegradationParams& params) {
  DegradationReport rep;
  const std::size_t n = geo.size();
  rep.nodes = n;
  rep.edges = geo.graph.num_edges();
  if (n == 0) return rep;
  rep.coverage_fraction = coverage_fraction(geo.points, window);

  const Components comps = connected_components(geo.graph);
  rep.giant_fraction = static_cast<double>(comps.largest_size()) / static_cast<double>(n);
  if (n < 2 || params.sample_pairs == 0) return rep;

  const std::vector<double> weights = geo.length_arc_weights();
  const LandmarkOracle oracle = LandmarkOracle::build(
      geo.graph, weights,
      LandmarkOracleParams{params.num_landmarks, params.seed, params.selection});

  // Pair i is a pure function of (seed, i); per-pair sums fold in chunk
  // order (§2.3), so the rates below are --threads-invariant.
  struct Acc {
    double stretch_sum = 0.0;
    std::size_t stretch_pairs = 0;
    std::size_t certified = 0;
    std::size_t disconnected = 0;
  };
  const ChunkLayout layout = chunk_layout(params.sample_pairs);
  std::vector<Acc> partials(layout.count);
  parallel_for_chunks(params.sample_pairs, [&](std::size_t begin, std::size_t end) {
    DijkstraScratch scratch;
    Acc& acc = partials[layout.index_of(begin)];
    for (std::size_t i = begin; i < end; ++i) {
      Rng rng = Rng::stream(params.seed, kPairStream, i);
      const auto s = static_cast<std::uint32_t>(rng.uniform_index(n));
      auto t = static_cast<std::uint32_t>(rng.uniform_index(n));
      while (t == s) t = static_cast<std::uint32_t>(rng.uniform_index(n));
      const LandmarkOracle::Bounds b = oracle.bounds(s, t);
      if (b.lower == b.upper || (b.lower > 0.0 && b.upper <= params.max_stretch * b.lower)) {
        ++acc.certified;
      }
      const double exact = dijkstra_cost(geo.graph, s, t, weights, scratch);
      if (exact >= kInfCost) {
        ++acc.disconnected;
        continue;
      }
      const double straight = dist(geo.points[s], geo.points[t]);
      if (straight >= params.min_separation) {
        acc.stretch_sum += exact / straight;
        ++acc.stretch_pairs;
      }
    }
  });
  Acc total;
  for (const Acc& p : partials) {
    total.stretch_sum += p.stretch_sum;
    total.stretch_pairs += p.stretch_pairs;
    total.certified += p.certified;
    total.disconnected += p.disconnected;
  }
  const auto q = static_cast<double>(params.sample_pairs);
  rep.certified_rate = static_cast<double>(total.certified) / q;
  rep.disconnected_rate = static_cast<double>(total.disconnected) / q;
  rep.stretch_pairs = total.stretch_pairs;
  if (total.stretch_pairs > 0) {
    rep.mean_stretch = total.stretch_sum / static_cast<double>(total.stretch_pairs);
  }
  return rep;
}

}  // namespace sens
