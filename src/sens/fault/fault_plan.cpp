#include "sens/fault/fault_plan.hpp"

#include "sens/graph/flat_adjacency.hpp"
#include "sens/obs/obs.hpp"
#include "sens/support/checked.hpp"
#include "sens/support/parallel.hpp"

namespace sens {

std::vector<std::uint8_t> FaultInjector::alive_mask(std::span<const Vec2> points) const {
  std::vector<std::uint8_t> alive(points.size());
  parallel_for(points.size(), [&](std::size_t i) {
    alive[i] = node_fails(static_cast<std::uint32_t>(i), points[i]) ? 0 : 1;
  });
  return alive;
}

FaultedGraph apply_faults(const GeoGraph& geo, const FaultInjector& injector) {
  const std::size_t n = geo.size();
  FaultedGraph out;
  out.new_id.assign(n, FaultedGraph::kDead);
  const std::vector<std::uint8_t> alive = injector.alive_mask(geo.points);

  // Order-preserving dense relabel: survivor lists stay sorted because the
  // map is monotone, so the extracted adjacency needs no per-vertex sort.
  for (std::size_t u = 0; u < n; ++u) {
    if (!alive[u]) continue;
    out.new_id[u] = checked_u32(out.survivor.size(), "apply_faults: survivor id");
    out.survivor.push_back(static_cast<std::uint32_t>(u));
  }
  out.nodes_failed = n - out.survivor.size();

  const std::size_t n_new = out.survivor.size();
  out.geo.points.resize(n_new);
  parallel_for(n_new, [&](std::size_t i) { out.geo.points[i] = geo.points[out.survivor[i]]; });

  // Surviving arc predicate over ORIGINAL ids: both endpoints alive and the
  // (canonical) link draw passes. Pure per arc, so the count pass, the fill
  // pass, and the loss accounting below all agree at any chunk layout.
  auto arc_survives = [&](std::uint32_t u, std::uint32_t v) {
    return alive[u] && alive[v] && !injector.link_fails(u, v);
  };
  FlatAdjacency adj = build_flat_adjacency(
      n_new,
      [&](std::size_t i) {
        const std::uint32_t u = out.survivor[i];
        std::size_t count = 0;
        for (const std::uint32_t v : geo.graph.neighbors(u)) {
          if (arc_survives(u, v)) ++count;
        }
        return count;
      },
      [&](std::size_t i, std::uint32_t* sink) {
        const std::uint32_t u = out.survivor[i];
        for (const std::uint32_t v : geo.graph.neighbors(u)) {
          if (arc_survives(u, v)) *sink++ = out.new_id[v];
        }
      });
  out.geo.graph = CsrGraph::from_symmetric_adjacency(std::move(adj), /*lists_sorted=*/true);

  // Loss accounting as exact chunk-tree sums (each undirected edge counted
  // once from its lower endpoint).
  struct Lost {
    std::size_t endpoint = 0;
    std::size_t link = 0;
  };
  const Lost lost = parallel_reduce(
      n,
      Lost{},
      [&](std::size_t u32) {
        const auto u = static_cast<std::uint32_t>(u32);
        Lost l;
        for (const std::uint32_t v : geo.graph.neighbors(u)) {
          if (v <= u) continue;
          if (!alive[u] || !alive[v]) {
            ++l.endpoint;
          } else if (injector.link_fails(u, v)) {
            ++l.link;
          }
        }
        return l;
      },
      [](Lost a, Lost b) {
        return Lost{a.endpoint + b.endpoint, a.link + b.link};
      });
  out.edges_lost_endpoint = lost.endpoint;
  out.edges_lost_link = lost.link;
  // Casualty tallies are pure functions of (plan, deployment) — the alive
  // mask and link draws are per-entity seeded — so the obs totals stay
  // thread-invariant (DESIGN.md §2.10).
  SENS_OBS(obs::add(obs::Counter::kFaultNodesFailed, out.nodes_failed);)
  SENS_OBS(obs::add(obs::Counter::kFaultEdgesLostEndpoint, out.edges_lost_endpoint);)
  SENS_OBS(obs::add(obs::Counter::kFaultEdgesLostLink, out.edges_lost_link);)
  return out;
}

}  // namespace sens
