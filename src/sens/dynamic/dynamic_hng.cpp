#include "sens/dynamic/dynamic_hng.hpp"

#include <algorithm>
#include <stdexcept>

namespace sens {

namespace {

void sorted_insert(std::vector<std::uint32_t>& v, std::uint32_t x) {
  v.insert(std::lower_bound(v.begin(), v.end(), x), x);
}

/// Caller guarantees membership.
void sorted_erase(std::vector<std::uint32_t>& v, std::uint32_t x) {
  v.erase(std::lower_bound(v.begin(), v.end(), x));
}

bool sorted_contains(const std::vector<std::uint32_t>& v, std::uint32_t x) {
  return std::binary_search(v.begin(), v.end(), x);
}

}  // namespace

DynamicHng::DynamicHng(const HngParams& params, std::uint64_t seed)
    : params_(params),
      seed_(seed),
      level_count_(static_cast<std::size_t>(params.max_level) + 1, 0),
      pyramid_(std::span<const Vec2>{}, std::span<const GridKnnPyramid::LevelSpec>{}) {
  validate_hng_params(params_);
}

DynamicHng::DynamicHng(std::span<const Vec2> points, const HngParams& params, std::uint64_t seed)
    : DynamicHng(params, seed) {
  points_.reserve(points.size());
  for (const Vec2 p : points) insert(p);
}

double DynamicHng::dist2(std::uint32_t a, std::uint32_t b) const {
  const double dx = points_[a].x - points_[b].x;
  const double dy = points_[a].y - points_[b].y;
  return dx * dx + dy * dy;
}

/// First touch of a node in this event: capture its pre-event selection
/// (the edge delta in finalize_event diffs against these).
void DynamicHng::touch(std::uint32_t u) {
  if (dirty_flag_[u]) return;
  dirty_flag_[u] = 1;
  dirty_old_.emplace_back(u, sel_[u]);
}

void DynamicHng::mark_recompute(std::uint32_t w) {
  if (in_recompute_[w]) return;
  in_recompute_[w] = 1;
  recompute_.push_back(w);
}

void DynamicHng::flush_recompute() {
  for (const std::uint32_t w : recompute_) {
    if (alive_[w]) {
      compute_selection(w, fresh_sel_);
      set_selection(w, fresh_sel_);
    }
    in_recompute_[w] = 0;
  }
  recompute_.clear();
}

/// The batch linking rule for one node, against the *current* live
/// structure: clique membership for top nodes (everyone when top < 2),
/// otherwise a k-NN query into S_{l+1} — ids ascending.
void DynamicHng::compute_selection(std::uint32_t u, std::vector<std::uint32_t>& out) {
  out.clear();
  const std::uint32_t l = level_[u];
  if (top_ < 2) {
    for (std::uint32_t x = 0; x < alive_.size(); ++x) {
      if (alive_[x] && x != u) out.push_back(x);
    }
    return;
  }
  if (l == top_) {
    for (std::uint32_t x = 0; x < alive_.size(); ++x) {
      if (alive_[x] && x != u && level_[x] == top_) out.push_back(x);
    }
    return;
  }
  hng_link_node(pyramid_.level(l - 1), points_[u], u, params_.k, scratch_, found_);
  out.assign(found_.begin(), found_.end());
  std::sort(out.begin(), out.end());
}

void DynamicHng::set_selection(std::uint32_t u, const std::vector<std::uint32_t>& fresh) {
  touch(u);
  for (const std::uint32_t x : sel_[u]) sorted_erase(selectors_[x], u);
  sel_[u].assign(fresh.begin(), fresh.end());
  for (const std::uint32_t x : sel_[u]) sorted_insert(selectors_[x], u);
}

/// Join repair for a regular node w (exact level l < top, l <= L-1): u just
/// entered its linking target S_{l+1}. The fresh k-NN set follows from the
/// old one with no re-query: if w was under-full its old selection was all
/// of S_{l+1}, so u is admitted; otherwise u displaces w's current worst
/// pick iff it beats it under the exact (distance, index) query order.
void DynamicHng::maybe_enter(std::uint32_t w, std::uint32_t u) {
  auto& s = sel_[w];
  if (s.size() < params_.k) {
    touch(w);
    sorted_insert(s, u);
    sorted_insert(selectors_[u], w);
    return;
  }
  std::uint32_t worst = s[0];
  double worst_d2 = dist2(w, s[0]);
  for (std::size_t i = 1; i < s.size(); ++i) {
    const double d = dist2(w, s[i]);
    if (d > worst_d2 || (d == worst_d2 && s[i] > worst)) {
      worst_d2 = d;
      worst = s[i];
    }
  }
  const double du = dist2(w, u);
  if (du < worst_d2 || (du == worst_d2 && u < worst)) {
    touch(w);
    sorted_erase(s, worst);
    sorted_erase(selectors_[worst], w);
    sorted_insert(s, u);
    sorted_insert(selectors_[u], w);
  }
}

/// Bring slot `id` to life at point p: draw its level from stream id, index
/// it, link it, and repair the selections it enters. `id` is either the
/// append slot (== points_.size()) or a dead slot being revived by the
/// swap-remove rename.
void DynamicHng::insert_slot(std::uint32_t id, Vec2 p) {
  if (id == points_.size()) {
    points_.push_back(p);
    level_.push_back(0);
    alive_.push_back(0);
    dirty_flag_.push_back(0);
    in_recompute_.push_back(0);
    sel_.emplace_back();
    selectors_.emplace_back();
  } else {
    points_[id] = p;
  }
  if (id == pyramid_.store_size()) {
    pyramid_.append_point(p);
  } else {
    pyramid_.set_point(id, p);  // vacated slot: no level indexes it now
  }
  alive_[id] = 1;
  ++live_n_;
  const std::uint32_t level = hng_promotion_level(seed_, id, params_);
  level_[id] = level;
  ++level_count_[level];

  const std::uint32_t old_top = top_;
  const std::uint32_t new_top = std::max(old_top, level);
  // Pyramid level index l holds S_{l+2}: queries need indexes up to
  // new_top - 2 (the top cohort's own linking target S_top).
  while (pyramid_.num_levels() + 1 < new_top) pyramid_.push_level(params_.k);
  for (std::uint32_t l = 2; l <= level; ++l) pyramid_.insert(l - 2, id);

  if (live_n_ == 1) {
    top_ = new_top;
    touch(id);  // empty selection, but the event must record the new slot
    return;
  }

  if (new_top > old_top) {
    // The old top cohort loses its clique and relinks as regular nodes.
    for (std::uint32_t w = 0; w < alive_.size(); ++w) {
      if (alive_[w] && w != id && level_[w] == old_top) mark_recompute(w);
    }
    top_ = new_top;
  } else if (level == old_top) {
    // u joins the existing clique; members just gain u (exact — a clique
    // selection is "everyone else up here").
    for (std::uint32_t w = 0; w < alive_.size(); ++w) {
      if (alive_[w] && w != id && level_[w] == old_top) {
        touch(w);
        sorted_insert(sel_[w], id);
        sorted_insert(selectors_[id], w);
      }
    }
  }

  // Regular nodes of exact level <= L-1 see u enter their linking target.
  // A level-1 joiner is a member of S_1 only, and linkers select from
  // S_{l+1} with l >= 1, so nobody can select it — skip the scan outright
  // (p = 3/4 of joins under the default promote_p).
  if (level >= 2) {
    for (std::uint32_t w = 0; w < alive_.size(); ++w) {
      if (!alive_[w] || w == id || in_recompute_[w]) continue;
      const std::uint32_t l = level_[w];
      if (l >= top_ || l + 1 > level) continue;  // clique node / u not in S_{l+1}
      maybe_enter(w, id);
    }
  }

  mark_recompute(id);
  flush_recompute();
}

/// Retire slot `r`: unindex it, relink its orphaned selectors, and handle a
/// top-level drop (the survivors of the new highest level form a clique).
void DynamicHng::remove_slot(std::uint32_t r) {
  // Exactly the nodes that selected r must relink (their query target or
  // clique lost a member). A top drop to the everyone-clique is covered
  // too: in that regime every survivor had selected r.
  for (const std::uint32_t w : selectors_[r]) mark_recompute(w);

  alive_[r] = 0;
  --live_n_;
  --level_count_[level_[r]];
  for (std::uint32_t l = 2; l <= level_[r]; ++l) pyramid_.erase(l - 2, r);

  const std::uint32_t old_top = top_;
  std::uint32_t t = old_top;
  while (t > 0 && level_count_[t] == 0) --t;
  top_ = t;

  touch(r);
  for (const std::uint32_t x : sel_[r]) sorted_erase(selectors_[x], r);
  sel_[r].clear();

  if (top_ != old_top && live_n_ > 0) {
    for (std::uint32_t w = 0; w < alive_.size(); ++w) {
      if (alive_[w] && level_[w] == top_) mark_recompute(w);
    }
  }
  flush_recompute();
}

void DynamicHng::begin_event() {
  dirty_old_.clear();
  last_ = {};
}

/// The selection node w held when the event began: the first-touch capture
/// for dirty nodes, the live list for everyone else (untouched == unchanged).
/// dirty_old_ holds one handful of entries per event, so a linear scan wins
/// over any index.
const std::vector<std::uint32_t>& DynamicHng::pre_event_selection(std::uint32_t w) const {
  if (dirty_flag_[w]) {
    for (const auto& [u, old] : dirty_old_) {
      if (u == w) return old;
    }
  }
  return sel_[w];
}

/// Derive the undirected edge delta of this event from the captured
/// pre-event selections vs the current ones. An edge {a, b} exists iff
/// b in sel(a) or a in sel(b); only pairs incident to a node whose
/// selection changed can have flipped. The flipped pairs feed the event
/// stats immediately and queue in pending_ for the next overlay()
/// materialization — the CSR itself is not touched here (a snapshot costs
/// O(n + m) no matter how small the delta, so it is batched per read, not
/// paid per event).
void DynamicHng::finalize_event() {
  touched_.clear();
  for (const auto& [w, old] : dirty_old_) {
    for (const std::uint32_t x : old) touched_.emplace_back(std::min(w, x), std::max(w, x));
    for (const std::uint32_t x : sel_[w]) touched_.emplace_back(std::min(w, x), std::max(w, x));
  }
  std::sort(touched_.begin(), touched_.end());
  touched_.erase(std::unique(touched_.begin(), touched_.end()), touched_.end());

  last_.relinked = dirty_old_.size();
  for (const auto& [a, b] : touched_) {
    // Pre-event liveness is implied: a dead slot's selection is empty and
    // it appears in no live selection, so both containment tests fail.
    const auto& old_a = pre_event_selection(a);
    const auto& old_b = pre_event_selection(b);
    const bool before = sorted_contains(old_a, b) || sorted_contains(old_b, a);
    const bool after = alive_[a] && alive_[b] &&
                       (sorted_contains(sel_[a], b) || sorted_contains(sel_[b], a));
    if (before != after) {
      pending_.emplace_back(a, b);
      ++(after ? last_.edges_added : last_.edges_removed);
    }
  }
  for (const auto& [w, old] : dirty_old_) dirty_flag_[w] = 0;
  dirty_old_.clear();
}

/// Bring the overlay cache up to date: diff every pending pair's stale
/// membership against the live structure and apply the net delta in one
/// apply_edge_delta call. Pairs that flipped an even number of times since
/// the last read cancel here. Slot ids beyond either vertex range simply
/// read as "no edge" on that side (a transient slot that appeared and
/// vanished between reads nets to nothing).
void DynamicHng::materialize() const {
  const std::size_t n = points_.size();
  if (pending_.empty() && overlay_.num_vertices() == n) return;
  std::sort(pending_.begin(), pending_.end());
  pending_.erase(std::unique(pending_.begin(), pending_.end()), pending_.end());

  const std::size_t n_old = overlay_.num_vertices();
  removed_.clear();
  added_.clear();
  for (const auto& [a, b] : pending_) {
    const bool before = a < n_old && b < n_old && overlay_.has_edge(a, b);
    const bool after = a < n && b < n && alive_[a] && alive_[b] &&
                       (sorted_contains(sel_[a], b) || sorted_contains(sel_[b], a));
    if (before && !after) {
      removed_.emplace_back(a, b);
    } else if (!before && after) {
      added_.emplace_back(a, b);
    }
  }
  overlay_ = CsrGraph::apply_edge_delta(overlay_, n, removed_, added_);
  // Journal the applied call verbatim (§2.9): a subscriber replaying this
  // entry onto its copy of the previous snapshot performs the identical
  // apply_edge_delta and so lands on the identical CSR.
  journal_.push_back(OverlayDelta{n, removed_, added_});
  pending_.clear();
}

const OverlayDelta& DynamicHng::overlay_delta(std::uint64_t g) const {
  materialize();
  if (g < journal_base_ || g - journal_base_ >= journal_.size()) {
    throw std::out_of_range("DynamicHng: overlay_delta generation outside the journal");
  }
  return journal_[g - journal_base_];
}

void DynamicHng::trim_overlay_journal(std::uint64_t upto) {
  materialize();
  const std::uint64_t current = journal_base_ + journal_.size();
  if (upto > current) upto = current;
  if (upto <= journal_base_) return;
  journal_.erase(journal_.begin(),
                 journal_.begin() + static_cast<std::ptrdiff_t>(upto - journal_base_));
  journal_base_ = upto;
}

std::uint32_t DynamicHng::insert(Vec2 p) {
  begin_event();
  const auto id = static_cast<std::uint32_t>(points_.size());
  insert_slot(id, p);
  finalize_event();
  return id;
}

void DynamicHng::remove(std::uint32_t i) {
  if (i >= points_.size()) throw std::out_of_range("DynamicHng: remove of invalid slot");
  begin_event();
  const auto last = static_cast<std::uint32_t>(points_.size() - 1);
  remove_slot(i);
  if (i != last) {
    // Swap-remove: the last slot's point rejoins as slot i, redrawing its
    // promotion chain from stream i — levels stay a pure function of the
    // slot id, which is the whole oracle contract.
    const Vec2 q = points_[last];
    remove_slot(last);
    insert_slot(i, q);
  }
  finalize_event();
  points_.pop_back();
  level_.pop_back();
  alive_.pop_back();
  dirty_flag_.pop_back();
  in_recompute_.pop_back();
  sel_.pop_back();
  selectors_.pop_back();
}

}  // namespace sens
