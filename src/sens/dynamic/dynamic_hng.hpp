// Incremental maintenance of a hierarchical neighbor graph under node
// join/leave events (churn) — the dynamic counterpart of `build_hng`.
//
// The HNG paper (arXiv:0903.0742) pitches the structure as incrementally
// maintainable: a joining node draws its promotion chain and links locally,
// a leaving node orphans only the bounded set of nodes that had selected
// it. Because our promotion draws come from dedicated per-node rng streams
// (seed, "HNG", node) — never from one shared sequence — the level of slot
// i depends only on (seed, i), and the incremental structure can agree
// with a fresh batch build *bit for bit*, not just approximately.
//
// Identity discipline: nodes are dense slots [0, size()). `insert` appends
// at slot size(); `remove(i)` swap-removes — the node in the last slot
// moves into slot i and redraws its promotion chain from stream i (the
// paper's rejoin-under-a-new-id event). That keeps the id space dense, so
// the oracle contract (DESIGN.md §2.7) is exact equality with the batch
// builder on the surviving point set after EVERY event:
//
//     overlay() == build_hng(points(), params, seed).geo.graph
//     level(i)  == the batch level vector, element for element
//
// enforced at every prefix of randomized traces by tests/test_dynamic.cpp
// (`churn` ctest label).
//
// Repair sets are bounded and exact (DESIGN.md §2.7):
//  * join u at level L: u's own selection is one pyramid query per the
//    batch rule; an existing regular node w of exact level l <= L-1 sees u
//    enter S_{l+1}, and its new k-NN selection follows from its old one
//    without a re-query — admit u iff w is under-full or u beats w's
//    current (distance, index)-worst pick; a top-level rise dissolves the
//    old clique cohort, which relinks by re-query.
//  * leave r: exactly the nodes that selected r (a maintained reverse
//    index) re-query; a top-level drop forms the new top cohort's clique.
// The overlay CSR is patched with `CsrGraph::apply_edge_delta` over the
// touched vertex pairs — never rebuilt or re-sorted. Materialization is
// deferred: each event appends its net-changed pairs to a pending list,
// and the first overlay() read after a burst applies them in one batch.
// A CSR snapshot costs O(n + m) however small the delta (offsets, copies,
// reverse arcs), so batching is what keeps per-event cost bounded by the
// repair set instead of the deployment size.
//
// All maintenance is serial by design (events are a sequential dependence
// chain); replaying a trace is bit-identical at any --threads value
// (DynamicThreads.*), extending the §2.3–2.5 determinism contract to
// mutations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sens/geometry/vec2.hpp"
#include "sens/graph/csr.hpp"
#include "sens/hng/hng.hpp"
#include "sens/spatial/grid_knn.hpp"
#include "sens/spatial/grid_knn_pyramid.hpp"

namespace sens {

/// One materialized overlay edge delta (DESIGN.md §2.9): exactly the
/// arguments the maintainer passed to `CsrGraph::apply_edge_delta`, so a
/// subscriber holding the generation-g snapshot replays the same call and
/// lands on the generation-(g+1) snapshot bit for bit — never a wholesale
/// rebuild. Produced by materialize(), consumed by
/// serve/epoch_engine.hpp's EpochQueryEngine.
struct OverlayDelta {
  std::size_t n_new = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> removed;  ///< sorted u < v pairs
  std::vector<std::pair<std::uint32_t, std::uint32_t>> added;    ///< sorted u < v pairs
};

/// Repair counters of one insert()/remove() event.
struct DynamicHngStats {
  std::size_t relinked = 0;       ///< nodes whose selection list changed
  std::size_t edges_added = 0;    ///< overlay edge delta of the event
  std::size_t edges_removed = 0;
};

class DynamicHng {
 public:
  /// Empty structure; nodes arrive via insert(). Throws
  /// std::invalid_argument on invalid params (same rules as build_hng).
  DynamicHng(const HngParams& params, std::uint64_t seed);

  /// Bulk adoption: equivalent to (and implemented as) inserting `points`
  /// one by one in order.
  DynamicHng(std::span<const Vec2> points, const HngParams& params, std::uint64_t seed);

  DynamicHng(DynamicHng&&) noexcept = default;
  DynamicHng& operator=(DynamicHng&&) noexcept = default;
  DynamicHng(const DynamicHng&) = delete;
  DynamicHng& operator=(const DynamicHng&) = delete;

  /// Join: the new node takes slot size(), draws its level from stream
  /// (seed, "HNG", slot), links itself, and repairs the bounded set of
  /// selections it enters. Returns the slot.
  std::uint32_t insert(Vec2 p);

  /// Leave: node `i` departs. Unless i was the last slot, the last slot's
  /// point moves into slot i and redraws its chain from stream i. Throws
  /// std::out_of_range on an invalid slot.
  void remove(std::uint32_t i);

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::span<const Vec2> points() const { return points_; }
  [[nodiscard]] std::uint32_t level(std::uint32_t i) const { return level_[i]; }
  [[nodiscard]] std::uint32_t top_level() const { return top_; }
  [[nodiscard]] const HngParams& params() const { return params_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// The symmetrized overlay — equal to the batch build's graph. Deltas
  /// accumulated since the last read are applied here in one
  /// CsrGraph::apply_edge_delta batch (lazily cached; like every other
  /// member, not safe to call concurrently with mutations).
  [[nodiscard]] const CsrGraph& overlay() const {
    materialize();
    return overlay_;
  }

  /// The directed selection list of node i (ascending ids): its k nearest
  /// upper-level neighbors, or the rest of the clique for top nodes.
  [[nodiscard]] std::span<const std::uint32_t> selection(std::uint32_t i) const {
    return sel_[i];
  }

  /// Repair counters of the most recent insert()/remove().
  [[nodiscard]] const DynamicHngStats& last_event() const { return last_; }

  // --- overlay delta journal (DESIGN.md §2.9) ---
  //
  // Every materialization appends the applied delta, tagged by a monotone
  // generation: generation g's snapshot plus overlay_delta(g) equals
  // generation g+1's snapshot. Subscribers (EpochQueryEngine) poll
  // overlay_generation() and fold the gap; long-lived owners may
  // trim_overlay_journal() once every subscriber has caught up —
  // subscribers detect the gap and fall back to a full resync.

  /// Generation of the current overlay (materializes pending deltas first,
  /// like overlay()). Generation 0 is the empty structure.
  [[nodiscard]] std::uint64_t overlay_generation() const {
    materialize();
    return journal_base_ + journal_.size();
  }

  /// Oldest journaled generation still replayable (>= this, < current).
  [[nodiscard]] std::uint64_t overlay_journal_begin() const { return journal_base_; }

  /// The delta from generation g's snapshot to generation g+1's. Throws
  /// std::out_of_range outside [overlay_journal_begin(),
  /// overlay_generation()).
  [[nodiscard]] const OverlayDelta& overlay_delta(std::uint64_t g) const;

  /// Drop journal entries below `upto` (clamped to the current
  /// generation); replays from older snapshots then require a resync.
  void trim_overlay_journal(std::uint64_t upto);

 private:
  [[nodiscard]] double dist2(std::uint32_t a, std::uint32_t b) const;
  void touch(std::uint32_t u);
  void mark_recompute(std::uint32_t w);
  void flush_recompute();
  void compute_selection(std::uint32_t u, std::vector<std::uint32_t>& out);
  void set_selection(std::uint32_t u, const std::vector<std::uint32_t>& fresh);
  void maybe_enter(std::uint32_t w, std::uint32_t u);
  void insert_slot(std::uint32_t id, Vec2 p);
  void remove_slot(std::uint32_t r);
  void begin_event();
  void finalize_event();
  [[nodiscard]] const std::vector<std::uint32_t>& pre_event_selection(std::uint32_t w) const;
  void materialize() const;

  HngParams params_;
  std::uint64_t seed_ = 0;

  // Slot-indexed node state. The arrays stay at event-entry size while an
  // event is in flight (a swap-remove briefly has two dead slots) and are
  // trimmed in remove(); alive_ is the in-event liveness mask.
  std::vector<Vec2> points_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::vector<std::uint32_t>> sel_;        ///< selections, ascending ids
  std::vector<std::vector<std::uint32_t>> selectors_;  ///< reverse index, ascending ids
  std::size_t live_n_ = 0;

  std::vector<std::uint32_t> level_count_;  ///< exact-level histogram [0, max_level]
  std::uint32_t top_ = 0;
  GridKnnPyramid pyramid_;  ///< level index l holds S_{l+2}
  DynamicHngStats last_;

  // Lazily materialized overlay cache (see overlay()). `pending_` holds
  // every pair whose membership flipped in some event since the last
  // materialization; pairs that flipped back cancel in the diff. Slot ids
  // in pending_ may exceed the current size after a shrink — materialize()
  // bound-checks both sides.
  mutable CsrGraph overlay_;
  mutable std::vector<std::pair<std::uint32_t, std::uint32_t>> pending_;
  mutable std::vector<std::pair<std::uint32_t, std::uint32_t>> removed_;
  mutable std::vector<std::pair<std::uint32_t, std::uint32_t>> added_;
  mutable std::vector<OverlayDelta> journal_;  ///< deltas since journal_base_
  mutable std::uint64_t journal_base_ = 0;     ///< generation of journal_[0]

  // Per-event scratch: first-touch capture of old selections (the edge
  // delta is derived from these), the re-query worklist, and query buffers.
  std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> dirty_old_;
  std::vector<std::uint8_t> dirty_flag_;
  std::vector<std::uint32_t> recompute_;
  std::vector<std::uint8_t> in_recompute_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> touched_;
  std::vector<std::uint32_t> found_;
  std::vector<std::uint32_t> fresh_sel_;
  GridKnn::QueryScratch scratch_;
};

}  // namespace sens
