#include "sens/hng/hng.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "sens/graph/csr.hpp"
#include "sens/rng/rng.hpp"
#include "sens/spatial/grid_knn_pyramid.hpp"
#include "sens/support/checked.hpp"
#include "sens/support/parallel.hpp"

namespace sens {

namespace {

/// Stream tag for the promotion draws ("HNG"); each node's promotion chain
/// is the independent stream (seed, kHngLevelStream, node).
constexpr std::uint64_t kHngLevelStream = 0x484e47;

}  // namespace

void validate_hng_params(const HngParams& params) {
  if (!(params.promote_p > 0.0 && params.promote_p < 1.0)) {
    throw std::invalid_argument("hng: promote_p must be in (0, 1)");
  }
  if (params.k < 1) throw std::invalid_argument("hng: k must be >= 1");
  if (params.max_level < 2) throw std::invalid_argument("hng: max_level must be >= 2");
}

std::uint32_t hng_promotion_level(std::uint64_t seed, std::uint64_t node,
                                  const HngParams& params) {
  Rng rng = Rng::stream(seed, kHngLevelStream, node);
  std::uint32_t level = 1;
  while (level < params.max_level && rng.bernoulli(params.promote_p)) ++level;
  return level;
}

std::size_t hng_link_node(const GridKnn& upper, Vec2 p, std::uint32_t self, std::size_t k,
                          GridKnn::QueryScratch& scratch, std::vector<std::uint32_t>& out) {
  return upper.nearest_into(p, k, self, scratch, out);
}

HngResult build_hng(std::span<const Vec2> points, const HngParams& params, std::uint64_t seed) {
  validate_hng_params(params);

  HngResult r;
  r.geo.points.assign(points.begin(), points.end());
  const std::size_t n = points.size();
  r.level.assign(n, 0);
  if (n == 0) return r;

  // Promotion by p-thinning: node u climbs while its own stream keeps
  // drawing heads. Each node reads only its (seed, stream, u) draws, so the
  // level vector is a pure function of (seed, params) — never of the chunk
  // schedule (DESIGN.md §2.5).
  parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t u = begin; u < end; ++u) {
      r.level[u] = hng_promotion_level(seed, u, params);
    }
  });
  r.top_level = *std::max_element(r.level.begin(), r.level.end());

  // Population lists S_2 ⊇ ... ⊇ S_top (S_1 is the whole input and is
  // never queried), built straight into the pyramid specs — one ascending
  // pass over the level vector, no intermediate copies. One density-tuned
  // grid per linking target, all subset views over one shared store.
  std::vector<GridKnnPyramid::LevelSpec> specs(r.top_level >= 2 ? r.top_level - 1 : 0);
  {
    // Count-then-fill: a node of level l appears in S_2..S_l, so one
    // histogram over the level vector plus a suffix sum yields every
    // |S_l| exactly — each member list is a single allocation instead of
    // growth-by-doubling (DESIGN.md §2.8).
    std::vector<std::size_t> at_level(r.top_level + 1, 0);
    for (std::uint32_t u = 0; u < n; ++u) ++at_level[r.level[u]];
    std::size_t above = 0;
    for (std::uint32_t l = r.top_level; l >= 2; --l) {
      above += at_level[l];
      specs[l - 2].members.reserve(above);
    }
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t l = 2; l <= r.level[u]; ++l) {
        specs[l - 2].members.push_back(u);
      }
    }
  }
  for (auto& spec : specs) spec.expected_k = std::min(params.k, spec.members.size());
  r.cumulative_size.resize(r.top_level);
  r.cumulative_size[0] = static_cast<std::uint32_t>(n);
  for (std::uint32_t l = 2; l <= r.top_level; ++l) {
    r.cumulative_size[l - 1] = static_cast<std::uint32_t>(specs[l - 2].members.size());
  }
  const GridKnnPyramid pyramid(points, specs);

  // Directed selections: a node of exact level l < top links to its
  // min(k, |S_{l+1}|) nearest neighbors in S_{l+1}; the top-level nodes are
  // mutually interconnected (the paper's top clique — expected O(1) nodes).
  // Degrees are a pure function of the level vector, so the offsets are
  // fixed up front and every node fills its own disjoint slice.
  // S_top lives in the last spec when the hierarchy has >= 2 levels;
  // otherwise (nobody promoted — astronomically rare beyond tiny n) it is
  // every node.
  std::vector<std::uint32_t> everyone;
  if (r.top_level < 2) {
    everyone.resize(n);
    std::iota(everyone.begin(), everyone.end(), 0u);
  }
  const std::vector<std::uint32_t>& top =
      r.top_level >= 2 ? specs[r.top_level - 2].members : everyone;
  FlatAdjacency sel;
  sel.offsets.assign(n + 1, 0);
  std::uint64_t total = 0;
  for (std::size_t u = 0; u < n; ++u) {
    const std::uint32_t l = r.level[u];
    const std::size_t out_deg =
        l == r.top_level ? top.size() - 1
                         : std::min(params.k, static_cast<std::size_t>(r.cumulative_size[l]));
    total += out_deg;
    sel.offsets[u + 1] = checked_u32(total, "hng: selection");  // DESIGN.md §2.8
  }
  sel.neighbors.resize(sel.offsets[n]);

  auto link = [&](std::size_t begin, std::size_t end, GridKnn::QueryScratch& scratch,
                  std::vector<std::uint32_t>& found) {
    for (std::size_t u = begin; u < end; ++u) {
      std::uint32_t* slot = sel.neighbors.data() + sel.offsets[u];
      const std::uint32_t l = r.level[u];
      if (l == r.top_level) {
        for (const std::uint32_t v : top) {
          if (v != u) *slot++ = v;
        }
        continue;
      }
      hng_link_node(pyramid.level(l - 1), points[u], static_cast<std::uint32_t>(u), params.k,
                    scratch, found);
      std::copy(found.begin(), found.end(), slot);
    }
  };
  if (thread_count() == 1) {
    GridKnn::QueryScratch scratch;
    std::vector<std::uint32_t> found;
    link(0, n, scratch, found);
  } else {
    parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
      GridKnn::QueryScratch scratch;
      std::vector<std::uint32_t> found;
      link(begin, end, scratch, found);
    });
  }

  r.geo.graph = CsrGraph::from_selections(std::move(sel));
  return r;
}

}  // namespace sens
