// Hierarchical neighbor graphs (Bagchi-Madan-Premi, arXiv:0903.0742).
//
// The same authors' follow-up construction to SENS: an energy-efficient
// bounded-expected-degree connected structure over the identical Poisson
// workload, built from p-thinning instead of tile goodness. Every node
// starts at level 1 and is independently promoted one level at a time with
// probability p, so P(level >= i) = p^(i-1) and the level-i population
// S_i = {u : level(u) >= i} is a p-thinning of S_{i-1}. Each node of exact
// level i links to its k nearest neighbors in S_{i+1}; the nodes of the
// topmost occupied level are mutually interconnected (their expected count
// is O(1/(1-p)), so the clique is constant-sized in expectation). The
// result is connected — every node has an upward path to the top clique —
// with constant expected degree and constant expected stretch.
//
// Determinism: promotion draws come from the per-node seeded stream
// (seed, kHngLevelStream, node) of the rng layer, and the per-level k-NN
// linking runs on the exact GridKnnPyramid, each node writing its own
// disjoint selection slice — so the overlay is bit-identical at any
// `--threads` value (construction contract: DESIGN.md §2.5).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sens/geograph/geo_graph.hpp"
#include "sens/geometry/vec2.hpp"
#include "sens/spatial/grid_knn.hpp"

namespace sens {

struct HngParams {
  /// Promotion probability of the p-thinning; must be in (0, 1).
  double promote_p = 0.25;
  /// Neighbors each node links to in the level above (paper: small
  /// constant; k >= 1). Larger k buys fault tolerance and lower stretch.
  std::size_t k = 3;
  /// Hard cap on the promotion chain, a guard against the geometric tail;
  /// p^(cap-1) is astronomically small for every sane (p, n).
  std::uint32_t max_level = 48;
};

struct HngResult {
  /// The overlay over *all* input points (HNG elects nobody), consumable
  /// by the batched spatial/traversal engines like any other GeoGraph.
  GeoGraph geo;
  /// Exact (1-based) level per node; level[u] == top_level for clique nodes.
  std::vector<std::uint32_t> level;
  /// Topmost occupied level (0 iff the input is empty).
  std::uint32_t top_level = 0;
  /// cumulative_size[i] = |S_(i+1)| = #nodes with level >= i+1, for
  /// i in [0, top_level): cumulative_size[0] == n, strictly positive.
  std::vector<std::uint32_t> cumulative_size;
};

/// Build the hierarchical neighbor graph H(p, k) over `points`. Throws
/// std::invalid_argument unless 0 < p < 1, k >= 1 and max_level >= 2.
[[nodiscard]] HngResult build_hng(std::span<const Vec2> points, const HngParams& params,
                                  std::uint64_t seed);

// --- per-node kernels, shared with the incremental maintainer ---
// (sens/dynamic). `build_hng` is exactly: draw every node's level with
// `hng_promotion_level`, then link every node with `hng_link_node` /
// the top clique rule — so an incremental structure using the same
// kernels agrees with the batch build bit for bit (DESIGN.md §2.7).

/// Validate `params` (same rules as build_hng); throws
/// std::invalid_argument on violation.
void validate_hng_params(const HngParams& params);

/// The promotion level of `node`: the length of the opening run of heads
/// in its dedicated rng stream (seed, "HNG", node), capped at max_level.
/// Pure in (seed, node, params) — a node's level never depends on when it
/// joined, which is what makes incremental maintenance exact.
[[nodiscard]] std::uint32_t hng_promotion_level(std::uint64_t seed, std::uint64_t node,
                                                const HngParams& params);

/// The linking kernel for a single node of exact level l < top: its
/// min(k, |S_{l+1}|) nearest members of `upper` — which must index
/// S_{l+1} — excluding `self`, in (distance, index) order. Returns the
/// count written into `out`.
std::size_t hng_link_node(const GridKnn& upper, Vec2 p, std::uint32_t self, std::size_t k,
                          GridKnn::QueryScratch& scratch, std::vector<std::uint32_t>& out);

}  // namespace sens
