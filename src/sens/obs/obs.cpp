#include "sens/obs/obs.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

#include "sens/support/timer.hpp"

namespace sens::obs {

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kDijkstraRuns: return "dijkstra_runs";
    case Counter::kDijkstraHeapPops: return "dijkstra_heap_pops";
    case Counter::kDijkstraRelaxedArcs: return "dijkstra_relaxed_arcs";
    case Counter::kBfsRuns: return "bfs_runs";
    case Counter::kBfsVisits: return "bfs_visits";
    case Counter::kGridKnnQueries: return "grid_knn_queries";
    case Counter::kGridKnnCellsScanned: return "grid_knn_cells_scanned";
    case Counter::kGridKnnCandidates: return "grid_knn_candidates";
    case Counter::kOracleCertified: return "oracle_certified";
    case Counter::kOracleFallback: return "oracle_fallback";
    case Counter::kOracleDisconnected: return "oracle_disconnected";
    case Counter::kEpochJournalReplays: return "epoch_journal_replays";
    case Counter::kEpochResyncs: return "epoch_resyncs";
    case Counter::kFaultNodesFailed: return "fault_nodes_failed";
    case Counter::kFaultEdgesLostEndpoint: return "fault_edges_lost_endpoint";
    case Counter::kFaultEdgesLostLink: return "fault_edges_lost_link";
    case Counter::kCount: break;
  }
  return "unknown";
}

CounterRegistry& CounterRegistry::global() {
  static CounterRegistry registry;
  return registry;
}

CounterRegistry::Block& CounterRegistry::block() {
  // One cached block per thread. The registry is a leaky singleton and
  // blocks are never deallocated, so the cache can never dangle — even for
  // pool workers that outlive many reset() cycles.
  thread_local Block* cached = nullptr;
  if (cached == nullptr) {
    auto owned = std::make_unique<Block>();
    cached = owned.get();
    const std::lock_guard<std::mutex> lock(mutex_);
    blocks_.push_back(std::move(owned));
  }
  return *cached;
}

CounterSnapshot CounterRegistry::snapshot() const {
  CounterSnapshot out{};
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& block : blocks_) {
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      out[i] += block->v[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t CounterRegistry::value(Counter c) const {
  return snapshot()[static_cast<std::size_t>(c)];
}

void CounterRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& block : blocks_) {
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      block->v[i].store(0, std::memory_order_relaxed);
    }
  }
}

void LatencyHistogram::record(std::uint64_t ns) noexcept {
  ++buckets_[static_cast<std::size_t>(std::bit_width(ns))];
  if (count_ == 0 || ns < min_ns_) min_ns_ = ns;
  if (ns > max_ns_) max_ns_ = ns;
  ++count_;
  sum_ns_ += ns;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ns_ < min_ns_) min_ns_ = other.min_ns_;
  if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
}

double LatencyHistogram::mean_ns() const noexcept {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_ns_) / static_cast<double>(count_);
}

std::uint64_t LatencyHistogram::percentile_ns(double p) const noexcept {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const auto rank =
      static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank && buckets_[b] > 0) {
      // Upper edge of bucket b is 2^b - 1 (bucket 0 holds exact zeros).
      const std::uint64_t edge =
          b == 0 ? 0 : (b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1);
      return std::clamp(edge, min_ns_, max_ns_);
    }
  }
  return max_ns_;
}

namespace {

void trace_sink(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns) {
  TraceLog::global().record(name, begin_ns, end_ns);
}

std::uint32_t this_thread_trace_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

TraceLog& TraceLog::global() {
  static TraceLog log;
  return log;
}

void TraceLog::enable(bool keep_events) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    keep_events_ = keep_events;
  }
  enabled_.store(true, std::memory_order_release);
  set_span_sink(&trace_sink);
}

void TraceLog::disable() {
  set_span_sink(nullptr);
  enabled_.store(false, std::memory_order_release);
}

std::vector<TraceLog::SpanTotal> TraceLog::totals() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return totals_;
}

std::size_t TraceLog::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceLog::record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns) {
  if (!enabled()) return;
  const std::uint32_t tid = this_thread_trace_id();
  const std::lock_guard<std::mutex> lock(mutex_);
  auto total = std::find_if(totals_.begin(), totals_.end(),
                            [&](const SpanTotal& t) { return t.name == name; });
  if (total == totals_.end()) {
    totals_.push_back(SpanTotal{name, 0, 0});
    total = std::prev(totals_.end());
  }
  total->total_ns += end_ns - begin_ns;
  ++total->count;
  if (keep_events_) events_.push_back(Event{name, begin_ns, end_ns, tid});
}

namespace {

/// Nanoseconds rendered as microseconds with a zero-padded ns fraction
/// ("5007" ns -> "5.007"), the unit Chrome trace timestamps use.
std::string micros_with_ns(std::uint64_t ns) {
  std::string frac = std::to_string(ns % 1000);
  return std::to_string(ns / 1000) + "." + std::string(3 - frac.size(), '0') + frac;
}

}  // namespace

void TraceLog::write_chrome_trace(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t origin_ns = ~std::uint64_t{0};
  for (const Event& e : events_) origin_ns = std::min(origin_ns, e.begin_ns);
  out << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (i != 0) out << ",";
    // "ph":"X" = complete event (begin + duration).
    out << "\n{\"name\":\"" << e.name << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.tid
        << ",\"ts\":" << micros_with_ns(e.begin_ns - origin_ns)
        << ",\"dur\":" << micros_with_ns(e.end_ns - e.begin_ns) << "}";
  }
  out << "\n]}\n";
}

void TraceLog::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  totals_.clear();
}

}  // namespace sens::obs
