// Observability layer (DESIGN.md §2.10): two strictly separated metric
// classes.
//
//  1. Deterministic *work counters* — pure functions of (seed, workload):
//     Dijkstra heap pops / arc relaxations, BFS visits, GridKnn cells
//     scanned / candidates examined, oracle verdicts, epoch replays vs
//     resyncs, fault casualties. Every kernel tallies its own work in plain
//     stack locals and flushes once per run/query into a per-thread counter
//     block; uint64 addition commutes, so the merged totals are
//     bit-identical at any `--threads` value. These may enter bench
//     `--json` and are cmp'd by the bench-json CI job.
//
//  2. *Timing observables* — span timers (via `ScopedSpan` in
//     support/timer.hpp feeding `TraceLog`), latency histograms, pool
//     utilization. Machine-dependent by nature; stdout-only, never JSON.
//
// The whole layer compiles out under -DSENS_OBS_ENABLED=0 (CMake option
// `SENS_OBS=OFF`): the `SENS_OBS(...)` macro drops its arguments textually,
// so instrumented hot loops carry zero overhead in the compiled-out build
// (asserted <2% even when ON by scripts/check_obs_overhead.sh).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef SENS_OBS_ENABLED
#define SENS_OBS_ENABLED 1
#endif

#if SENS_OBS_ENABLED
/// Expands to its arguments when the obs layer is compiled in, to nothing
/// otherwise. Use for statement-scope instrumentation only — never as the
/// sole body of an if/else (the OFF expansion would capture the next
/// statement); brace such sites.
#define SENS_OBS(...) __VA_ARGS__
#else
#define SENS_OBS(...)
#endif

namespace sens::obs {

/// Deterministic work counters. Each is a pure function of (seed, workload)
/// — never of thread count, scheduling, or wall clock — which is what
/// licenses putting them into bench `--json` (DESIGN.md §2.10).
enum class Counter : std::uint32_t {
  kDijkstraRuns = 0,        ///< single-source runs completed
  kDijkstraHeapPops,        ///< settled heap extractions
  kDijkstraRelaxedArcs,     ///< arcs examined for relaxation
  kBfsRuns,                 ///< single-source runs completed
  kBfsVisits,               ///< vertices labeled (incl. source)
  kGridKnnQueries,          ///< nearest_into calls
  kGridKnnCellsScanned,     ///< grid cells whose bucket was read
  kGridKnnCandidates,       ///< candidate points offered to a selector
  kOracleCertified,         ///< QueryEngine answers certified by bounds
  kOracleFallback,          ///< QueryEngine answers needing exact Dijkstra
  kOracleDisconnected,      ///< QueryEngine answers that are +inf
  kEpochJournalReplays,     ///< overlay deltas replayed by EpochQueryEngine
  kEpochResyncs,            ///< full snapshot resyncs (journal truncated)
  kFaultNodesFailed,        ///< nodes killed by apply_faults
  kFaultEdgesLostEndpoint,  ///< edges lost to a dead endpoint
  kFaultEdgesLostLink,      ///< edges lost to targeted link failure
  kCount
};

inline constexpr std::size_t kCounterCount = static_cast<std::size_t>(Counter::kCount);

/// Stable snake_case name, used verbatim in the bench `--json` counter
/// table (so renaming a counter is a visible CI diff).
[[nodiscard]] const char* counter_name(Counter c) noexcept;

using CounterSnapshot = std::array<std::uint64_t, kCounterCount>;

/// Process-wide counter registry. Writers hit a per-thread block of relaxed
/// atomics (registered once per thread under a mutex, never deallocated, so
/// blocks safely outlive their threads); readers sum across blocks. Relaxed
/// ordering is sufficient: counters are independent monotone tallies and
/// snapshot() only promises the exact totals once the workload's threads
/// have joined — which parallel_for_chunks guarantees before returning.
class CounterRegistry {
 public:
  static CounterRegistry& global();

  void add(Counter c, std::uint64_t n) noexcept {
    block().v[static_cast<std::size_t>(c)].fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] CounterSnapshot snapshot() const;
  [[nodiscard]] std::uint64_t value(Counter c) const;

  /// Zero every registered block (blocks stay registered — thread caches
  /// remain valid). Tests call this between determinism trials.
  void reset();

 private:
  struct Block {
    std::array<std::atomic<std::uint64_t>, kCounterCount> v{};
  };

  CounterRegistry() = default;
  Block& block();

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Block>> blocks_;
};

/// Convenience writer used by the `SENS_OBS(...)` flush sites.
inline void add(Counter c, std::uint64_t n) { CounterRegistry::global().add(c, n); }

/// Log2-bucketed latency histogram (nanoseconds). Bucket b holds samples in
/// [2^(b-1), 2^b); bucket 0 holds exact zeros. Timing class: stdout-only,
/// never `--json` (DESIGN.md §2.10).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width(uint64) ∈ [0, 64]

  void record(std::uint64_t ns) noexcept;
  void merge(const LatencyHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t min_ns() const noexcept { return count_ ? min_ns_ : 0; }
  [[nodiscard]] std::uint64_t max_ns() const noexcept { return max_ns_; }
  [[nodiscard]] double mean_ns() const noexcept;

  /// Upper edge of the bucket containing quantile p ∈ [0, 1], clamped to
  /// the observed [min, max] — a conservative (over-)estimate with ≤2x
  /// bucket resolution, plenty for p50/p95/p99 reporting.
  [[nodiscard]] std::uint64_t percentile_ns(double p) const noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
  std::uint64_t min_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

/// Span collector behind the `ScopedSpan` sink hook (support/timer.hpp).
/// Aggregates per-name totals for the bench `[obs]` footer and, when asked
/// to keep events, exports a Chrome-trace/Perfetto JSON timeline
/// (`--trace FILE`). Timing class: stdout/file only, never `--json`.
class TraceLog {
 public:
  static TraceLog& global();

  /// Install this log as the process span sink. keep_events retains the
  /// individual spans for write_chrome_trace; without it only per-name
  /// totals accumulate (cheaper, enough for the footer).
  void enable(bool keep_events);
  void disable();
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_acquire);
  }

  struct SpanTotal {
    std::string name;
    std::uint64_t total_ns = 0;
    std::uint64_t count = 0;
  };

  [[nodiscard]] std::vector<SpanTotal> totals() const;  // first-seen order
  [[nodiscard]] std::size_t event_count() const;

  /// Chrome trace event format: {"traceEvents":[{"ph":"X",...}]}. Load in
  /// chrome://tracing or ui.perfetto.dev. Timestamps are µs relative to
  /// the earliest recorded span.
  void write_chrome_trace(std::ostream& out) const;

  void clear();

  /// Sink entry point (called by ScopedSpan destructors on any thread).
  void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns);

 private:
  TraceLog() = default;

  struct Event {
    std::string name;
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
    std::uint32_t tid = 0;
  };

  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  bool keep_events_ = false;
  std::vector<Event> events_;
  std::vector<SpanTotal> totals_;
};

}  // namespace sens::obs
