#include "sens/rng/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace sens {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t index) { return Rng(mix_seed(seed, index)); }

Rng Rng::stream(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  return Rng(mix_seed(mix_seed(seed, a), b));
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return Rng(mix_seed(mix_seed(mix_seed(seed, a), b), c));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n == 0");
  // Lemire-style rejection-free-ish multiply-shift with rejection to remove bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

long Rng::uniform_int(long lo, long hi) {
  if (hi < lo) throw std::invalid_argument("uniform_int: hi < lo");
  return lo + static_cast<long>(uniform_index(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::normal() {
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double lambda) {
  if (lambda <= 0.0) throw std::invalid_argument("exponential: lambda <= 0");
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("poisson: mean < 0");
  if (mean == 0.0) return 0;
  // Split large means: Poisson(a + b) = Poisson(a) + Poisson(b) independently.
  // Keeps the exact inversion numerically safe (exp(-mean) underflows near 745).
  std::uint64_t total = 0;
  double remaining = mean;
  while (remaining > 60.0) {
    const double half = remaining / 2.0;
    total += poisson(half);
    remaining -= half;
  }
  const double threshold = std::exp(-remaining);
  std::uint64_t k = 0;
  double prod = uniform();
  while (prod > threshold) {
    ++k;
    prod *= uniform();
  }
  return total + k;
}

}  // namespace sens
