// Deterministic random number generation.
//
// The project never uses std::random_device or global engines: every sampler
// is seeded from an explicit (seed, stream...) tuple hashed with SplitMix64,
// so Monte-Carlo experiments are reproducible bit-for-bit across runs and
// across thread counts. The core engine is xoshiro256** (public-domain
// algorithm by Blackman & Vigna), re-implemented here.
#pragma once

#include <array>
#include <cstdint>

namespace sens {

/// SplitMix64 step; also used as a mixing/hash function for stream derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hash-combine used to derive independent child streams from a parent seed.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** engine with distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

  /// Independent stream `index` derived from `seed`; streams with different
  /// indices are statistically independent for our purposes.
  static Rng stream(std::uint64_t seed, std::uint64_t index);
  static Rng stream(std::uint64_t seed, std::uint64_t a, std::uint64_t b);
  static Rng stream(std::uint64_t seed, std::uint64_t a, std::uint64_t b, std::uint64_t c);

  std::uint64_t next_u64();
  std::uint64_t operator()() { return next_u64(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  long uniform_int(long lo, long hi);
  /// True with probability p.
  bool bernoulli(double p);
  /// Standard normal via Box-Muller (unbuffered; ~2 uniforms per call).
  double normal();
  double normal(double mean, double stddev);
  /// Exponential with rate lambda.
  double exponential(double lambda);
  /// Poisson-distributed count with the given mean. Exact inversion for
  /// small means, PTRD-style normal-approximation-free splitting for large
  /// means (splits mean in halves until small enough for inversion).
  std::uint64_t poisson(double mean);

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace sens
