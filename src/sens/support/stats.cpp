#include "sens/support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace sens {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStats::ci95_halfwidth() const { return 1.96 * stderr_mean(); }

double Proportion::estimate() const {
  return trials == 0 ? 0.0 : static_cast<double>(successes) / static_cast<double>(trials);
}

namespace {
constexpr double kZ95 = 1.959963984540054;

double wilson_bound(std::size_t s, std::size_t n, bool upper) {
  if (n == 0) return upper ? 1.0 : 0.0;
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(s) / nn;
  const double z2 = kZ95 * kZ95;
  const double denom = 1.0 + z2 / nn;
  const double center = p + z2 / (2.0 * nn);
  const double margin = kZ95 * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
  const double v = (center + (upper ? margin : -margin)) / denom;
  return std::clamp(v, 0.0, 1.0);
}
}  // namespace

double Proportion::wilson_low() const { return wilson_bound(successes, trials, false); }
double Proportion::wilson_high() const { return wilson_bound(successes, trials, true); }

LineFit fit_line(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("fit_line: size mismatch");
  LineFit fit;
  fit.n = x.size();
  if (fit.n < 2) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(fit.n);
  const double my = sy / static_cast<double>(fit.n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LineFit fit_exponential(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("fit_exponential: size mismatch");
  std::vector<double> xs, logy;
  xs.reserve(x.size());
  logy.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (y[i] > 0.0) {
      xs.push_back(x[i]);
      logy.push_back(std::log(y[i]));
    }
  }
  return fit_line(xs, logy);
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty input");
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) throw std::invalid_argument("Histogram: bad range");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::to_string(std::size_t max_rows) const {
  std::ostringstream os;
  const std::size_t stride = std::max<std::size_t>(1, counts_.size() / std::max<std::size_t>(1, max_rows));
  for (std::size_t i = 0; i < counts_.size(); i += stride) {
    std::size_t c = 0;
    for (std::size_t j = i; j < std::min(i + stride, counts_.size()); ++j) c += counts_[j];
    os << "[" << bin_lo(i) << ", " << bin_hi(std::min(i + stride, counts_.size()) - 1) << "): " << c << "\n";
  }
  return os.str();
}

}  // namespace sens
