// Statistics helpers shared by the experiment harness and tests:
// streaming moments, confidence intervals, proportion intervals, quantiles,
// least-squares line fits (used for the exponential-decay fits of the
// coverage and chemical-distance experiments), and a tiny histogram.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace sens {

/// Welford streaming mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;       ///< Sample variance (n-1 denominator).
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double stderr_mean() const;    ///< Standard error of the mean.
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Half-width of a ~95% normal confidence interval for the mean.
  [[nodiscard]] double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Point estimate + Wilson score 95% interval for a binomial proportion.
struct Proportion {
  std::size_t successes = 0;
  std::size_t trials = 0;

  [[nodiscard]] double estimate() const;
  [[nodiscard]] double wilson_low() const;
  [[nodiscard]] double wilson_high() const;
};

/// Ordinary least squares fit y = intercept + slope * x.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
  std::size_t n = 0;
};

[[nodiscard]] LineFit fit_line(std::span<const double> x, std::span<const double> y);

/// Fit y = A * exp(B x) by regressing log(y) on x; points with y <= 0 are
/// dropped (their count is reported via LineFit::n). slope = B,
/// intercept = log A.
[[nodiscard]] LineFit fit_exponential(std::span<const double> x, std::span<const double> y);

/// q-th sample quantile (q in [0,1]) using linear interpolation. The input
/// is copied and sorted.
[[nodiscard]] double quantile(std::vector<double> values, double q);

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

  /// Render as "lo..hi: count" lines (used by example binaries).
  [[nodiscard]] std::string to_string(std::size_t max_rows = 32) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace sens
