// Checked narrowing for the 32-bit index space (DESIGN.md §2.8).
//
// Every graph and spatial engine in this project keys vertices, arcs and
// bucket slots with std::uint32_t. That is the right width for the target
// regime (10^6–10^7 nodes, ~10^8 arcs fit with room to spare) — but the
// builders take std::size_t counts, and a silent narrowing cast would wrap
// instead of failing once an input outgrows the id space. Every narrowing
// on a build path goes through `checked_u32`, so the failure mode is one
// std::overflow_error at construction, never a corrupt structure.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace sens {

/// `value` as std::uint32_t; throws std::overflow_error when it does not
/// fit. `what` names the count being narrowed (shows up in the message).
[[nodiscard]] inline std::uint32_t checked_u32(std::size_t value, const char* what) {
  if (value > std::numeric_limits<std::uint32_t>::max()) {
    throw std::overflow_error(std::string(what) + ": count " + std::to_string(value) +
                              " exceeds the 32-bit index space");
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace sens
