// Process memory probes for the scale benches (DESIGN.md §2.8).
//
// Linux exposes the peak resident set size as the VmHWM line of
// /proc/self/status (and the current one as VmRSS); on other platforms the
// probes return 0 and callers print nothing. Two caveats the consumers must
// respect: VmHWM is monotone over the process lifetime — a per-stage
// reading is the cumulative high-water mark, not that stage's footprint —
// and residency is an OS decision, so the numbers are measurements, never
// part of a deterministic (--json) document.
#pragma once

#include <cstddef>
#include <fstream>
#include <string>

namespace sens {

/// The value of a `key: N kB` line of /proc/self/status, in bytes;
/// 0 when the file or the key is unavailable.
[[nodiscard]] inline std::size_t proc_status_bytes(const std::string& key) {
  std::ifstream status("/proc/self/status");
  if (!status) return 0;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key + ":", 0) != 0) continue;
    std::size_t kib = 0;
    for (const char c : line) {
      if (c >= '0' && c <= '9') {
        kib = kib * 10 + static_cast<std::size_t>(c - '0');
      } else if (kib > 0) {
        break;
      }
    }
    return kib * 1024;
  }
  return 0;
}

/// Peak resident set size (VmHWM) in bytes; 0 when unavailable. Monotone
/// over the process lifetime.
[[nodiscard]] inline std::size_t peak_rss_bytes() { return proc_status_bytes("VmHWM"); }

/// Current resident set size (VmRSS) in bytes; 0 when unavailable.
[[nodiscard]] inline std::size_t current_rss_bytes() { return proc_status_bytes("VmRSS"); }

}  // namespace sens
