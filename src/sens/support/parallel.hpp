// Structured, deterministic fork/join parallelism.
//
// Monte-Carlo sweeps in this project are embarrassingly parallel over task
// indices. `parallel_for` dispatches indices [0, n) over a fixed-size thread
// pool; callers derive their randomness from the task index alone (see
// sens/rng/rng.hpp), so every result is bit-identical regardless of the
// number of worker threads. This follows the C++ Core Guidelines CP rules:
// no shared mutable state inside tasks, joins are structured and exceptions
// propagate to the caller.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace sens {

/// Number of workers used by default: hardware_concurrency, at least 1.
[[nodiscard]] unsigned default_thread_count();

/// Globally override the worker count (0 = use default_thread_count()).
/// Intended for tests and benchmarks that need serial execution.
void set_thread_count(unsigned n);
[[nodiscard]] unsigned thread_count();

/// Invoke `body(i)` for every i in [0, n). Order is unspecified; the call
/// returns after all invocations complete. The first exception thrown by any
/// task is rethrown in the caller.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

/// Map-reduce over [0, n): each task computes a double, the results are
/// summed deterministically in index order after the join.
[[nodiscard]] double parallel_sum(std::size_t n, const std::function<double(std::size_t)>& task);

/// Map over [0, n) into a vector (results placed at their task index).
template <typename T>
[[nodiscard]] std::vector<T> parallel_map(std::size_t n, const std::function<T(std::size_t)>& task) {
  std::vector<T> out(n);
  parallel_for(n, [&](std::size_t i) { out[i] = task(i); });
  return out;
}

}  // namespace sens
