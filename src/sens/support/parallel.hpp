// Structured, deterministic fork/join parallelism (header-only).
//
// Monte-Carlo sweeps in this project are embarrassingly parallel over task
// indices. The layer hands out index *chunks* from an atomic cursor to a
// persistent worker pool and invokes the caller's lambda directly — the only
// type erasure is one function-pointer + context per parallel call, never a
// `std::function` per index. Callers derive their randomness from the task
// index alone (see sens/rng/rng.hpp), and `parallel_reduce` combines
// per-chunk partials in chunk order with a chunk layout that depends only on
// `n`, so every result is bit-identical regardless of the number of worker
// threads. This follows the C++ Core Guidelines CP rules: no shared mutable
// state inside tasks, joins are structured and exceptions propagate to the
// caller. Nested parallel calls are safe: an inner call issued from inside a
// parallel region runs its chunks inline, in chunk order, on the calling
// worker (same chunk layout, hence the same deterministic result).
//
// The layer is *reentrant* (DESIGN.md §2.6): top-level calls issued
// concurrently from distinct user threads do not serialize. Every call owns
// its job state (chunk cursor, ticket and participant counts), the pool
// keeps a list of jobs with unclaimed helper tickets, and idle workers claim
// a ticket from the first such job. The submitting thread always
// participates in its own job and never blocks on another caller's job, so
// concurrent callers make progress even when the pool is saturated — they
// just receive fewer helpers. Determinism is unaffected: the chunk layout is
// a pure function of n, never of how many helpers a job happened to get.
//
// Design notes (DESIGN.md §2 records the full contract):
//   * chunk layout: ceil(n / 1024) indices per chunk, a pure function of n;
//   * the worker pool is lazy, grows to the largest helper count requested,
//     and is shared by all concurrently active top-level calls;
//   * `set_thread_count(1)` (or a 1-core machine) short-circuits to the
//     serial inline path — no pool, no atomics beyond the cursor.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sens {

/// Number of workers used by default: hardware_concurrency, at least 1.
[[nodiscard]] inline unsigned default_thread_count() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// Pool utilization tallies since process start. Scheduling-dependent
/// (helpers claim tickets as they get scheduled), so this is a *timing
/// observable* (DESIGN.md §2.10): stdout-only in bench footers, never
/// `--json`. Maintained unconditionally — all three counters move once per
/// parallel call (under a lock already held, or one relaxed add), never per
/// index, so the cost is unmeasurable.
struct PoolStats {
  std::uint64_t jobs = 0;           ///< top-level calls that engaged the pool
  std::uint64_t helper_claims = 0;  ///< helper tickets actually claimed
  std::uint64_t inline_calls = 0;   ///< calls that ran serial (want<=1 or nested)
};

namespace detail {

inline std::atomic<unsigned>& thread_override() {
  static std::atomic<unsigned> override_count{0};
  return override_count;
}

/// True while the current thread is executing chunks of a parallel call;
/// used to run nested calls inline instead of deadlocking on the pool.
inline bool& in_parallel_region() {
  thread_local bool in_region = false;
  return in_region;
}

/// RAII: mark the current thread as inside a parallel region; restores the
/// previous value on scope exit (exception-safe by construction).
struct RegionGuard {
  bool previous;
  RegionGuard() : previous(in_parallel_region()) { in_parallel_region() = true; }
  ~RegionGuard() { in_parallel_region() = previous; }
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;
};

/// Deterministic chunk layout: a pure function of n (never of the worker
/// count), so per-chunk reduction partials are identical at any parallelism.
inline constexpr std::size_t kMaxChunks = 1024;

[[nodiscard]] constexpr std::size_t chunk_size_for(std::size_t n) {
  const std::size_t cs = (n + kMaxChunks - 1) / kMaxChunks;
  return cs == 0 ? 1 : cs;
}

[[nodiscard]] constexpr std::size_t chunk_count_for(std::size_t n) {
  const std::size_t cs = chunk_size_for(n);
  return (n + cs - 1) / cs;
}

/// One parallel call: a function pointer + untyped context (erased once per
/// call), an atomic cursor handing out chunks, and the first exception.
/// `tickets` / `active` are the pool's per-job bookkeeping (§2.6): helper
/// slots not yet claimed and helpers currently inside work(). Both are
/// guarded by the pool mutex, never touched by the job itself.
struct ParallelJob {
  using ChunkFn = void (*)(void* ctx, std::size_t begin, std::size_t end);

  ChunkFn run_chunk;
  void* ctx;
  std::size_t n;
  std::size_t chunk;
  std::atomic<std::size_t> cursor{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  unsigned tickets = 0;  ///< unclaimed helper slots (pool mutex)
  unsigned active = 0;   ///< helpers inside work() (pool mutex)

  ParallelJob(ChunkFn fn, void* context, std::size_t count, std::size_t chunk_sz)
      : run_chunk(fn), ctx(context), n(count), chunk(chunk_sz) {}

  /// Pull chunks until the cursor is exhausted. Called by the submitting
  /// thread and every participating worker.
  void work() {
    const RegionGuard region;
    for (;;) {
      const std::size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = begin + chunk < n ? begin + chunk : n;
      try {
        run_chunk(ctx, begin, end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        cursor.store(n, std::memory_order_relaxed);  // drain remaining work
        break;
      }
    }
  }
};

/// Persistent worker pool. Lazily constructed on the first parallel call
/// that wants helpers; grows up to the largest helper count requested
/// (bounded by kMaxPoolThreads); joined at process exit.
///
/// Reentrant (DESIGN.md §2.6): the pool keeps a list of concurrently active
/// jobs instead of a single slot guarded by a run mutex. Every `run` call
/// publishes its job with a helper-ticket budget, participates in its own
/// job, and on return waits only for the helpers that actually claimed one
/// of *its* tickets. Idle workers claim a ticket from the first job that
/// still has one, so simultaneous top-level calls from distinct user
/// threads share the pool instead of serializing, and no caller ever blocks
/// on another caller's job.
class WorkerPool {
 public:
  static constexpr unsigned kMaxPoolThreads = 256;

  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Execute `job` with up to `helpers` pool threads assisting the caller.
  /// Safe to call concurrently from any number of user threads.
  void run(ParallelJob& job, unsigned helpers) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ensure_workers(helpers);
      if (threads_.size() < helpers) helpers = static_cast<unsigned>(threads_.size());
      job.tickets = helpers;
      job.active = 0;
      jobs_.push_back(&job);
      ++stat_jobs_;
    }
    cv_.notify_all();
    job.work();  // the caller is always a participant in its own job
    std::unique_lock<std::mutex> lock(mutex_);
    // The caller only returns from work() once the cursor is drained, so any
    // worker that has not yet claimed its ticket would find no work anyway —
    // abandon unclaimed tickets rather than waiting for every helper to be
    // scheduled just to notice the job is done.
    job.tickets = 0;
    done_cv_.wait(lock, [&] { return job.active == 0; });
    jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
    // Helpers' writes into caller-visible buffers happened before they
    // released mutex_ (decrementing job.active under the lock), and the
    // caller holds mutex_ here — the join is a proper happens-before edge.
  }

  /// Jobs run and helper tickets claimed so far (PoolStats minus the
  /// inline-call tally, which lives outside the pool).
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> stat_counts() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return {stat_jobs_, stat_helper_claims_};
  }

 private:
  WorkerPool() = default;

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  void ensure_workers(unsigned helpers) {  // requires mutex_ held
    if (helpers > kMaxPoolThreads) helpers = kMaxPoolThreads;
    while (threads_.size() < helpers) threads_.emplace_back([this] { worker_loop(); });
  }

  /// First job with an unclaimed helper ticket, or nullptr (requires mutex_).
  [[nodiscard]] ParallelJob* claimable_job() {
    for (ParallelJob* job : jobs_) {
      if (job->tickets > 0) return job;
    }
    return nullptr;
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      ParallelJob* job = nullptr;
      cv_.wait(lock, [&] { return stop_ || (job = claimable_job()) != nullptr; });
      if (stop_) return;
      --job->tickets;
      ++job->active;
      ++stat_helper_claims_;
      lock.unlock();
      job->work();
      lock.lock();
      --job->active;
      // notify_all: several callers may be waiting, each on its own job.
      if (job->tickets == 0 && job->active == 0) done_cv_.notify_all();
    }
  }

  std::mutex mutex_;  ///< guards all state below + per-job tickets/active
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  std::vector<ParallelJob*> jobs_;  ///< concurrently active top-level calls
  bool stop_ = false;
  std::uint64_t stat_jobs_ = 0;           ///< guarded by mutex_
  std::uint64_t stat_helper_claims_ = 0;  ///< guarded by mutex_
};

/// Serial parallel_* invocations (want<=1 or nested) never reach the pool;
/// tallied here for PoolStats.
inline std::atomic<std::uint64_t>& inline_call_count() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

/// Shared driver: dispatch [0, n) in chunks to `fn(ctx, begin, end)`.
/// Serial path (single participant or nested call) walks the same chunk
/// layout in chunk order, so reductions stay bit-identical.
inline void run_chunked(std::size_t n, ParallelJob::ChunkFn fn, void* ctx) {
  if (n == 0) return;
  const std::size_t chunk = chunk_size_for(n);
  const std::size_t chunks = chunk_count_for(n);
  unsigned want = 0;  // participants, caller included
  {
    const unsigned configured = thread_override().load(std::memory_order_relaxed);
    const unsigned cap = configured == 0 ? default_thread_count() : configured;
    want = chunks < cap ? static_cast<unsigned>(chunks) : cap;
  }
  if (want <= 1 || in_parallel_region()) {
    inline_call_count().fetch_add(1, std::memory_order_relaxed);
    const RegionGuard region;
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      fn(ctx, begin, begin + chunk < n ? begin + chunk : n);
    }
    return;
  }
  ParallelJob job(fn, ctx, n, chunk);
  WorkerPool::instance().run(job, want - 1);
  if (job.error) std::rethrow_exception(job.error);
}

template <typename Body>
inline ParallelJob::ChunkFn make_index_trampoline() {
  return [](void* ctx, std::size_t begin, std::size_t end) {
    Body& body = *static_cast<Body*>(ctx);
    for (std::size_t i = begin; i < end; ++i) body(i);
  };
}

}  // namespace detail

/// The deterministic chunk layout used by every parallel_* call: a pure
/// function of `n`, never of the worker count. Callers that collect
/// per-chunk results (e.g. the UDG builder's per-chunk edge buffers) index
/// them with `index_of(begin)` and concatenate in chunk order, which makes
/// the concatenation identical to a serial left-to-right pass at any thread
/// count (DESIGN.md §2.3).
struct ChunkLayout {
  std::size_t size;   ///< indices per chunk, ceil(n / 1024) (>= 1)
  std::size_t count;  ///< number of chunks covering [0, n)

  /// Chunk index of the chunk starting at `begin` (as handed to the body of
  /// `parallel_for_chunks`).
  [[nodiscard]] constexpr std::size_t index_of(std::size_t begin) const { return begin / size; }
};

[[nodiscard]] constexpr ChunkLayout chunk_layout(std::size_t n) {
  return {detail::chunk_size_for(n), detail::chunk_count_for(n)};
}

/// Globally override the worker count (0 = use default_thread_count()).
/// Intended for tests and benchmarks that need serial execution.
inline void set_thread_count(unsigned n) {
  detail::thread_override().store(n, std::memory_order_relaxed);
}
[[nodiscard]] inline unsigned thread_count() {
  const unsigned n = detail::thread_override().load(std::memory_order_relaxed);
  return n == 0 ? default_thread_count() : n;
}

/// Snapshot of pool utilization since process start (see PoolStats).
[[nodiscard]] inline PoolStats pool_stats() {
  PoolStats out;
  const auto [jobs, claims] = detail::WorkerPool::instance().stat_counts();
  out.jobs = jobs;
  out.helper_claims = claims;
  out.inline_calls = detail::inline_call_count().load(std::memory_order_relaxed);
  return out;
}

/// Invoke `body(i)` for every i in [0, n). Order is unspecified; the call
/// returns after all invocations complete. The first exception thrown by any
/// task is rethrown in the caller. Safe to call from inside another parallel
/// call (the nested loop runs inline on the calling worker).
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
  using BodyT = std::remove_reference_t<Body>;
  detail::run_chunked(n, detail::make_index_trampoline<BodyT>(),
                      const_cast<std::remove_const_t<BodyT>*>(std::addressof(body)));
}

/// Invoke `body(begin, end)` for half-open chunks covering [0, n). Use this
/// when per-task state (scratch buffers, RNG streams, partial accumulators)
/// is worth hoisting out of the per-index loop. The chunk layout is the
/// deterministic one used by `parallel_reduce`.
template <typename Body>
void parallel_for_chunks(std::size_t n, Body&& body) {
  using BodyT = std::remove_reference_t<Body>;
  detail::run_chunked(
      n,
      [](void* ctx, std::size_t begin, std::size_t end) {
        (*static_cast<BodyT*>(ctx))(begin, end);
      },
      const_cast<std::remove_const_t<BodyT>*>(std::addressof(body)));
}

/// Deterministic map-reduce over [0, n): each chunk left-folds `map(i)` with
/// `combine` in index order, and the per-chunk partials are folded onto
/// `init` in chunk order after the join. Because the chunk layout depends
/// only on `n`, the result is bit-identical at every thread count (including
/// non-associative floating-point combines). T must be default-constructible
/// and movable.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(std::size_t n, T init, Map&& map, Combine&& combine) {
  static_assert(!std::is_same_v<T, bool>,
                "parallel_reduce<bool> would race on std::vector<bool>'s packed storage; "
                "reduce to an integer count instead");
  if (n == 0) return init;
  const std::size_t chunk = detail::chunk_size_for(n);
  std::vector<T> partials(detail::chunk_count_for(n));
  struct Ctx {
    std::remove_reference_t<Map>* map;
    std::remove_reference_t<Combine>* combine;
    std::vector<T>* partials;
    std::size_t chunk;
  } ctx{std::addressof(map), std::addressof(combine), &partials, chunk};
  detail::run_chunked(
      n,
      [](void* raw, std::size_t begin, std::size_t end) {
        Ctx& c = *static_cast<Ctx*>(raw);
        T acc = (*c.map)(begin);
        for (std::size_t i = begin + 1; i < end; ++i) acc = (*c.combine)(std::move(acc), (*c.map)(i));
        (*c.partials)[begin / c.chunk] = std::move(acc);
      },
      &ctx);
  T total = std::move(init);
  for (T& p : partials) total = combine(std::move(total), std::move(p));
  return total;
}

/// Map-reduce over [0, n): each task computes a double, the results are
/// summed deterministically (per-chunk partials in chunk order).
template <typename Task>
[[nodiscard]] double parallel_sum(std::size_t n, Task&& task) {
  return parallel_reduce(
      n, 0.0, std::forward<Task>(task), [](double a, double b) { return a + b; });
}

/// Chunk-ordered collection (DESIGN.md §2.3): run `scan(begin, end, sink)`
/// over [0, n) — each invocation appending any number of T's to its sink —
/// and return all results concatenated in chunk order. Because the chunk
/// layout is a pure function of n, the output equals one serial
/// left-to-right pass at any thread count (single-participant runs take
/// exactly that short-circuit: one sink, one scan call). This is the shared
/// scaffold of the variable-output graph builders (`build_udg`, the spanner
/// filters).
template <typename T, typename Scan>
[[nodiscard]] std::vector<T> collect_chunk_ordered(std::size_t n, Scan&& scan) {
  std::vector<T> out;
  if (thread_count() == 1) {
    scan(std::size_t{0}, n, out);
    return out;
  }
  const ChunkLayout layout = chunk_layout(n);
  std::vector<std::vector<T>> chunks(layout.count);
  parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
    scan(begin, end, chunks[layout.index_of(begin)]);
  });
  std::size_t total = 0;
  for (const auto& c : chunks) total += c.size();
  out.reserve(total);
  for (const auto& c : chunks) out.insert(out.end(), c.begin(), c.end());
  return out;
}

/// Map over [0, n) into a vector (results placed at their task index).
template <typename T, typename Task>
[[nodiscard]] std::vector<T> parallel_map(std::size_t n, Task&& task) {
  static_assert(!std::is_same_v<T, bool>,
                "parallel_map<bool> would race on std::vector<bool>'s packed storage; "
                "map to std::uint8_t instead");
  std::vector<T> out(n);
  parallel_for(n, [&out, &task](std::size_t i) { out[i] = task(i); });
  return out;
}

}  // namespace sens
