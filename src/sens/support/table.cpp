#include "sens/support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sens {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

std::string Table::markdown() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << " " << cells[c] << std::string(width[c] - cells[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  emit(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << std::string(width[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << markdown(); }

}  // namespace sens
