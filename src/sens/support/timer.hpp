// Wall-clock stopwatch and span timing for experiment reporting. Everything
// here reads std::chrono::steady_clock — never the wall clock — so elapsed
// times and spans are monotonic and immune to NTP adjustments. Timing is an
// observability class of its own (DESIGN.md §2.10): machine-dependent, so
// it goes to stdout/trace files only, never into bench `--json`.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace sens {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Monotonic nanosecond timestamp (steady_clock epoch — comparable within
/// a process, meaningless across processes).
[[nodiscard]] inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Process-wide sink for completed spans: (name, begin_ns, end_ns).
/// support/ cannot depend on obs/, so the collector (obs::TraceLog)
/// installs itself through this hook; when no sink is installed ScopedSpan
/// costs one relaxed atomic load.
using SpanSinkFn = void (*)(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns);

namespace detail {
inline std::atomic<SpanSinkFn>& span_sink_slot() {
  static std::atomic<SpanSinkFn> sink{nullptr};
  return sink;
}
}  // namespace detail

inline void set_span_sink(SpanSinkFn sink) {
  detail::span_sink_slot().store(sink, std::memory_order_release);
}

/// RAII phase timer: records [construction, destruction) to the installed
/// span sink. `name` must outlive the span (string literals in practice).
/// Safe on any thread; benches use it to bracket build/reorder/serve/repair
/// phases for the `[obs]` footer and `--trace` export.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : name_(name) {
    if (detail::span_sink_slot().load(std::memory_order_acquire) != nullptr) {
      begin_ns_ = monotonic_ns();
      armed_ = true;
    }
  }

  ~ScopedSpan() {
    if (!armed_) return;
    if (const SpanSinkFn sink = detail::span_sink_slot().load(std::memory_order_acquire)) {
      sink(name_, begin_ns_, monotonic_ns());
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t begin_ns_ = 0;
  bool armed_ = false;
};

}  // namespace sens
