// Minimal command-line option parser used by the bench/example binaries.
//
// Accepts `--name=value`, `--name value` and bare `--flag` forms. Unknown
// options are collected so binaries can report typos instead of silently
// ignoring them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sens {

class Cli {
 public:
  Cli(int argc, char** argv);

  /// True if `--name` was passed (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of `--name`, or `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] double get(const std::string& name, double fallback) const;
  [[nodiscard]] long get(const std::string& name, long fallback) const;
  [[nodiscard]] int get(const std::string& name, int fallback) const;
  [[nodiscard]] unsigned long long get(const std::string& name, unsigned long long fallback) const;

  /// Positional (non `--`) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

  /// Options that were parsed, for echoing a run's configuration.
  [[nodiscard]] const std::map<std::string, std::string>& options() const { return options_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace sens
