#include "sens/support/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace sens {

namespace {
std::atomic<unsigned> g_thread_override{0};
}  // namespace

unsigned default_thread_count() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void set_thread_count(unsigned n) { g_thread_override.store(n); }

unsigned thread_count() {
  unsigned n = g_thread_override.load();
  return n == 0 ? default_thread_count() : n;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(thread_count(), n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;

  auto run = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        next.store(n, std::memory_order_relaxed);  // drain remaining work
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (unsigned t = 1; t < workers; ++t) threads.emplace_back(run);
  run();
  for (auto& th : threads) th.join();
  if (error) std::rethrow_exception(error);
}

double parallel_sum(std::size_t n, const std::function<double(std::size_t)>& task) {
  std::vector<double> parts(n, 0.0);
  parallel_for(n, [&](std::size_t i) { parts[i] = task(i); });
  double total = 0.0;
  for (double v : parts) total += v;  // fixed order => deterministic rounding
  return total;
}

}  // namespace sens
