#include "sens/support/cli.hpp"

#include <cstdlib>

namespace sens {

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      auto eq = body.find('=');
      if (eq != std::string::npos) {
        options_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[body] = argv[++i];
      } else {
        options_[body] = "";
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Cli::has(const std::string& name) const { return options_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

double Cli::get(const std::string& name, double fallback) const {
  auto it = options_.find(name);
  return (it == options_.end() || it->second.empty()) ? fallback : std::strtod(it->second.c_str(), nullptr);
}

long Cli::get(const std::string& name, long fallback) const {
  auto it = options_.find(name);
  return (it == options_.end() || it->second.empty()) ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
}

int Cli::get(const std::string& name, int fallback) const {
  return static_cast<int>(get(name, static_cast<long>(fallback)));
}

unsigned long long Cli::get(const std::string& name, unsigned long long fallback) const {
  auto it = options_.find(name);
  return (it == options_.end() || it->second.empty()) ? fallback
                                                      : std::strtoull(it->second.c_str(), nullptr, 10);
}

}  // namespace sens
