// A transient free-list of scratch objects for chunk-parallel batch calls.
//
// The batched engines (dijkstra_many, bfs_many, the serve-layer QueryEngine)
// want one warm scratch per *participant* of a parallel call: a scratch per
// chunk would reintroduce the per-source O(n) allocation the versioned
// scratches exist to remove (a chunk frequently holds a single source), and
// the `thread_local` per-worker scratch the tree used before PR 6 retained
// one allocation sized to the last graph for the lifetime of every worker
// thread (the PR-4 flagged risk). A ScratchPool is the middle ground: it
// lives on the caller's stack for the duration of one batched call, chunk
// bodies lease a scratch (LIFO, so a worker that processes consecutive
// chunks gets its warm scratch back), and every allocation dies with the
// pool when the call returns. The lock is taken once per chunk — noise next
// to the traversal work a chunk performs.
//
// Determinism is unaffected: which scratch a chunk happens to lease never
// influences results, because scratch contents are opaque working memory and
// every output slot depends only on (inputs, task index) — the §2.4/§2.6
// contract (DESIGN.md).
#pragma once

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace sens {

template <typename T>
class ScratchPool {
 public:
  /// RAII lease: returns the scratch to the pool on destruction. The pool
  /// must outlive every lease (the intended shape: pool on the stack of the
  /// batched call, leases inside the parallel chunk bodies it joins).
  class Lease {
   public:
    Lease(ScratchPool* pool, std::unique_ptr<T> scratch)
        : pool_(pool), scratch_(std::move(scratch)) {}
    ~Lease() {
      if (scratch_) pool_->release(std::move(scratch_));
    }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), scratch_(std::move(other.scratch_)) {}
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    [[nodiscard]] T& operator*() const { return *scratch_; }
    [[nodiscard]] T* operator->() const { return scratch_.get(); }

   private:
    ScratchPool* pool_;
    std::unique_ptr<T> scratch_;
  };

  ScratchPool() = default;
  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  /// Lease a scratch: the most recently released one (warm), or a fresh
  /// default-constructed one when all are out on loan.
  [[nodiscard]] Lease acquire() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<T> scratch = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(scratch));
      }
    }
    return Lease(this, std::make_unique<T>());
  }

 private:
  void release(std::unique_ptr<T> scratch) {
    const std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(scratch));
  }

  std::mutex mutex_;
  std::vector<std::unique_ptr<T>> free_;
};

}  // namespace sens
