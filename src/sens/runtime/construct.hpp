// Distributed execution of the network-formation algorithm (Figure 7).
//
// Every node knows only its own coordinates (the paper's GPS assumption)
// and can exchange messages with its base-graph neighbors. The protocol
// runs in four phases, each driven to quiescence on the event simulator
// (a synchronous-rounds idealization of the timeout a deployment would use):
//
//   1. ELECT    — flood-min leader election per (tile, region): members
//                 broadcast the smallest id heard so far, restricted to
//                 region members (Singh-style election on the region).
//   2. LEADER   — final leaders announce themselves; in the NN construction
//                 the E relays forward the announcements of their C relays
//                 toward the tile center (C disks are 4a from the rep and
//                 not necessarily its direct neighbors).
//   3. CONNECT  — the representative locally determines tile goodness (all
//                 regions announced a leader; property P4) and connects the
//                 relay chains: rep -> relay (UDG) or rep -> E -> C (NN).
//   4. XHELLO / XACK — boundary relays of connected (= good) tiles shake
//                 hands with their counterparts across the tile border.
//
// Every hop is a real message through sens/runtime/radio.hpp, so message
// and energy budgets are measured, and a handshake silently fails when the
// base graph lacks the needed link — exactly mirroring `edges_missing` of
// the centralized builder. The integration tests assert that, for specs
// with the worst-case guarantee (UdgTileSpec::strict()), the protocol
// reproduces the centralized overlay bit for bit.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "sens/geograph/geo_graph.hpp"
#include "sens/tiles/classify.hpp"
#include "sens/tiles/nn_tile.hpp"
#include "sens/tiles/tiling.hpp"
#include "sens/tiles/udg_tile.hpp"

namespace sens {

struct ConstructOutcome {
  /// Tile goodness as decided by the representatives (P4, local rule).
  std::vector<std::uint8_t> tile_good;
  /// Elected leader (base node id) per tile and slot; kNoNode when absent.
  /// Slot layout: 0 = rep; 1..4 = boundary relay toward dir (UDG relay /
  /// NN C relay); 5..8 = NN E relay toward dir.
  std::vector<std::array<std::uint32_t, 9>> leaders;
  /// Overlay edges as base-node id pairs (u < v, sorted, deduplicated).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;

  std::size_t election_messages = 0;
  std::size_t control_messages = 0;  ///< LEADER/FORWARD/CONNECT/XHELLO/XACK
  std::size_t failed_connects = 0;   ///< required link absent from base graph
  std::size_t events = 0;            ///< simulator events processed
  double energy = 0.0;               ///< total transmit energy (beta = 2)

  [[nodiscard]] std::size_t total_messages() const {
    return election_messages + control_messages;
  }
  [[nodiscard]] std::size_t good_count() const;
};

/// Run Figure 7 on a unit-disk network. `udg` must be the UDG over the
/// sampled points; tiles outside `window` are ignored.
[[nodiscard]] ConstructOutcome run_udg_construction(const GeoGraph& udg, const UdgTileSpec& spec,
                                                    TileWindow window);

/// Run the NN-SENS variant on a k-NN network.
[[nodiscard]] ConstructOutcome run_nn_construction(const GeoGraph& knn, const NnTileSpec& spec,
                                                   TileWindow window);

}  // namespace sens
