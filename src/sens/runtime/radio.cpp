#include "sens/runtime/radio.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sens {

Radio::Radio(const GeoGraph& net, Simulator& sim, double beta)
    : net_(&net), sim_(&sim), beta_(beta), energy_(net.size(), 0.0) {}

void Radio::unicast(Message msg) {
  if (!net_->graph.has_edge(msg.from, msg.to)) {
    throw std::logic_error("Radio::unicast: not a link of the base graph");
  }
  ++messages_;
  energy_[msg.from] += std::pow(net_->edge_length(msg.from, msg.to), beta_);
  sim_->schedule(kLatency, [this, msg] {
    if (receiver_) receiver_(msg);
  });
}

void Radio::broadcast(Message msg) {
  const auto neighbors = net_->graph.neighbors(msg.from);
  if (neighbors.empty()) return;
  ++messages_;
  double range = 0.0;
  for (const std::uint32_t v : neighbors)
    range = std::max(range, net_->edge_length(msg.from, v));
  energy_[msg.from] += std::pow(range, beta_);
  for (const std::uint32_t v : neighbors) {
    Message copy = msg;
    copy.to = v;
    sim_->schedule(kLatency, [this, copy] {
      if (receiver_) receiver_(copy);
    });
  }
}

double Radio::total_energy() const {
  return std::accumulate(energy_.begin(), energy_.end(), 0.0);
}

}  // namespace sens
