#include "sens/runtime/sim.hpp"

#include <stdexcept>
#include <utility>

namespace sens {

void Simulator::schedule(double delay, Action action) {
  if (delay < 0.0) throw std::invalid_argument("Simulator: negative delay");
  queue_.push(Event{now_ + delay, seq_++, std::move(action)});
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (!queue_.empty() && fired < max_events) {
    // priority_queue::top is const; the action is moved out via const_cast
    // before pop, which is safe because the element is removed immediately.
    auto& top = const_cast<Event&>(queue_.top());
    now_ = top.time;
    Action action = std::move(top.action);
    queue_.pop();
    action();
    ++fired;
  }
  return fired;
}

}  // namespace sens
