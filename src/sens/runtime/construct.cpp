#include "sens/runtime/construct.hpp"

#include <algorithm>
#include <unordered_map>

#include "sens/runtime/radio.hpp"
#include "sens/runtime/sim.hpp"
#include "sens/support/parallel.hpp"

namespace sens {

namespace {

enum MsgKind : std::uint32_t {
  kElect = 1,    // a = tile, b = slot, c = best id seen
  kLeader = 2,   // a = tile, b = slot, c = leader id
  kForward = 3,  // a = tile, b = slot, c = leader id (E relay -> rep, NN only)
  kConnect = 4,  // a = tile, b = slot of the receiver, c = dir
  kXHello = 5,   // a = sender's tile, b = sender's outgoing direction
  kXAck = 6,     // a = sender's tile, b = sender's outgoing direction
  kPresent = 7,  // a = tile (NN occupancy counting)
};

constexpr std::uint64_t role_key(std::int64_t tile, std::int64_t slot) {
  return static_cast<std::uint64_t>(tile) * 16 + static_cast<std::uint64_t>(slot);
}

/// Per-node protocol state.
struct NodeState {
  std::uint32_t tile = kNoNode;                       // window tile index (or kNoNode)
  std::vector<std::uint8_t> slots;                    // region slots held in `tile`
  std::unordered_map<std::uint64_t, std::uint32_t> best;  // election best per role
  std::array<std::uint32_t, 9> heard{};               // leader per slot of own tile
  std::uint32_t present_heard = 0;                    // same-tile PRESENT count
  std::uint8_t armed_dirs = 0;                        // boundary relay: bitmask of directions
};

class ConstructEngine {
 public:
  ConstructEngine(const GeoGraph& net, TileWindow window, bool nn_mode,
                  std::size_t required_slots, std::size_t occupancy_cap)
      : net_(&net),
        window_(window),
        nn_mode_(nn_mode),
        required_slots_(required_slots),
        occupancy_cap_(occupancy_cap),
        radio_(net, sim_) {
    radio_.set_receiver([this](const Message& m) { on_receive(m); });
  }

  void set_roles(const std::vector<std::pair<std::uint32_t, unsigned>>& tile_and_mask) {
    state_.assign(net_->size(), NodeState{});
    for (std::uint32_t v = 0; v < net_->size(); ++v) {
      auto [tile, mask] = tile_and_mask[v];
      NodeState& st = state_[v];
      st.tile = tile;
      st.heard.fill(kNoNode);
      if (tile == kNoNode) continue;
      for (std::uint8_t slot = 0; slot < 9; ++slot) {
        if (mask & (1u << slot)) {
          st.slots.push_back(slot);
          st.best[role_key(tile, slot)] = v;
        }
      }
    }
  }

  ConstructOutcome run() {
    ConstructOutcome result;
    outcome_ = &result;
    result.leaders.assign(window_.tile_count(),
                          {kNoNode, kNoNode, kNoNode, kNoNode, kNoNode, kNoNode, kNoNode, kNoNode,
                           kNoNode});
    result.tile_good.assign(window_.tile_count(), 0);

    // --- Phase 1: elections (and PRESENT counting for the NN cap) ---
    for (std::uint32_t v = 0; v < net_->size(); ++v) {
      const NodeState& st = state_[v];
      if (st.tile == kNoNode) continue;
      if (nn_mode_) radio_.broadcast({v, 0, kPresent, st.tile, 0, 0, 0});
      for (const std::uint8_t slot : st.slots) {
        radio_.broadcast({v, 0, kElect, st.tile, slot, v, 0});
      }
    }
    result.events += sim_.run();
    result.election_messages = radio_.messages_sent();

    // --- Phase 2: leaders announce; NN E relays forward C announcements ---
    for (std::uint32_t v = 0; v < net_->size(); ++v) {
      NodeState& st = state_[v];
      for (const std::uint8_t slot : st.slots) {
        if (st.best.at(role_key(st.tile, slot)) == v) {
          result.leaders[st.tile][slot] = v;
          st.heard[slot] = v;
          radio_.broadcast({v, 0, kLeader, st.tile, slot, v, 0});
        }
      }
    }
    result.events += sim_.run();

    // --- Phase 3: reps decide goodness locally (P4) and connect chains ---
    for (std::size_t tile = 0; tile < window_.tile_count(); ++tile) {
      const std::uint32_t rep = result.leaders[tile][0];
      if (rep == kNoNode) continue;
      NodeState& rs = state_[rep];
      bool good = true;
      for (std::size_t slot = 0; slot < required_slots_; ++slot) {
        if (rs.heard[slot] == kNoNode) good = false;
      }
      if (nn_mode_ && rs.present_heard + 1 > occupancy_cap_) good = false;
      if (!good) continue;
      result.tile_good[tile] = 1;
      for (std::uint8_t dir = 0; dir < 4; ++dir) {
        const auto first_slot =
            static_cast<std::uint8_t>(nn_mode_ ? dir + 5 : dir + 1);
        send_connect(rep, static_cast<std::uint32_t>(tile), first_slot, dir,
                     rs.heard[first_slot]);
      }
    }
    result.events += sim_.run();
    // XHELLO/XACK handshakes complete inside the same drain; one more drain
    // catches replies scheduled by the last deliveries.
    result.events += sim_.run();

    result.control_messages = radio_.messages_sent() - result.election_messages;
    result.energy = radio_.total_energy();
    std::sort(result.edges.begin(), result.edges.end());
    result.edges.erase(std::unique(result.edges.begin(), result.edges.end()),
                       result.edges.end());
    outcome_ = nullptr;
    return result;
  }

 private:
  void record_edge(std::uint32_t a, std::uint32_t b) {
    if (a == b) return;
    if (a > b) std::swap(a, b);
    outcome_->edges.emplace_back(a, b);
  }

  /// Issue a CONNECT from `from` to leader `target` for (tile, slot, dir);
  /// handles the same-node shortcut and counts unreachable targets.
  void send_connect(std::uint32_t from, std::uint32_t tile, std::uint8_t slot, std::uint8_t dir,
                    std::uint32_t target) {
    if (target == kNoNode) return;
    if (target == from) {
      on_connect(target, tile, slot, dir);
      return;
    }
    if (!net_->graph.has_edge(from, target)) {
      ++outcome_->failed_connects;
      return;
    }
    radio_.unicast({from, target, kConnect, tile, slot, dir, 0});
    record_edge(from, target);
  }

  /// CONNECT arrived at `v` for (tile, slot): continue the chain (NN E
  /// relay) or arm the boundary handshake (UDG relay / NN C relay). A node
  /// can relay for two adjacent directions (overlapping lenses), so arming
  /// is tracked per direction.
  void on_connect(std::uint32_t v, std::uint32_t tile, std::uint8_t slot, std::uint8_t dir) {
    NodeState& st = state_[v];
    if (nn_mode_ && slot >= 5) {
      send_connect(v, tile, static_cast<std::uint8_t>(dir + 1), dir, st.heard[dir + 1]);
      return;
    }
    if (st.armed_dirs & (1u << dir)) return;  // duplicate CONNECT
    st.armed_dirs = static_cast<std::uint8_t>(st.armed_dirs | (1u << dir));
    radio_.broadcast({v, 0, kXHello, tile, dir, 0, 0});
  }

  /// True when tile_b is tile_a's lattice neighbor in direction dir_a and
  /// dir_b points back.
  [[nodiscard]] bool facing(std::uint32_t tile_a, std::uint8_t dir_a, std::uint32_t tile_b,
                            std::uint8_t dir_b) const {
    if (dir_b != static_cast<std::uint8_t>(opposite_dir(dir_a))) return false;
    const auto w = static_cast<std::int64_t>(window_.width);
    const std::int64_t ax = tile_a % w;
    const std::int64_t ay = tile_a / w;
    const std::int64_t bx = tile_b % w;
    const std::int64_t by = tile_b / w;
    const std::int64_t dx = static_cast<std::int64_t>(kDirVec[dir_a].x);
    const std::int64_t dy = static_cast<std::int64_t>(kDirVec[dir_a].y);
    return bx == ax + dx && by == ay + dy;
  }

  void on_receive(const Message& m) {
    NodeState& st = state_[m.to];
    switch (m.kind) {
      case kPresent: {
        if (st.tile != kNoNode && st.tile == static_cast<std::uint32_t>(m.a)) ++st.present_heard;
        return;
      }
      case kElect: {
        const auto it = st.best.find(role_key(m.a, m.b));
        if (it == st.best.end()) return;  // not a member of this region
        if (static_cast<std::uint32_t>(m.c) < it->second) {
          it->second = static_cast<std::uint32_t>(m.c);
          radio_.broadcast({m.to, 0, kElect, m.a, m.b, m.c, 0});
        }
        return;
      }
      case kLeader:
      case kForward: {
        if (st.tile != static_cast<std::uint32_t>(m.a)) return;
        const auto slot = static_cast<std::size_t>(m.b);
        if (st.heard[slot] != kNoNode) return;
        st.heard[slot] = static_cast<std::uint32_t>(m.c);
        if (nn_mode_ && m.kind == kLeader && slot >= 1 && slot <= 4) {
          // An E relay of the same direction forwards the C announcement
          // toward the representative (C disks are out of the rep's reach).
          for (const std::uint8_t role_slot : st.slots) {
            if (role_slot == slot + 4) {
              radio_.broadcast({m.to, 0, kForward, m.a, m.b, m.c, 0});
            }
          }
        }
        return;
      }
      case kConnect: {
        on_connect(m.to, static_cast<std::uint32_t>(m.a), static_cast<std::uint8_t>(m.b),
                   static_cast<std::uint8_t>(m.c));
        return;
      }
      case kXHello: {
        // Both endpoints broadcast XHELLO on arming, so whichever arms last
        // finds the other ready; no pending queue is needed.
        if (st.armed_dirs == 0 || st.tile == kNoNode) return;
        const auto want = static_cast<std::uint8_t>(opposite_dir(static_cast<int>(m.b)));
        if (!(st.armed_dirs & (1u << want))) return;
        if (!facing(static_cast<std::uint32_t>(m.a), static_cast<std::uint8_t>(m.b), st.tile,
                    want))
          return;
        record_edge(m.to, m.from);
        radio_.unicast({m.to, m.from, kXAck, st.tile, want, 0, 0});
        return;
      }
      case kXAck: {
        record_edge(m.to, m.from);
        return;
      }
      default:
        return;
    }
  }

  const GeoGraph* net_;
  TileWindow window_;
  bool nn_mode_;
  std::size_t required_slots_;
  std::size_t occupancy_cap_;
  Simulator sim_;
  Radio radio_;
  std::vector<NodeState> state_;
  ConstructOutcome* outcome_ = nullptr;
};

}  // namespace

std::size_t ConstructOutcome::good_count() const {
  return static_cast<std::size_t>(
      std::count(tile_good.begin(), tile_good.end(), std::uint8_t{1}));
}

ConstructOutcome run_udg_construction(const GeoGraph& udg, const UdgTileSpec& spec,
                                      TileWindow window) {
  ConstructEngine engine(udg, window, /*nn_mode=*/false, /*required_slots=*/5,
                         /*occupancy_cap=*/0);
  const Tiling tiling(spec.side);
  // Role assignment (tile + region mask per node) is a pure point-in-region
  // test per vertex — batched over the parallel layer; the protocol itself
  // stays sequential (it is an event simulation).
  const auto roles = parallel_map<std::pair<std::uint32_t, unsigned>>(
      udg.size(), [&](std::size_t v) -> std::pair<std::uint32_t, unsigned> {
        const TileCoord t = tiling.tile_of(udg.points[v]);
        if (!window.contains(t)) return {kNoNode, 0u};
        const unsigned mask = udg_region_mask(spec, tiling.local(udg.points[v], t));
        return {static_cast<std::uint32_t>(window.index(t)), mask};
      });
  engine.set_roles(roles);
  return engine.run();
}

ConstructOutcome run_nn_construction(const GeoGraph& knn, const NnTileSpec& spec,
                                     TileWindow window) {
  ConstructEngine engine(knn, window, /*nn_mode=*/true, /*required_slots=*/9,
                         spec.max_occupancy());
  const Tiling tiling(spec.side());
  const auto roles = parallel_map<std::pair<std::uint32_t, unsigned>>(
      knn.size(), [&](std::size_t v) -> std::pair<std::uint32_t, unsigned> {
        const TileCoord t = tiling.tile_of(knn.points[v]);
        if (!window.contains(t)) return {kNoNode, 0u};
        const unsigned mask = spec.region_mask(tiling.local(knn.points[v], t));
        return {static_cast<std::uint32_t>(window.index(t)), mask};
      });
  engine.set_roles(roles);
  return engine.run();
}

}  // namespace sens
