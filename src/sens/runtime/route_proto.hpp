// Packet routing on the SENS overlay through the event-driven runtime
// (Figure 9 made concrete).
//
// Route *decisions* come from sens/core/sens_router.hpp — the faithful
// implementation of the Angel et al. algorithm including its probe
// accounting. This layer executes a decided route as real traffic on the
// overlay radio: one DATA unicast per overlay edge of the node path, plus a
// PROBE/PROBE_ACK message pair per mesh-router openness query (the "ask the
// relevant relay whether it has a neighbour in the target tile" exchange of
// Section 4.2), so message counts and per-node energy reflect what a
// deployment would pay end to end.
#pragma once

#include <cstdint>

#include "sens/core/overlay.hpp"
#include "sens/core/sens_router.hpp"
#include "sens/runtime/radio.hpp"
#include "sens/runtime/sim.hpp"

namespace sens {

struct RouteTrafficReport {
  bool success = false;
  std::size_t data_messages = 0;
  std::size_t probe_messages = 0;
  std::size_t total_messages = 0;
  double energy = 0.0;        ///< transmit energy, beta from the radio
  double delivery_time = 0.0; ///< simulated time until the packet arrives
  std::size_t node_hops = 0;
  std::size_t tile_hops = 0;
  std::size_t probes = 0;     ///< mesh-router openness queries
};

class RoutingProtocol {
 public:
  /// `overlay` must outlive the protocol. beta is the radio power exponent.
  explicit RoutingProtocol(const Overlay& overlay, double beta = 2.0);

  /// Route one packet between the representatives of two good tiles and
  /// account every message it generates.
  [[nodiscard]] RouteTrafficReport send_packet(Site src, Site dst);

  /// Cumulative per-node energy across all packets sent so far.
  [[nodiscard]] double node_energy(std::uint32_t overlay_node) const {
    return radio_.node_energy(overlay_node);
  }
  [[nodiscard]] double total_energy() const { return radio_.total_energy(); }
  [[nodiscard]] std::size_t messages_sent() const { return radio_.messages_sent(); }

 private:
  const Overlay* overlay_;
  SensRouter router_;
  Simulator sim_;
  Radio radio_;
};

}  // namespace sens
