// Minimal discrete-event simulator for the distributed protocols of
// Section 4. Events are (time, sequence) ordered closures; the network
// layer (radio.hpp) schedules message deliveries through it. Determinism:
// ties in time break by insertion sequence, so a run is a pure function of
// its inputs.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace sens {

class Simulator {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` to run `delay` time units from now (delay >= 0).
  void schedule(double delay, Action action);

  /// Run until the event queue drains (or `max_events` fires, a guard
  /// against non-quiescent protocols). Returns the number of events run.
  std::size_t run(std::size_t max_events = 100'000'000);

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace sens
