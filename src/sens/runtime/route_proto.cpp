#include "sens/runtime/route_proto.hpp"

namespace sens {

namespace {
enum MsgKind : std::uint32_t {
  kData = 1,
  kProbe = 2,
  kProbeAck = 3,
};
}  // namespace

RoutingProtocol::RoutingProtocol(const Overlay& overlay, double beta)
    : overlay_(&overlay), router_(overlay), sim_(), radio_(overlay.geo, sim_, beta) {
  radio_.set_receiver([](const Message&) { /* deliveries are fire-and-forget */ });
}

RouteTrafficReport RoutingProtocol::send_packet(Site src, Site dst) {
  RouteTrafficReport report;
  const std::size_t messages_before = radio_.messages_sent();
  const double energy_before = radio_.total_energy();

  const SensRoute route = router_.route(src, dst);
  report.probes = route.probes;
  report.tile_hops = route.tile_hops;
  if (!route.success) return report;
  report.node_hops = route.node_hops();

  // A relay chain can be unrealizable when the tile spec lacks the
  // worst-case guarantee (paper preset, DESIGN.md §1.1): the packet is then
  // undeliverable over the radio and the route fails here rather than
  // pretending.
  for (std::size_t i = 1; i < route.node_path.size(); ++i) {
    if (!overlay_->geo.graph.has_edge(route.node_path[i - 1], route.node_path[i])) return report;
  }

  // Openness queries: the packet holder asks its boundary relay, which
  // answers after its cross-tile handshake state — one request + one reply
  // per probe, charged on the current tile's relay pair. We bill them as a
  // pair of messages at nominal relay range (the overlay edge adjacent to
  // the probing hop when available, else the first overlay edge).
  for (std::size_t p = 0; p < route.probes; ++p) {
    const std::size_t i = std::min(p, route.node_path.size() >= 2
                                          ? route.node_path.size() - 2
                                          : std::size_t{0});
    if (route.node_path.size() >= 2) {
      radio_.unicast({route.node_path[i], route.node_path[i + 1], kProbe, 0, 0, 0, 0});
      radio_.unicast({route.node_path[i + 1], route.node_path[i], kProbeAck, 0, 0, 0, 0});
      report.probe_messages += 2;
    }
  }

  // The data packet itself.
  for (std::size_t i = 1; i < route.node_path.size(); ++i) {
    radio_.unicast({route.node_path[i - 1], route.node_path[i], kData,
                    static_cast<std::int64_t>(i), 0, 0, 0});
    ++report.data_messages;
  }
  sim_.run();

  report.success = true;
  report.total_messages = radio_.messages_sent() - messages_before;
  report.energy = radio_.total_energy() - energy_before;
  report.delivery_time = static_cast<double>(report.node_hops);
  return report;
}

}  // namespace sens
