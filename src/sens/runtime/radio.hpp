// Radio abstraction: messages travel only along edges of the base
// connectivity graph (UDG disk or k-NN edge set), the exact assumption the
// paper's algorithms are defined under. Accounts messages and transmit
// energy per node with the power-law model E = d^beta (Li-Wan-Wang).
//
// Payloads are opaque to the radio; protocols register one receive callback.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sens/geograph/geo_graph.hpp"
#include "sens/runtime/sim.hpp"

namespace sens {

struct Message {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t kind = 0;  ///< protocol-defined tag
  std::int64_t a = 0;      ///< protocol-defined payload words
  std::int64_t b = 0;
  std::int64_t c = 0;
  std::int64_t d = 0;
};

class Radio {
 public:
  /// `net` must outlive the radio; beta is the path-loss exponent.
  Radio(const GeoGraph& net, Simulator& sim, double beta = 2.0);

  using Receiver = std::function<void(const Message&)>;
  void set_receiver(Receiver r) { receiver_ = std::move(r); }

  /// Unicast along a graph edge; throws if (from, to) is not an edge.
  void unicast(Message msg);

  /// Broadcast to every graph neighbor of `msg.from` (to field is filled in
  /// per recipient). Energy: one transmission at the farthest-neighbor
  /// range.
  void broadcast(Message msg);

  [[nodiscard]] std::size_t messages_sent() const { return messages_; }
  [[nodiscard]] double total_energy() const;
  [[nodiscard]] double node_energy(std::uint32_t v) const { return energy_[v]; }
  [[nodiscard]] const GeoGraph& network() const { return *net_; }

 private:
  const GeoGraph* net_;
  Simulator* sim_;
  double beta_;
  Receiver receiver_;
  std::vector<double> energy_;
  std::size_t messages_ = 0;

  static constexpr double kLatency = 1.0;
};

}  // namespace sens
