#include "sens/serve/epoch_engine.hpp"

#include <algorithm>

#include "sens/graph/dijkstra.hpp"
#include "sens/obs/obs.hpp"
#include "sens/rng/rng.hpp"
#include "sens/support/parallel.hpp"
#include "sens/support/scratch_pool.hpp"

namespace sens {

namespace {

/// Rng stream tag of pivot replacement draws (one tag per consumer).
constexpr std::uint64_t kDemoteStream = 0xe90cde40ULL;

}  // namespace

EpochQueryEngine::EpochQueryEngine(const DynamicHng& dyn, const EpochEngineParams& params)
    : dyn_(&dyn), params_(params) {
  generation_ = dyn.overlay_generation();
  graph_ = dyn.overlay();
  points_.assign(dyn.points().begin(), dyn.points().end());
  weights_ = graph_.arc_weights(
      [&](std::uint32_t u, std::uint32_t v) { return dist(points_[u], points_[v]); });
  const LandmarkOracle first = LandmarkOracle::build(
      graph_, weights_,
      LandmarkOracleParams{params_.num_landmarks, params_.seed, params_.selection});
  landmarks_.assign(first.landmarks().begin(), first.landmarks().end());
  oracle_ = first;
}

EpochRefreshStats EpochQueryEngine::refresh() {
  EpochRefreshStats stats;
  const std::uint64_t target = dyn_->overlay_generation();
  if (target == generation_) {
    stats.generation = generation_;
    return stats;
  }
  if (generation_ < dyn_->overlay_journal_begin()) {
    // The maintainer trimmed the journal past our epoch: the incremental
    // path is gone, take a fresh snapshot instead of failing.
    graph_ = dyn_->overlay();
    stats.resynced = true;
    SENS_OBS(obs::add(obs::Counter::kEpochResyncs, 1);)
  } else {
    // Replay the maintainer's own apply_edge_delta calls (§2.9): our
    // snapshot was bit-equal at generation_, so it is bit-equal at target.
    for (std::uint64_t g = generation_; g < target; ++g) {
      const OverlayDelta& d = dyn_->overlay_delta(g);
      graph_ = CsrGraph::apply_edge_delta(graph_, d.n_new, d.removed, d.added);
      ++stats.deltas_applied;
    }
    SENS_OBS(obs::add(obs::Counter::kEpochJournalReplays, stats.deltas_applied);)
  }
  generation_ = target;
  points_.assign(dyn_->points().begin(), dyn_->points().end());
  weights_ = graph_.arc_weights(
      [&](std::uint32_t u, std::uint32_t v) { return dist(points_[u], points_[v]); });

  // Pivot epoch: survivors keep their slots, dead pivots are demoted and
  // bounded seeded retries recruit distinct replacements. Exhausted
  // retries shrink the pivot set — more exact fallbacks, never a wrong
  // answer.
  const std::size_t n = graph_.num_vertices();
  const std::size_t before = landmarks_.size();
  std::erase_if(landmarks_, [n](std::uint32_t l) { return l >= n; });
  stats.landmarks_demoted = before - landmarks_.size();
  const std::size_t want = std::min(params_.num_landmarks, n);
  if (landmarks_.size() < want) {
    Rng rng = Rng::stream(params_.seed, kDemoteStream, generation_);
    const std::size_t missing = want - landmarks_.size();
    for (std::size_t k = 0; k < missing; ++k) {
      for (std::size_t attempt = 0; attempt < params_.demote_retries; ++attempt) {
        const auto pick = static_cast<std::uint32_t>(rng.uniform_index(n));
        if (std::find(landmarks_.begin(), landmarks_.end(), pick) == landmarks_.end()) {
          landmarks_.push_back(pick);
          ++stats.landmarks_recruited;
          break;
        }
      }
    }
  }
  oracle_ = LandmarkOracle::build_with(graph_, weights_, landmarks_);
  stats.generation = generation_;
  return stats;
}

EpochServeStats EpochQueryEngine::serve(std::span<const Query> queries, std::span<double> out,
                                        std::span<Verdict> verdicts) const {
  const std::size_t n = graph_.num_vertices();
  const ChunkLayout layout = chunk_layout(queries.size());
  std::vector<EpochServeStats> partials(layout.count);
  ScratchPool<DijkstraScratch> scratches;
  parallel_for_chunks(queries.size(), [&](std::size_t begin, std::size_t end) {
    const auto scratch = scratches.acquire();
    EpochServeStats& stats = partials[layout.index_of(begin)];
    for (std::size_t i = begin; i < end; ++i) {
      const Query q = queries[i];
      ++stats.queries;
      if (q.src >= n || q.dst >= n) {
        // Slot ids are generation-scoped (swap-remove recycles them); an
        // out-of-range id is answered as stale, never resolved to some
        // other node's distance.
        out[i] = kInfCost;
        verdicts[i] = Verdict::kStale;
        ++stats.stale;
        continue;
      }
      const LandmarkOracle::Bounds b = oracle_.bounds(q.src, q.dst);
      if (b.lower == b.upper) {
        // Exact bracket: s == t, or a landmark proves two components.
        out[i] = b.upper;
        if (b.upper >= kInfCost) {
          verdicts[i] = Verdict::kDisconnected;
          ++stats.disconnected;
        } else {
          verdicts[i] = Verdict::kExact;
          ++stats.exact;
        }
        continue;
      }
      if (b.lower > 0.0 && b.upper <= params_.max_stretch * b.lower) {
        out[i] = b.upper;
        verdicts[i] = Verdict::kCertified;
        ++stats.certified;
        continue;
      }
      const double exact = dijkstra_cost(graph_, q.src, q.dst, weights_, *scratch);
      out[i] = exact;
      if (exact >= kInfCost) {
        verdicts[i] = Verdict::kDisconnected;
        ++stats.disconnected;
      } else {
        verdicts[i] = Verdict::kExact;
        ++stats.exact;
      }
    }
  });
  EpochServeStats total;
  total.generation = generation_;
  for (const EpochServeStats& p : partials) {
    total.queries += p.queries;
    total.exact += p.exact;
    total.certified += p.certified;
    total.disconnected += p.disconnected;
    total.stale += p.stale;
  }
  return total;
}

}  // namespace sens
