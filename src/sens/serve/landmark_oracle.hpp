// Landmark (pivot) distance oracle over a weighted graph (DESIGN.md §2.6).
//
// Serving E17-style query loads with one Dijkstra per s-t pair wastes work:
// the sparse overlays are built once and queried millions of times. The
// classic landmark scheme (ALT / Goldberg-Harrelson) precomputes, for L
// pivot vertices, the exact distance from every pivot to every vertex; the
// triangle inequality then brackets any query distance d(s, t):
//
//   lower = max_l |d(l, s) - d(l, t)|      upper = min_l d(l, s) + d(l, t)
//
// Both bounds cost O(L) flat array reads per query. When the bracket is
// tight enough (upper / lower within the caller's stretch budget) the serve
// layer answers `upper` — a real path length through the best landmark —
// without touching the graph; otherwise it falls back to exact Dijkstra
// (sens/serve/query_engine.hpp owns that policy).
//
// Determinism: landmarks are drawn from the seeded rng stream, the label
// sweep is one batched `dijkstra_many` call (bit-identical at any thread
// count, §2.4), and `bounds` is a pure function of the labels — so every
// oracle answer is a pure function of (graph, weights, params, query).
//
// Disconnected pairs are detected exactly whenever some landmark reaches one
// endpoint but not the other (the pair then straddles two components):
// `bounds` returns {inf, inf} and the serve layer certifies the answer
// without a fallback Dijkstra. Landmarks reaching neither endpoint carry no
// information and are skipped.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sens/graph/csr.hpp"
#include "sens/graph/dijkstra.hpp"

namespace sens {

/// How the pivot set is chosen (both deterministic in (graph, seed)):
///  * kUniformRandom — first L entries of a seeded Fisher-Yates shuffle;
///  * kFarthestPoint — classic max-min sweep: a pinned seeded start, then
///    repeatedly the vertex maximizing the minimum weighted distance to
///    the chosen set (unreached vertices count as infinitely far, so every
///    component gets a pivot before any component gets two; ties break to
///    the lowest id). Serial by design — L Dijkstra sweeps at build time —
///    so the pick is identical at any --threads. Farthest pivots spread
///    the bracket's coverage and cut the exact-fallback rate (E17/E19).
enum class LandmarkSelection : std::uint8_t {
  kUniformRandom = 0,
  kFarthestPoint = 1,
};

struct LandmarkOracleParams {
  std::size_t num_landmarks = 16;  ///< clamped to the vertex count
  std::uint64_t seed = 0x5eed5eed5eedULL;
  LandmarkSelection selection = LandmarkSelection::kUniformRandom;
};

class LandmarkOracle {
 public:
  /// Lower/upper bracket of d(s, t). `lower == upper` means the answer is
  /// exact (s == t, or a disconnected pair: both bounds infinite).
  struct Bounds {
    double lower = 0.0;
    double upper = kInfCost;
  };

  LandmarkOracle() = default;

  /// Pick landmarks deterministically from the seeded rng stream and label
  /// every vertex with its exact distance to each landmark (one batched
  /// `dijkstra_many` sweep). `arc_weights` must be aligned with the arcs of
  /// `g` (CsrGraph::arc_weights).
  [[nodiscard]] static LandmarkOracle build(const CsrGraph& g,
                                            std::span<const double> arc_weights,
                                            const LandmarkOracleParams& params);

  /// Label a caller-chosen pivot set (ids must be distinct and < n). This
  /// is the epoch path (serve/epoch_engine.hpp): after churn the engine
  /// keeps its surviving pivots and only re-labels, instead of re-picking.
  [[nodiscard]] static LandmarkOracle build_with(const CsrGraph& g,
                                                 std::span<const double> arc_weights,
                                                 std::vector<std::uint32_t> landmarks);

  /// O(L) triangle-inequality bracket of d(s, t); see the header comment
  /// for the disconnection contract. s == t returns {0, 0}.
  [[nodiscard]] Bounds bounds(std::uint32_t s, std::uint32_t t) const {
    if (s == t) return {0.0, 0.0};
    Bounds b;
    const std::size_t num = landmarks_.size();
    const double* ls = labels_.data() + static_cast<std::size_t>(s) * num;
    const double* lt = labels_.data() + static_cast<std::size_t>(t) * num;
    for (std::size_t l = 0; l < num; ++l) {
      const double ds = ls[l];
      const double dt = lt[l];
      const bool s_reached = ds < kInfCost;
      if (s_reached != (dt < kInfCost)) return {kInfCost, kInfCost};  // two components
      if (!s_reached) continue;  // landmark sees neither endpoint
      const double diff = ds > dt ? ds - dt : dt - ds;
      if (diff > b.lower) b.lower = diff;
      const double sum = ds + dt;
      if (sum < b.upper) b.upper = sum;
    }
    return b;
  }

  [[nodiscard]] std::size_t num_landmarks() const { return landmarks_.size(); }
  [[nodiscard]] std::span<const std::uint32_t> landmarks() const { return landmarks_; }

  /// Exact distance from vertex v to landmark l (label array, node-major:
  /// all landmarks of a vertex are contiguous, so one query touches one
  /// cache neighborhood per endpoint).
  [[nodiscard]] double label(std::uint32_t v, std::size_t l) const {
    return labels_[static_cast<std::size_t>(v) * landmarks_.size() + l];
  }

 private:
  std::vector<std::uint32_t> landmarks_;  ///< pivot vertex ids, pick order
  std::vector<double> labels_;            ///< node-major: labels_[v * L + l]
};

}  // namespace sens
