// Generation-tagged serving epochs over a churning topology
// (DESIGN.md §2.9).
//
// The immutable `QueryEngine` (§2.6) assumes its graph never changes;
// under churn that meant every `DynamicHng` event invalidated outstanding
// engines wholesale (ROADMAP direction 3's robustness hole). An
// `EpochQueryEngine` instead *subscribes* to the maintainer's overlay
// delta journal (dynamic/dynamic_hng.hpp `OverlayDelta`): `refresh()`
// folds the journaled deltas into the engine's own CSR snapshot with the
// same `CsrGraph::apply_edge_delta` calls the maintainer made — so the
// epoch snapshot equals the maintainer's overlay bit for bit, without a
// rebuild — then re-labels the oracle. Between refreshes the engine is as
// immutable as a `QueryEngine`: serving is const, concurrent, and a pure
// function of (epoch snapshot, params, query).
//
// Landmark epochs: pivots survive refreshes. A pivot whose slot vanished
// (id >= the new vertex count) is demoted; a bounded number of seeded
// replacement draws recruit a substitute (stream (seed, kDemote,
// generation, k), so recruitment is replayable). If the retries exhaust,
// the engine simply serves with fewer pivots — a weaker bracket sends
// more queries to the exact-Dijkstra path, never to a wrong answer.
// Labels are re-swept every refresh (one batched `dijkstra_many`), so a
// certified answer always certifies against the *current* epoch — stale
// labels cannot certify by construction.
//
// Every answer carries a `Verdict`:
//   kExact        — exact distance (tight bracket or Dijkstra fallback);
//   kCertified    — oracle upper bound, provably <= max_stretch * d;
//   kDisconnected — no path in this epoch (reported, not guessed);
//   kStale        — the query names a slot that does not exist in this
//                   epoch (ids are generation-scoped under swap-remove;
//                   callers re-resolve and retry against a newer epoch).
// The zero-uncertified-wrong contract — every served distance is exact,
// certified-within-stretch, or explicitly kDisconnected/kStale — is
// asserted against exact Dijkstra on the E19 workload (bench_e19_faults)
// and in tests/test_fault.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sens/dynamic/dynamic_hng.hpp"
#include "sens/geometry/vec2.hpp"
#include "sens/graph/csr.hpp"
#include "sens/serve/query_engine.hpp"

namespace sens {

/// How one epoch answer was produced (header comment).
enum class Verdict : std::uint8_t {
  kExact = 0,
  kCertified = 1,
  kDisconnected = 2,
  kStale = 3,
};

/// Per-batch verdict accounting; sums over queries, deterministic at any
/// thread count.
struct EpochServeStats {
  std::uint64_t generation = 0;  ///< epoch that produced the answers
  std::size_t queries = 0;
  std::size_t exact = 0;
  std::size_t certified = 0;
  std::size_t disconnected = 0;
  std::size_t stale = 0;
};

struct EpochEngineParams {
  std::size_t num_landmarks = 16;
  double max_stretch = 1.1;  ///< certification budget (query_engine.hpp)
  std::uint64_t seed = 0x5eed5eed5eedULL;
  LandmarkSelection selection = LandmarkSelection::kUniformRandom;
  /// Seeded replacement draws per demoted/missing pivot before the engine
  /// accepts a smaller pivot set.
  std::size_t demote_retries = 8;
};

/// What one refresh() did.
struct EpochRefreshStats {
  std::uint64_t generation = 0;       ///< epoch after the refresh
  std::size_t deltas_applied = 0;     ///< journal entries folded in
  std::size_t landmarks_demoted = 0;  ///< pivots whose slot vanished
  std::size_t landmarks_recruited = 0;
  bool resynced = false;  ///< journal was trimmed past us: full snapshot copy
};

class EpochQueryEngine {
 public:
  /// Snapshot the maintainer's current overlay and build the first epoch.
  /// `dyn` must outlive the engine; mutations of `dyn` and calls into the
  /// engine must not overlap (refresh() is the only coupling point).
  explicit EpochQueryEngine(const DynamicHng& dyn, const EpochEngineParams& params = {});

  /// Catch up with the maintainer: fold journaled deltas (or resync past a
  /// trimmed journal), demote dead pivots, recruit replacements, re-sweep
  /// labels. No-op (beyond the generation read) when already current.
  EpochRefreshStats refresh();

  /// Answer a batch with explicit verdicts: distances into out[i],
  /// verdict into verdicts[i] (both sized like queries). kDisconnected and
  /// kStale answers report kInfCost. Chunk-parallel, const, safe to call
  /// concurrently with other serve() calls on this engine.
  EpochServeStats serve(std::span<const Query> queries, std::span<double> out,
                        std::span<Verdict> verdicts) const;

  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] const CsrGraph& graph() const { return graph_; }
  [[nodiscard]] std::span<const Vec2> points() const { return points_; }
  [[nodiscard]] std::span<const double> arc_weights() const { return weights_; }
  [[nodiscard]] const LandmarkOracle& oracle() const { return oracle_; }
  [[nodiscard]] double max_stretch() const { return params_.max_stretch; }

 private:
  const DynamicHng* dyn_;
  EpochEngineParams params_;
  std::uint64_t generation_ = 0;
  CsrGraph graph_;             ///< own snapshot of the overlay at generation_
  std::vector<Vec2> points_;   ///< own copy of the points at generation_
  std::vector<double> weights_;
  std::vector<std::uint32_t> landmarks_;  ///< surviving + recruited pivots
  LandmarkOracle oracle_;
};

}  // namespace sens
