#include "sens/serve/landmark_oracle.hpp"

#include <numeric>

#include "sens/rng/rng.hpp"
#include "sens/support/parallel.hpp"

namespace sens {

namespace {

/// Rng stream tag of the landmark pick (one tag per consumer, rng.hpp).
constexpr std::uint64_t kLandmarkStream = 0x1a2dULL;

/// First min(L, n) entries of a seeded Fisher-Yates shuffle of [0, n):
/// distinct by construction (no coupon-collector stall when L approaches
/// n), deterministic in (seed, n, L).
std::vector<std::uint32_t> pick_landmarks(std::size_t n, std::size_t want, std::uint64_t seed) {
  std::vector<std::uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  if (want > n) want = n;
  Rng rng = Rng::stream(seed, kLandmarkStream);
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.uniform_index(n - i));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(want);
  return ids;
}

}  // namespace

LandmarkOracle LandmarkOracle::build(const CsrGraph& g, std::span<const double> arc_weights,
                                     const LandmarkOracleParams& params) {
  LandmarkOracle oracle;
  const std::size_t n = g.num_vertices();
  if (n == 0) return oracle;
  oracle.landmarks_ = pick_landmarks(n, params.num_landmarks, params.seed);
  const std::size_t num = oracle.landmarks_.size();

  // One batched sweep: row l holds the distances from landmark l
  // (landmark-major). Queries read all landmarks of one vertex at once, so
  // transpose into node-major labels (each slot written exactly once —
  // bit-identical at any thread count).
  const std::vector<double> rows = dijkstra_many(g, oracle.landmarks_, arc_weights);
  oracle.labels_.resize(n * num);
  parallel_for(n, [&](std::size_t v) {
    for (std::size_t l = 0; l < num; ++l) {
      oracle.labels_[v * num + l] = rows[l * n + v];
    }
  });
  return oracle;
}

}  // namespace sens
