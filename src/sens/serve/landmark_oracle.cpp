#include "sens/serve/landmark_oracle.hpp"

#include <numeric>

#include "sens/rng/rng.hpp"
#include "sens/support/parallel.hpp"

namespace sens {

namespace {

/// Rng stream tag of the landmark pick (one tag per consumer, rng.hpp).
constexpr std::uint64_t kLandmarkStream = 0x1a2dULL;

/// First min(L, n) entries of a seeded Fisher-Yates shuffle of [0, n):
/// distinct by construction (no coupon-collector stall when L approaches
/// n), deterministic in (seed, n, L).
std::vector<std::uint32_t> pick_uniform(std::size_t n, std::size_t want, std::uint64_t seed) {
  std::vector<std::uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  if (want > n) want = n;
  Rng rng = Rng::stream(seed, kLandmarkStream);
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.uniform_index(n - i));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(want);
  return ids;
}

/// Max-min sweep (LandmarkSelection::kFarthestPoint): seeded start, then
/// argmax of the running min-distance-to-chosen array. Unreached reads as
/// farthest (kInfCost), so components are covered before any is doubled;
/// the < in the argmax scan pins ties to the lowest id. One serial
/// Dijkstra per pivot — thread-count plays no part in the pick.
std::vector<std::uint32_t> pick_farthest(const CsrGraph& g, std::span<const double> arc_weights,
                                         std::size_t want, std::uint64_t seed) {
  const std::size_t n = g.num_vertices();
  if (want > n) want = n;
  std::vector<std::uint32_t> picks;
  picks.reserve(want);
  if (want == 0) return picks;
  Rng rng = Rng::stream(seed, kLandmarkStream);
  auto cur = static_cast<std::uint32_t>(rng.uniform_index(n));
  std::vector<double> min_dist(n, kInfCost);
  std::vector<double> row(n);
  DijkstraScratch scratch;
  for (std::size_t l = 0; l < want; ++l) {
    picks.push_back(cur);
    if (l + 1 == want) break;
    dijkstra_costs_into(g, cur, arc_weights, scratch, row);
    std::uint32_t best = 0;
    double best_dist = -1.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (row[v] < min_dist[v]) min_dist[v] = row[v];
      if (min_dist[v] > best_dist) {
        best_dist = min_dist[v];
        best = static_cast<std::uint32_t>(v);
      }
    }
    cur = best;
  }
  return picks;
}

}  // namespace

LandmarkOracle LandmarkOracle::build(const CsrGraph& g, std::span<const double> arc_weights,
                                     const LandmarkOracleParams& params) {
  if (g.num_vertices() == 0) return {};
  std::vector<std::uint32_t> picks =
      params.selection == LandmarkSelection::kFarthestPoint
          ? pick_farthest(g, arc_weights, params.num_landmarks, params.seed)
          : pick_uniform(g.num_vertices(), params.num_landmarks, params.seed);
  return build_with(g, arc_weights, std::move(picks));
}

LandmarkOracle LandmarkOracle::build_with(const CsrGraph& g, std::span<const double> arc_weights,
                                          std::vector<std::uint32_t> landmarks) {
  LandmarkOracle oracle;
  const std::size_t n = g.num_vertices();
  if (n == 0) return oracle;
  oracle.landmarks_ = std::move(landmarks);
  const std::size_t num = oracle.landmarks_.size();

  // One batched sweep: row l holds the distances from landmark l
  // (landmark-major). Queries read all landmarks of one vertex at once, so
  // transpose into node-major labels (each slot written exactly once —
  // bit-identical at any thread count).
  const std::vector<double> rows = dijkstra_many(g, oracle.landmarks_, arc_weights);
  oracle.labels_.resize(n * num);
  parallel_for(n, [&](std::size_t v) {
    for (std::size_t l = 0; l < num; ++l) {
      oracle.labels_[v * num + l] = rows[l * n + v];
    }
  });
  return oracle;
}

}  // namespace sens
