// Routing as a service: concurrent batched s-t query engine (DESIGN.md §2.6).
//
// The experiments up to PR 5 pulled routes one call at a time inside each
// bench loop. This layer is the serving front end over the graph and router
// machinery: a `QueryEngine` is built once per overlay (graph + arc weights
// + landmark oracle) and then answers *batches* of distance and route
// queries into caller-owned buffers. It is immutable after construction —
// every method is const and allocates no shared mutable state — so one
// engine instance serves any number of concurrent caller threads, each
// submitting its own batches (the §2.6 serving contract). Working memory
// comes from per-call `ScratchPool` leases (batch paths) or a caller-owned
// `RouteScratch` (single-query paths); nothing survives the call.
//
// Two distance paths share one output contract:
//   * `exact_distances` — one early-exit Dijkstra per query, chunk-parallel
//     over the batch (the cold path, backed by the §2.4 batched engines);
//   * `estimate_distances` — O(L) landmark bounds per query; answers the
//     upper bound when the bracket certifies the stretch budget
//     (upper <= max_stretch * lower, or the bracket is exact: s == t and
//     disconnected pairs), and falls back to exact Dijkstra otherwise.
// Either way every answer is a pure function of (graph, weights, params,
// query) — bit-identical regardless of `--threads`, of how many caller
// threads share the engine, and of which path produced it being exact or
// certified (a certified answer is reported as such in `ServeStats`).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sens/core/sens_router.hpp"
#include "sens/graph/bfs.hpp"
#include "sens/graph/csr.hpp"
#include "sens/graph/dijkstra.hpp"
#include "sens/serve/landmark_oracle.hpp"

namespace sens {

/// One s-t query over the engine's graph.
struct Query {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
};

/// Per-batch accounting: how many answers each path produced. Counts are
/// sums over queries, so they are deterministic at any thread count.
struct ServeStats {
  std::size_t queries = 0;
  std::size_t certified = 0;     ///< answered from the oracle bracket alone
  std::size_t exact = 0;         ///< answered by an exact Dijkstra run
  std::size_t disconnected = 0;  ///< answers that came back kInfCost
                                 ///  (overlaps certified/exact: a verdict on
                                 ///  the answer, not a third path)

  ServeStats& operator+=(const ServeStats& o) {
    queries += o.queries;
    certified += o.certified;
    exact += o.exact;
    disconnected += o.disconnected;
    return *this;
  }
};

/// Caller-owned working memory for the single-query forms. Contents are
/// opaque and clobbered by every call; never share one scratch between
/// threads (one scratch per caller thread, §2.6).
struct RouteScratch {
  DijkstraScratch dijkstra;
  BfsScratch bfs;
  std::vector<std::uint32_t> path;
};

struct QueryEngineParams {
  std::size_t num_landmarks = 16;
  /// Certification budget of `estimate_distances`: answer the oracle upper
  /// bound only when upper <= max_stretch * lower (so the reported distance
  /// provably overshoots the true one by at most this factor).
  double max_stretch = 1.1;
  std::uint64_t seed = 0x5eed5eed5eedULL;
  /// Pivot-pick policy, passed through to the oracle
  /// (serve/landmark_oracle.hpp). Farthest-point costs L extra Dijkstra
  /// sweeps at build time and cuts the exact-fallback rate at serve time.
  LandmarkSelection selection = LandmarkSelection::kUniformRandom;
};

class QueryEngine {
 public:
  /// `g` must outlive the engine; `arc_weights` is consumed (aligned with
  /// the arcs of `g`, see CsrGraph::arc_weights). Builds the landmark
  /// oracle eagerly — construction is the only expensive step.
  QueryEngine(const CsrGraph& g, std::vector<double> arc_weights,
              const QueryEngineParams& params = {});

  // --- batched forms: chunk-parallel over the batch, results written to
  // caller-owned buffers, safe to call concurrently on one engine ---

  /// Exact weighted distance per query into out[i] (kInfCost when
  /// disconnected). out.size() must equal queries.size().
  void exact_distances(std::span<const Query> queries, std::span<double> out) const;

  /// Oracle-first distance per query into out[i]: certified upper bounds
  /// where the bracket allows, exact fallback otherwise (header comment).
  ServeStats estimate_distances(std::span<const Query> queries, std::span<double> out) const;

  /// Exact hop count per query into out[i] (kUnreachable when
  /// disconnected) — the BFS-backed cold path.
  void hop_distances(std::span<const Query> queries, std::span<std::uint32_t> out) const;

  /// Min-cost node paths for a batch, concatenated into caller-owned
  /// buffers: path i occupies nodes[offsets[i] .. offsets[i + 1]) (empty
  /// when disconnected; includes both endpoints otherwise). Both vectors
  /// are overwritten; offsets gets queries.size() + 1 entries.
  void routes(std::span<const Query> queries, std::vector<std::uint32_t>& offsets,
              std::vector<std::uint32_t>& nodes) const;

  // --- single-query forms: the caller brings the scratch (§2.6) ---

  [[nodiscard]] double exact_distance(Query q, RouteScratch& scratch) const {
    return dijkstra_cost(*g_, q.src, q.dst, weights_, scratch.dijkstra);
  }

  /// One oracle-first answer; increments the matching `stats` counters.
  [[nodiscard]] double estimate_distance(Query q, RouteScratch& scratch, ServeStats& stats) const;

  [[nodiscard]] const CsrGraph& graph() const { return *g_; }
  [[nodiscard]] std::span<const double> arc_weights() const { return weights_; }
  [[nodiscard]] const LandmarkOracle& oracle() const { return oracle_; }
  [[nodiscard]] double max_stretch() const { return max_stretch_; }

 private:
  const CsrGraph* g_;
  std::vector<double> weights_;
  LandmarkOracle oracle_;
  double max_stretch_;
};

/// Batched SENS tile routes on a shared router: one `SensRouter::route` per
/// pair, chunk-parallel with leased scratches. The router is immutable, so
/// any number of concurrent `route_batch` calls may share it; result i
/// depends only on (overlay, pairs[i]) and is bit-identical at any thread
/// count (§2.6).
[[nodiscard]] std::vector<SensRoute> route_batch(const SensRouter& router,
                                                 std::span<const std::pair<Site, Site>> pairs);

}  // namespace sens
