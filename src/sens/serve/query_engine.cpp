#include "sens/serve/query_engine.hpp"

#include <numeric>

#include "sens/obs/obs.hpp"
#include "sens/support/parallel.hpp"
#include "sens/support/scratch_pool.hpp"

namespace sens {

QueryEngine::QueryEngine(const CsrGraph& g, std::vector<double> arc_weights,
                         const QueryEngineParams& params)
    : g_(&g),
      weights_(std::move(arc_weights)),
      oracle_(LandmarkOracle::build(
          g, weights_,
          LandmarkOracleParams{params.num_landmarks, params.seed, params.selection})),
      max_stretch_(params.max_stretch) {}

void QueryEngine::exact_distances(std::span<const Query> queries, std::span<double> out) const {
  ScratchPool<DijkstraScratch> scratches;
  parallel_for_chunks(queries.size(), [&](std::size_t begin, std::size_t end) {
    const auto scratch = scratches.acquire();
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = dijkstra_cost(*g_, queries[i].src, queries[i].dst, weights_, *scratch);
    }
  });
}

double QueryEngine::estimate_distance(Query q, RouteScratch& scratch, ServeStats& stats) const {
  ++stats.queries;
  const LandmarkOracle::Bounds b = oracle_.bounds(q.src, q.dst);
  // The bracket certifies when it is exact (s == t, disconnected pairs:
  // lower == upper, infinities included) or tight enough for the stretch
  // budget. `lower > 0` guards the ratio test against a zero lower bound.
  double answer;
  if (b.lower == b.upper || (b.lower > 0.0 && b.upper <= max_stretch_ * b.lower)) {
    ++stats.certified;
    SENS_OBS(obs::add(obs::Counter::kOracleCertified, 1);)
    answer = b.upper;
  } else {
    ++stats.exact;
    SENS_OBS(obs::add(obs::Counter::kOracleFallback, 1);)
    answer = dijkstra_cost(*g_, q.src, q.dst, weights_, scratch.dijkstra);
  }
  if (answer >= kInfCost) {
    ++stats.disconnected;
    SENS_OBS(obs::add(obs::Counter::kOracleDisconnected, 1);)
  }
  return answer;
}

ServeStats QueryEngine::estimate_distances(std::span<const Query> queries,
                                           std::span<double> out) const {
  const ChunkLayout layout = chunk_layout(queries.size());
  std::vector<ServeStats> partials(layout.count);
  ScratchPool<RouteScratch> scratches;
  parallel_for_chunks(queries.size(), [&](std::size_t begin, std::size_t end) {
    const auto scratch = scratches.acquire();
    ServeStats& stats = partials[layout.index_of(begin)];
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = estimate_distance(queries[i], *scratch, stats);
    }
  });
  ServeStats total;
  for (const ServeStats& p : partials) total += p;  // chunk order (sums commute anyway)
  return total;
}

void QueryEngine::hop_distances(std::span<const Query> queries,
                                std::span<std::uint32_t> out) const {
  ScratchPool<BfsScratch> scratches;
  parallel_for_chunks(queries.size(), [&](std::size_t begin, std::size_t end) {
    const auto scratch = scratches.acquire();
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = bfs_distance(*g_, queries[i].src, queries[i].dst, *scratch);
    }
  });
}

void QueryEngine::routes(std::span<const Query> queries, std::vector<std::uint32_t>& offsets,
                         std::vector<std::uint32_t>& nodes) const {
  const std::size_t q = queries.size();
  // Per-chunk node buffers concatenated in chunk order equal one serial
  // left-to-right pass (§2.3): chunk c covers a contiguous query range, and
  // offsets come from per-query lengths, so the layout is caller-thread-
  // and worker-count-invariant.
  const ChunkLayout layout = chunk_layout(q);
  std::vector<std::vector<std::uint32_t>> chunk_nodes(layout.count);
  offsets.assign(q + 1, 0);
  ScratchPool<RouteScratch> scratches;
  parallel_for_chunks(q, [&](std::size_t begin, std::size_t end) {
    const auto scratch = scratches.acquire();
    std::vector<std::uint32_t>& sink = chunk_nodes[layout.index_of(begin)];
    for (std::size_t i = begin; i < end; ++i) {
      dijkstra_path_into(*g_, queries[i].src, queries[i].dst, weights_, scratch->dijkstra,
                         scratch->path);
      offsets[i + 1] = static_cast<std::uint32_t>(scratch->path.size());
      sink.insert(sink.end(), scratch->path.begin(), scratch->path.end());
    }
  });
  std::partial_sum(offsets.begin(), offsets.end(), offsets.begin());
  nodes.clear();
  nodes.reserve(offsets.back());
  for (const auto& c : chunk_nodes) nodes.insert(nodes.end(), c.begin(), c.end());
}

std::vector<SensRoute> route_batch(const SensRouter& router,
                                   std::span<const std::pair<Site, Site>> pairs) {
  std::vector<SensRoute> out(pairs.size());
  ScratchPool<SensRouteScratch> scratches;
  parallel_for_chunks(pairs.size(), [&](std::size_t begin, std::size_t end) {
    const auto scratch = scratches.acquire();
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = router.route(pairs[i].first, pairs[i].second, *scratch);
    }
  });
  return out;
}

}  // namespace sens
