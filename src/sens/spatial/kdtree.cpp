#include "sens/spatial/kdtree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sens {

KdTree::KdTree(std::span<const Vec2> points) : points_(points.begin(), points.end()) {
  order_.resize(points_.size());
  for (std::uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  if (!points_.empty()) {
    nodes_.reserve(2 * points_.size() / kLeafSize + 4);
    root_ = build(0, static_cast<std::uint32_t>(points_.size()), 0);
  }
  leaf_points_.resize(points_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) leaf_points_[i] = points_[order_[i]];
}

std::uint32_t KdTree::build(std::uint32_t begin, std::uint32_t end, int depth) {
  const std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  if (end - begin <= kLeafSize) {
    nodes_[id].begin = begin;
    nodes_[id].end = end;
    nodes_[id].leaf = true;
    return id;
  }
  const std::uint8_t axis = static_cast<std::uint8_t>(depth % 2);
  const std::uint32_t mid = begin + (end - begin) / 2;
  auto key = [&](std::uint32_t i) { return axis == 0 ? points_[i].x : points_[i].y; };
  std::nth_element(order_.begin() + begin, order_.begin() + mid, order_.begin() + end,
                   [&](std::uint32_t a, std::uint32_t b) { return key(a) < key(b); });
  const double split = key(order_[mid]);

  const std::uint32_t left = build(begin, mid, depth + 1);
  const std::uint32_t right = build(mid, end, depth + 1);
  nodes_[id].leaf = false;
  nodes_[id].axis = axis;
  nodes_[id].split = static_cast<float>(split);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

void KdTree::search(std::uint32_t node_id, Vec2 q, std::size_t k, std::uint32_t exclude,
                    bool use_heap, std::vector<QueryScratch::Candidate>& best, double mindist,
                    double* axis_dist) const {
  const Node& node = nodes_[node_id];
  if (node.leaf) {
    // Two passes: distances first (a tight, vectorizable loop over the
    // leaf-contiguous points), then the filtered candidate insertions.
    double d2s[kLeafSize];
    const std::uint32_t count = node.end - node.begin;
    const Vec2* pts = leaf_points_.data() + node.begin;
    for (std::uint32_t i = 0; i < count; ++i) d2s[i] = dist2(pts[i], q);
    double worst = best.size() < k ? std::numeric_limits<double>::infinity()
                                   : (use_heap ? best.front().d2 : best.back().d2);
    for (std::uint32_t i = 0; i < count; ++i) {
      // `>` not `>=`: a candidate tying the current worst can still win its
      // slot on the (distance, index) tie-break.
      if (d2s[i] > worst) continue;
      const std::uint32_t idx = order_[node.begin + i];
      if (idx == exclude) continue;
      const QueryScratch::Candidate cand{d2s[i], idx};
      if (use_heap) {
        if (best.size() < k) {
          best.push_back(cand);
          std::push_heap(best.begin(), best.end());
        } else if (cand < best.front()) {
          std::pop_heap(best.begin(), best.end());
          best.back() = cand;
          std::push_heap(best.begin(), best.end());
        }
        if (best.size() == k) worst = best.front().d2;
      } else {
        if (best.size() == k && !(cand < best.back())) continue;
        best.insert(std::upper_bound(best.begin(), best.end(), cand), cand);
        if (best.size() > k) best.pop_back();
        if (best.size() == k) worst = best.back().d2;
      }
    }
    return;
  }
  const std::uint8_t axis = node.axis;
  const double qv = axis == 0 ? q.x : q.y;
  const double delta = qv - static_cast<double>(node.split);
  const std::uint32_t near = delta <= 0.0 ? node.left : node.right;
  const std::uint32_t far = delta <= 0.0 ? node.right : node.left;
  search(near, q, k, exclude, use_heap, best, mindist, axis_dist);
  const double worst = best.size() < k ? std::numeric_limits<double>::infinity()
                                       : (use_heap ? best.front().d2 : best.back().d2);
  // Lower bound for the far subtree: the accumulated per-axis offsets of
  // every ancestor split crossed so far, with this axis's contribution
  // replaced by the current plane's offset. Visit when the bound could
  // still hide closer points or equal-distance ties (<=, so deterministic
  // tie-breaking by index sees all candidates at the cutoff distance).
  const double cut = delta * delta;
  const double far_min = mindist - axis_dist[axis] + cut;
  if (far_min <= worst) {
    const double saved = axis_dist[axis];
    axis_dist[axis] = cut;
    search(far, q, k, exclude, use_heap, best, far_min, axis_dist);
    axis_dist[axis] = saved;
  }
}

std::size_t KdTree::nearest_into(Vec2 q, std::size_t k, std::uint32_t exclude,
                                 QueryScratch& scratch, std::vector<std::uint32_t>& out) const {
  out.clear();
  if (points_.empty() || k == 0) return 0;
  auto& best = scratch.best;
  best.clear();
  const bool use_heap = k > kSortedInsertMaxK;
  best.reserve(std::min(k, points_.size()) + 1);
  double axis_dist[2] = {0.0, 0.0};
  search(root_, q, k, exclude, use_heap, best, 0.0, axis_dist);
  if (use_heap) std::sort(best.begin(), best.end());
  out.resize(best.size());
  for (std::size_t i = 0; i < best.size(); ++i) out[i] = best[i].idx;
  return out.size();
}

std::vector<std::uint32_t> KdTree::nearest(Vec2 q, std::size_t k, std::uint32_t exclude) const {
  QueryScratch scratch;
  std::vector<std::uint32_t> out;
  nearest_into(q, k, exclude, scratch, out);
  return out;
}

std::size_t KdTree::query_radius_into(Vec2 q, double radius, QueryScratch& scratch,
                                      std::vector<std::uint32_t>& out) const {
  out.clear();
  if (points_.empty()) return 0;
  const double r2 = radius * radius;
  auto& stack = scratch.stack;
  stack.clear();
  stack.push_back(root_);
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.leaf) {
      for (std::uint32_t i = node.begin; i < node.end; ++i) {
        if (dist2(leaf_points_[i], q) <= r2) out.push_back(order_[i]);
      }
      continue;
    }
    const double qv = node.axis == 0 ? q.x : q.y;
    const double delta = qv - static_cast<double>(node.split);
    if (delta <= radius) stack.push_back(node.left);
    if (-delta <= radius) stack.push_back(node.right);
  }
  std::sort(out.begin(), out.end());
  return out.size();
}

std::vector<std::uint32_t> KdTree::query_radius(Vec2 q, double radius) const {
  QueryScratch scratch;
  std::vector<std::uint32_t> out;
  query_radius_into(q, radius, scratch, out);
  return out;
}

}  // namespace sens
