#include "sens/spatial/kdtree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sens {

KdTree::KdTree(std::span<const Vec2> points) : points_(points.begin(), points.end()) {
  order_.resize(points_.size());
  for (std::uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  if (!points_.empty()) {
    nodes_.reserve(2 * points_.size() / kLeafSize + 4);
    root_ = build(0, static_cast<std::uint32_t>(points_.size()), 0);
  }
}

std::uint32_t KdTree::build(std::uint32_t begin, std::uint32_t end, int depth) {
  const std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  if (end - begin <= kLeafSize) {
    nodes_[id].begin = begin;
    nodes_[id].end = end;
    nodes_[id].leaf = true;
    return id;
  }
  const std::uint8_t axis = static_cast<std::uint8_t>(depth % 2);
  const std::uint32_t mid = begin + (end - begin) / 2;
  auto key = [&](std::uint32_t i) { return axis == 0 ? points_[i].x : points_[i].y; };
  std::nth_element(order_.begin() + begin, order_.begin() + mid, order_.begin() + end,
                   [&](std::uint32_t a, std::uint32_t b) { return key(a) < key(b); });
  const double split = key(order_[mid]);

  const std::uint32_t left = build(begin, mid, depth + 1);
  const std::uint32_t right = build(mid, end, depth + 1);
  nodes_[id].leaf = false;
  nodes_[id].axis = axis;
  nodes_[id].split = static_cast<float>(split);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

void KdTree::search(std::uint32_t node_id, Vec2 q, std::size_t k, std::uint32_t exclude,
                    std::vector<Candidate>& heap) const {
  const Node& node = nodes_[node_id];
  if (node.leaf) {
    for (std::uint32_t i = node.begin; i < node.end; ++i) {
      const std::uint32_t idx = order_[i];
      if (idx == exclude) continue;
      const Candidate cand{dist2(points_[idx], q), idx};
      if (heap.size() < k) {
        heap.push_back(cand);
        std::push_heap(heap.begin(), heap.end());
      } else if (cand < heap.front()) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = cand;
        std::push_heap(heap.begin(), heap.end());
      }
    }
    return;
  }
  const double qv = node.axis == 0 ? q.x : q.y;
  const double delta = qv - static_cast<double>(node.split);
  const std::uint32_t near = delta <= 0.0 ? node.left : node.right;
  const std::uint32_t far = delta <= 0.0 ? node.right : node.left;
  search(near, q, k, exclude, heap);
  const double worst =
      heap.size() < k ? std::numeric_limits<double>::infinity() : heap.front().d2;
  // Visit the far side when the splitting plane could hide closer points or
  // equal-distance ties (<=, so deterministic tie-breaking by index sees all
  // candidates at the cutoff distance).
  if (delta * delta <= worst) search(far, q, k, exclude, heap);
}

std::vector<std::uint32_t> KdTree::nearest(Vec2 q, std::size_t k, std::uint32_t exclude) const {
  std::vector<std::uint32_t> out;
  if (points_.empty() || k == 0) return out;
  std::vector<Candidate> heap;
  heap.reserve(k + 1);
  search(root_, q, k, exclude, heap);
  std::sort(heap.begin(), heap.end());
  out.reserve(heap.size());
  for (const auto& c : heap) out.push_back(c.idx);
  return out;
}

std::vector<std::uint32_t> KdTree::query_radius(Vec2 q, double radius) const {
  std::vector<std::uint32_t> out;
  if (points_.empty()) return out;
  const double r2 = radius * radius;
  std::vector<std::uint32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.leaf) {
      for (std::uint32_t i = node.begin; i < node.end; ++i) {
        const std::uint32_t idx = order_[i];
        if (dist2(points_[idx], q) <= r2) out.push_back(idx);
      }
      continue;
    }
    const double qv = node.axis == 0 ? q.x : q.y;
    const double delta = qv - static_cast<double>(node.split);
    if (delta <= radius) stack.push_back(node.left);
    if (-delta <= radius) stack.push_back(node.right);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sens
