#include "sens/spatial/grid_knn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "sens/obs/obs.hpp"

namespace sens {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

#if SENS_OBS_ENABLED
/// Stack-local work tally for one k-NN query, flushed to the obs registry
/// on scope exit. Per-query cell/candidate counts are pure functions of
/// (index contents, query), so registry totals are thread-invariant
/// (DESIGN.md §2.10).
struct ObsTally {
  std::uint64_t cells = 0;
  std::uint64_t candidates = 0;
  ~ObsTally() {
    obs::add(obs::Counter::kGridKnnQueries, 1);
    obs::add(obs::Counter::kGridKnnCellsScanned, cells);
    obs::add(obs::Counter::kGridKnnCandidates, candidates);
  }
};
#endif

/// Final prune + sort shared by collect_large's exits: keep the k best
/// under the strict (d2, idx) order, sorted.
void finish_large(std::size_t k, std::vector<GridKnn::QueryScratch::Candidate>& cands) {
  if (cands.size() > k) {
    std::nth_element(cands.begin(), cands.begin() + static_cast<std::ptrdiff_t>(k) - 1,
                     cands.end());
    cands.resize(k);
  }
  std::sort(cands.begin(), cands.end());
}

}  // namespace

GridKnn::GridKnn(std::span<const Vec2> points, std::size_t expected_k)
    : owned_points_(points.begin(), points.end()), points_(owned_points_) {
  std::vector<std::uint32_t> all(owned_points_.size());
  std::iota(all.begin(), all.end(), 0u);
  build(all, expected_k);
}

GridKnn::GridKnn(std::span<const Vec2> shared_points, std::span<const std::uint32_t> members,
                 std::size_t expected_k)
    : points_(shared_points) {
  build(members, expected_k);
}

/// Index the points named by `members` (ids into `points_`): grid geometry
/// tuned to the members' bounding box and density, bucket arrays over
/// member ids only. The search kernels never look at non-member points —
/// they only walk `order_`.
void GridKnn::build(std::span<const std::uint32_t> members, std::size_t expected_k) {
  // Ids are std::uint32_t with npos reserved as the tombstone marker, so the
  // shared store must stay strictly below npos (DESIGN.md §2.8).
  if (points_.size() >= npos) {
    throw std::overflow_error("GridKnn: point store exceeds the 32-bit id space");
  }
  offsets_.clear();
  order_.clear();
  spill_.clear();
  expected_k_ = expected_k;
  live_ = members.size();
  dead_ = 0;
  if (members.empty()) return;
  Vec2 hi = points_[members[0]];
  lo_ = points_[members[0]];
  for (const std::uint32_t m : members) {
    const Vec2 p = points_[m];
    lo_.x = std::min(lo_.x, p.x);
    lo_.y = std::min(lo_.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  const double w = std::max(hi.x - lo_.x, 1e-9);
  const double h = std::max(hi.y - lo_.y, 1e-9);
  const double density = static_cast<double>(members.size()) / (w * h);
  // Target ~k/4 (streaming) or ~k/16 (selection) points per cell, floored
  // so the grid never exceeds ~4n cells (degenerate aspect-ratio guard).
  const double per_cell =
      static_cast<double>(std::max<std::size_t>(expected_k, 1)) /
      (expected_k > kStreamingMaxK ? 16.0 : 4.0);
  cell_ = std::max(1e-9, std::sqrt(per_cell / density));
  nx_ = std::max(1L, static_cast<long>(std::ceil(w / cell_)));
  ny_ = std::max(1L, static_cast<long>(std::ceil(h / cell_)));
  // Cap the grid at ~4n cells. The per-axis ceil makes this a doubling loop
  // rather than a closed form: a degenerate aspect ratio (e.g. collinear
  // points) floors one axis at a single cell while the other explodes.
  const long max_cells = 4 * static_cast<long>(members.size()) + 8;
  while (nx_ * ny_ > max_cells) {
    cell_ *= 2.0;
    nx_ = std::max(1L, static_cast<long>(std::ceil(w / cell_)));
    ny_ = std::max(1L, static_cast<long>(std::ceil(h / cell_)));
  }

  const std::size_t cells = static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  std::vector<std::uint32_t> counts(cells, 0);
  for (const std::uint32_t m : members) ++counts[cell_index(points_[m])];
  offsets_.assign(cells + 1, 0);
  for (std::size_t c = 0; c < cells; ++c) offsets_[c + 1] = offsets_[c] + counts[c];
  order_.resize(members.size());
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const std::uint32_t m : members) order_[cursor[cell_index(points_[m])]++] = m;
}

std::size_t GridKnn::cell_index(Vec2 p) const {
  const long ix = std::clamp(static_cast<long>(std::floor((p.x - lo_.x) / cell_)), 0L, nx_ - 1);
  const long iy = std::clamp(static_cast<long>(std::floor((p.y - lo_.y) / cell_)), 0L, ny_ - 1);
  return static_cast<std::size_t>(iy) * static_cast<std::size_t>(nx_) +
         static_cast<std::size_t>(ix);
}

void GridKnn::insert_member(std::uint32_t id) {
  if (id >= points_.size()) throw std::out_of_range("GridKnn: member id out of range");
  spill_.push_back(id);
  ++live_;
  maybe_compact();
}

void GridKnn::erase_member(std::uint32_t id) {
  const auto it = std::find(spill_.begin(), spill_.end(), id);
  if (it != spill_.end()) {
    spill_.erase(it);
    --live_;
    maybe_compact();
    return;
  }
  if (!offsets_.empty()) {
    // The member's coordinates are unchanged since bucketing (contract), so
    // its cell is recomputable and the scan is one bucket.
    const std::size_t c = cell_index(points_[id]);
    for (std::uint32_t t = offsets_[c]; t < offsets_[c + 1]; ++t) {
      if (order_[t] == id) {
        order_[t] = npos;
        ++dead_;
        --live_;
        maybe_compact();
        return;
      }
    }
  }
  throw std::invalid_argument("GridKnn: erase_member of a non-member");
}

/// Amortized O(1) per mutation: a rebuild costs O(live) and runs only once
/// the pending (tombstone + spill) count reaches a fraction of the live
/// set, which also bounds the per-query spill scan.
void GridKnn::maybe_compact() {
  const std::size_t pend = dead_ + spill_.size();
  if (pend >= 8 && pend * 8 >= live_) compact();
}

void GridKnn::compact() {
  const std::vector<std::uint32_t> members = live_members();
  build(members, expected_k_);
}

std::vector<std::uint32_t> GridKnn::live_members() const {
  std::vector<std::uint32_t> members;
  members.reserve(live_);
  for (const std::uint32_t id : order_) {
    if (id != npos) members.push_back(id);
  }
  members.insert(members.end(), spill_.begin(), spill_.end());
  std::sort(members.begin(), members.end());
  return members;
}

/// Streaming path: a sorted bounded candidate array on the stack
/// (k <= kStreamingMaxK). The initial 3x3 block — which resolves almost
/// every query at the tuned cell size — is scanned as contiguous row spans
/// (cells of a row are adjacent in the CSR arrays); outer rings add
/// per-cell lower-bound filtering against the current k-th best. Returns
/// the candidate count.
std::size_t GridKnn::collect_small(Vec2 q, std::size_t k, std::uint32_t exclude,
                                   QueryScratch::Candidate* best) const {
  std::size_t cnt = 0;
  double worst = kInf;
  SENS_OBS(ObsTally obs_tally;)

  auto offer = [&](std::uint32_t idx) {
    SENS_OBS(++obs_tally.candidates;)
    const double dx = points_[idx].x - q.x;
    const double dy = points_[idx].y - q.y;
    const double d2 = dx * dx + dy * dy;
    if (d2 > worst) return;
    if (idx == exclude) return;
    // With a full set, a candidate tying the k-th distance only wins on a
    // smaller index.
    if (cnt == k && d2 == best[k - 1].d2 && idx > best[k - 1].idx) return;
    // Manual shift-insert into the sorted array (measurably faster than
    // std::vector::insert at these sizes).
    std::size_t pos = cnt < k ? cnt : k - 1;
    if (cnt < k) ++cnt;
    while (pos > 0 &&
           (best[pos - 1].d2 > d2 || (best[pos - 1].d2 == d2 && best[pos - 1].idx > idx))) {
      best[pos] = best[pos - 1];
      --pos;
    }
    best[pos] = {d2, idx};
    if (cnt == k) worst = best[k - 1].d2;
  };

  // Spill entries are unbucketed (possibly outside the grid box), so they
  // are offered exhaustively up front — the ring bound below then only has
  // to be exact about *bucketed* points, which it is by construction.
  for (const std::uint32_t idx : spill_) offer(idx);
  if (offsets_.empty()) return cnt;

  const long cx =
      std::clamp(static_cast<long>(std::floor((q.x - lo_.x) / cell_)), 0L, nx_ - 1);
  const long cy =
      std::clamp(static_cast<long>(std::floor((q.y - lo_.y) / cell_)), 0L, ny_ - 1);
  const long max_ring = std::max(std::max(cx, nx_ - 1 - cx), std::max(cy, ny_ - 1 - cy));

  /// One row of cells [xa, xb] at row y: a single contiguous bucket span.
  auto scan_row = [&](long y, long xa, long xb) {
    if (y < 0 || y >= ny_) return;
    xa = std::max(xa, 0L);
    xb = std::min(xb, nx_ - 1);
    if (xa > xb) return;
    SENS_OBS(obs_tally.cells += static_cast<std::uint64_t>(xb - xa + 1);)
    const std::size_t base = static_cast<std::size_t>(y) * static_cast<std::size_t>(nx_);
    const std::uint32_t t0 = offsets_[base + static_cast<std::size_t>(xa)];
    const std::uint32_t t1 = offsets_[base + static_cast<std::size_t>(xb) + 1];
    for (std::uint32_t t = t0; t < t1; ++t) {
      if (order_[t] != npos) offer(order_[t]);
    }
  };

  auto scan_cell = [&](long x, long y) {
    if (x < 0 || x >= nx_ || y < 0 || y >= ny_) return;
    // Lower bound from q to the cell rectangle; a cell that cannot beat the
    // current k-th best (`>` keeps equal-distance ties visible) is skipped.
    const double gx = std::max({0.0, lo_.x + static_cast<double>(x) * cell_ - q.x,
                                q.x - (lo_.x + static_cast<double>(x + 1) * cell_)});
    const double gy = std::max({0.0, lo_.y + static_cast<double>(y) * cell_ - q.y,
                                q.y - (lo_.y + static_cast<double>(y + 1) * cell_)});
    if (gx * gx + gy * gy > worst) return;
    SENS_OBS(++obs_tally.cells;)
    const std::size_t c =
        static_cast<std::size_t>(y) * static_cast<std::size_t>(nx_) + static_cast<std::size_t>(x);
    for (std::uint32_t t = offsets_[c]; t < offsets_[c + 1]; ++t) {
      if (order_[t] != npos) offer(order_[t]);
    }
  };

  // Unscanned points lie beyond the scanned square's boundary; a side the
  // square has already pushed past the grid imposes no bound. Stop once the
  // k-th best strictly beats that bound (`<`, so ties at the cutoff
  // distance are still collected from the next ring).
  auto done_after = [&](long r) {
    if (cnt != k) return false;
    const double left = cx - r > 0 ? q.x - (lo_.x + static_cast<double>(cx - r) * cell_) : kInf;
    const double right =
        cx + r < nx_ - 1 ? (lo_.x + static_cast<double>(cx + r + 1) * cell_) - q.x : kInf;
    const double bot = cy - r > 0 ? q.y - (lo_.y + static_cast<double>(cy - r) * cell_) : kInf;
    const double top =
        cy + r < ny_ - 1 ? (lo_.y + static_cast<double>(cy + r + 1) * cell_) - q.y : kInf;
    const double dmin = std::min(std::min(left, right), std::min(bot, top));
    return worst < dmin * dmin;
  };

  // Rings 0 and 1 together: three contiguous row spans.
  const long first = std::min(1L, max_ring);
  for (long y = cy - first; y <= cy + first; ++y) scan_row(y, cx - first, cx + first);
  if (done_after(first)) return cnt;

  for (long r = first + 1; r <= max_ring; ++r) {
    scan_row(cy - r, cx - r, cx + r);
    scan_row(cy + r, cx - r, cx + r);
    for (long y = cy - r + 1; y <= cy + r - 1; ++y) {
      scan_cell(cx - r, y);
      scan_cell(cx + r, y);
    }
    if (done_after(r)) break;
  }
  return cnt;
}

/// Selection path: collect per ring (filtered by the current k-th best once
/// known), prune with nth_element, stop on the same ring bound.
void GridKnn::collect_large(Vec2 q, std::size_t k, std::uint32_t exclude,
                            std::vector<QueryScratch::Candidate>& cands) const {
  double worst = kInf;
  SENS_OBS(ObsTally obs_tally;)

  auto consider = [&](std::uint32_t idx) {
    SENS_OBS(++obs_tally.candidates;)
    if (idx == exclude) return;
    const double dx = points_[idx].x - q.x;
    const double dy = points_[idx].y - q.y;
    const double d2 = dx * dx + dy * dy;
    if (d2 > worst) return;  // `>` keeps equal-distance ties in play
    cands.push_back({d2, idx});
  };

  // Spill entries first and exhaustively (see collect_small): the ring
  // bound below is then exact because it only has to cover bucketed points.
  for (const std::uint32_t idx : spill_) consider(idx);
  if (offsets_.empty()) {
    finish_large(k, cands);
    return;
  }

  const long cx =
      std::clamp(static_cast<long>(std::floor((q.x - lo_.x) / cell_)), 0L, nx_ - 1);
  const long cy =
      std::clamp(static_cast<long>(std::floor((q.y - lo_.y) / cell_)), 0L, ny_ - 1);
  const long max_ring = std::max(std::max(cx, nx_ - 1 - cx), std::max(cy, ny_ - 1 - cy));

  auto scan_cell = [&](long x, long y) {
    if (x < 0 || x >= nx_ || y < 0 || y >= ny_) return;
    const double gx = std::max({0.0, lo_.x + static_cast<double>(x) * cell_ - q.x,
                                q.x - (lo_.x + static_cast<double>(x + 1) * cell_)});
    const double gy = std::max({0.0, lo_.y + static_cast<double>(y) * cell_ - q.y,
                                q.y - (lo_.y + static_cast<double>(y + 1) * cell_)});
    if (gx * gx + gy * gy > worst) return;
    SENS_OBS(++obs_tally.cells;)
    const std::size_t c =
        static_cast<std::size_t>(y) * static_cast<std::size_t>(nx_) + static_cast<std::size_t>(x);
    for (std::uint32_t t = offsets_[c]; t < offsets_[c + 1]; ++t) {
      if (order_[t] != npos) consider(order_[t]);
    }
  };

  for (long r = 0; r <= max_ring; ++r) {
    const long x0 = cx - r;
    const long x1 = cx + r;
    const long y0 = cy - r;
    const long y1 = cy + r;
    if (r == 0) {
      scan_cell(cx, cy);
    } else {
      for (long x = x0; x <= x1; ++x) {
        scan_cell(x, y0);
        scan_cell(x, y1);
      }
      for (long y = y0 + 1; y <= y1 - 1; ++y) {
        scan_cell(x0, y);
        scan_cell(x1, y);
      }
    }
    if (cands.size() < k) continue;
    const double left = x0 > 0 ? q.x - (lo_.x + static_cast<double>(x0) * cell_) : kInf;
    const double right =
        x1 < nx_ - 1 ? (lo_.x + static_cast<double>(x1 + 1) * cell_) - q.x : kInf;
    const double bot = y0 > 0 ? q.y - (lo_.y + static_cast<double>(y0) * cell_) : kInf;
    const double top =
        y1 < ny_ - 1 ? (lo_.y + static_cast<double>(y1 + 1) * cell_) - q.y : kInf;
    const double dmin = std::min(std::min(left, right), std::min(bot, top));
    // Prune to the k best so far; the (d2, idx) comparator is a strict
    // total order, so the prefix after nth_element is exactly the k best
    // and everything beyond can be dropped. nth_element also runs when the
    // buffer holds exactly k — `worst` must be the k-th best, not whatever
    // was pushed last.
    std::nth_element(cands.begin(), cands.begin() + static_cast<std::ptrdiff_t>(k) - 1,
                     cands.end());
    if (cands.size() > k) cands.resize(k);
    worst = cands[k - 1].d2;
    if (worst < dmin * dmin) break;
  }
  finish_large(k, cands);
}

std::size_t GridKnn::nearest_into(Vec2 q, std::size_t k, std::uint32_t exclude,
                                  QueryScratch& scratch, std::vector<std::uint32_t>& out) const {
  out.clear();
  if (live_ == 0 || k == 0) return 0;
  if (k <= kStreamingMaxK) {
    QueryScratch::Candidate best[kStreamingMaxK];
    const std::size_t cnt = collect_small(q, k, exclude, best);
    out.resize(cnt);
    for (std::size_t i = 0; i < cnt; ++i) out[i] = best[i].idx;
    return cnt;
  }
  auto& cands = scratch.cands;
  cands.clear();
  collect_large(q, k, exclude, cands);
  out.resize(cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i) out[i] = cands[i].idx;
  return out.size();
}

}  // namespace sens
