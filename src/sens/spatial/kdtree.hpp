// 2-d kd-tree for k-nearest-neighbor queries, used to build NN(2, k).
//
// Median-split construction (O(n log n)), array-backed nodes, leaf points
// stored contiguously in traversal order (cache-friendly leaf scans),
// recursive query over a bounded candidate set. Ties in distance are broken
// by point index, matching the paper's remark that any measurable tie-break
// rule is acceptable (ties are measure zero under a Poisson process but
// appear in adversarial tests).
//
// The query entry points come in two flavors (DESIGN.md §2.3):
//   * `nearest_into` / `query_radius_into` write into caller-owned buffers
//     and reuse a caller-owned `QueryScratch` — allocation-free after the
//     first call, which is what the batched graph builders
//     (`knn_selections_flat`, `build_udg`) drive from `parallel_for_chunks`
//     with one scratch per chunk.
//   * `nearest` / `query_radius` are thin allocating wrappers kept for
//     one-off queries and tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sens/geometry/vec2.hpp"

namespace sens {

class KdTree {
 public:
  explicit KdTree(std::span<const Vec2> points);

  static constexpr std::uint32_t npos = 0xffffffffu;

  /// Caller-owned scratch for the *_into queries. One instance per thread
  /// (or per chunk of a `parallel_for_chunks` body); reusing it across
  /// queries makes the hot path allocation-free. The contents are opaque:
  /// any query may clobber them.
  struct QueryScratch {
    struct Candidate {
      double d2;
      std::uint32_t idx;
      bool operator<(const Candidate& o) const {
        return d2 != o.d2 ? d2 < o.d2 : idx < o.idx;
      }
    };
    std::vector<Candidate> best;       ///< bounded k-best candidate set
    std::vector<std::uint32_t> stack;  ///< node stack for radius queries
  };

  /// Indices of the k points nearest to `q`, excluding index `exclude`
  /// (pass npos to exclude nothing), sorted by (distance, index), written
  /// into `out` (cleared first; capacity is reused). Returns the number of
  /// indices written: min(k, size() minus the excluded point).
  std::size_t nearest_into(Vec2 q, std::size_t k, std::uint32_t exclude, QueryScratch& scratch,
                           std::vector<std::uint32_t>& out) const;

  /// Allocating wrapper over `nearest_into`.
  [[nodiscard]] std::vector<std::uint32_t> nearest(Vec2 q, std::size_t k,
                                                   std::uint32_t exclude = npos) const;

  /// All indices within `radius` of q, sorted ascending, written into `out`
  /// (cleared first; capacity is reused). Returns the number written.
  std::size_t query_radius_into(Vec2 q, double radius, QueryScratch& scratch,
                                std::vector<std::uint32_t>& out) const;

  /// Allocating wrapper over `query_radius_into`.
  [[nodiscard]] std::vector<std::uint32_t> query_radius(Vec2 q, double radius) const;

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::span<const Vec2> points() const { return points_; }

 private:
  struct Node {
    std::uint32_t begin = 0;   // leaf: range in order_
    std::uint32_t end = 0;
    std::uint32_t left = 0;    // internal: children node ids (0 = none)
    std::uint32_t right = 0;
    float split = 0.0F;
    std::uint8_t axis = 0;
    bool leaf = true;
  };

  std::uint32_t build(std::uint32_t begin, std::uint32_t end, int depth);

  void search(std::uint32_t node, Vec2 q, std::size_t k, std::uint32_t exclude, bool use_heap,
              std::vector<QueryScratch::Candidate>& best, double mindist,
              double* axis_dist) const;

  std::vector<Vec2> points_;            // original order (points() accessor)
  std::vector<std::uint32_t> order_;    // leaf-order permutation
  std::vector<Vec2> leaf_points_;       // points_[order_[i]], contiguous per leaf
  std::vector<Node> nodes_;
  std::uint32_t root_ = 0;

  static constexpr std::uint32_t kLeafSize = 8;
  /// Candidate sets up to this k are kept as a sorted array (branchy insert,
  /// no final sort); larger k falls back to a max-heap whose O(log k)
  /// replacement beats the O(k) memmove (NN-SENS queries at k = 188).
  static constexpr std::size_t kSortedInsertMaxK = 48;
};

}  // namespace sens
