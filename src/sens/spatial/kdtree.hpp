// 2-d kd-tree for k-nearest-neighbor queries, used to build NN(2, k).
//
// Median-split construction (O(n log n)), array-backed nodes, iterative-ish
// recursive query with a bounded max-heap of the k best candidates. Ties in
// distance are broken by point index, matching the paper's remark that any
// measurable tie-break rule is acceptable (ties are measure zero under a
// Poisson process but appear in adversarial tests).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sens/geometry/vec2.hpp"

namespace sens {

class KdTree {
 public:
  explicit KdTree(std::span<const Vec2> points);

  /// Indices of the k points nearest to `q`, excluding index `exclude`
  /// (pass npos to exclude nothing), sorted by (distance, index).
  static constexpr std::uint32_t npos = 0xffffffffu;
  [[nodiscard]] std::vector<std::uint32_t> nearest(Vec2 q, std::size_t k,
                                                   std::uint32_t exclude = npos) const;

  /// All indices within `radius` of q.
  [[nodiscard]] std::vector<std::uint32_t> query_radius(Vec2 q, double radius) const;

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::span<const Vec2> points() const { return points_; }

 private:
  struct Node {
    std::uint32_t begin = 0;   // leaf: range in order_
    std::uint32_t end = 0;
    std::uint32_t left = 0;    // internal: children node ids (0 = none)
    std::uint32_t right = 0;
    float split = 0.0F;
    std::uint8_t axis = 0;
    bool leaf = true;
  };

  std::uint32_t build(std::uint32_t begin, std::uint32_t end, int depth);

  std::vector<Vec2> points_;
  std::vector<std::uint32_t> order_;
  std::vector<Node> nodes_;
  std::uint32_t root_ = 0;

  static constexpr std::uint32_t kLeafSize = 16;

  struct Candidate {
    double d2;
    std::uint32_t idx;
    bool operator<(const Candidate& o) const {
      return d2 != o.d2 ? d2 < o.d2 : idx < o.idx;  // heap: max at top via std::less
    }
  };

  void search(std::uint32_t node, Vec2 q, std::size_t k, std::uint32_t exclude,
              std::vector<Candidate>& heap) const;
};

}  // namespace sens
