#include "sens/spatial/reorder.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "sens/geometry/box.hpp"
#include "sens/support/checked.hpp"
#include "sens/support/parallel.hpp"

namespace sens {

namespace {

constexpr std::uint32_t kSide = 1u << 16;  ///< quantization cells per axis

/// (x, y) quantized onto the [0, 2^16)^2 lattice over the bounding box.
/// Degenerate extents (all points on a line or a single point) collapse the
/// dead axis to 0 — the key becomes the live axis, which is still a valid
/// locality order.
struct Quantizer {
  double x0, y0, sx, sy;

  explicit Quantizer(std::span<const Vec2> points) : x0(0), y0(0), sx(0), sy(0) {
    if (points.empty()) return;
    double x1 = points[0].x, y1 = points[0].y;
    x0 = x1;
    y0 = y1;
    for (const Vec2& p : points) {
      x0 = std::min(x0, p.x);
      y0 = std::min(y0, p.y);
      x1 = std::max(x1, p.x);
      y1 = std::max(y1, p.y);
    }
    if (x1 > x0) sx = static_cast<double>(kSide - 1) / (x1 - x0);
    if (y1 > y0) sy = static_cast<double>(kSide - 1) / (y1 - y0);
  }

  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> operator()(Vec2 p) const {
    const auto q = [](double v) {
      return static_cast<std::uint32_t>(std::min(v, static_cast<double>(kSide - 1)));
    };
    return {q((p.x - x0) * sx), q((p.y - y0) * sy)};
  }
};

void check_same_size(std::size_t have, std::size_t want, const char* what) {
  if (have != want) {
    throw std::invalid_argument(std::string("apply_permutation: ") + what + " size " +
                                std::to_string(have) + " != permutation size " +
                                std::to_string(want));
  }
}

}  // namespace

std::uint64_t hilbert_index_16(std::uint32_t x, std::uint32_t y) {
  std::uint64_t d = 0;
  for (std::uint32_t s = kSide / 2; s > 0; s >>= 1) {
    const std::uint32_t rx = (x & s) ? 1u : 0u;
    const std::uint32_t ry = (y & s) ? 1u : 0u;
    d += static_cast<std::uint64_t>(s) * s * ((3u * rx) ^ ry);
    if (ry == 0) {
      if (rx == 1) {
        x = kSide - 1 - x;
        y = kSide - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

std::vector<std::uint32_t> spatial_order_permutation(std::span<const Vec2> points,
                                                     SpatialOrder order) {
  const std::size_t n = points.size();
  (void)checked_u32(n, "spatial_order_permutation: point");  // DESIGN.md §2.8
  const Quantizer quantize(points);

  // One packed key per point: spatial key in the high 32 bits (Hilbert index
  // or row-major cell), old id in the low 32 — sorting the packed keys sorts
  // by key with ties broken by old id, so the permutation is deterministic
  // for any input and any thread count (the key fill writes disjoint slots;
  // the sort is serial).
  std::vector<std::uint64_t> keys(n);
  parallel_for(n, [&](std::size_t i) {
    const auto [qx, qy] = quantize(points[i]);
    const std::uint64_t key = order == SpatialOrder::kHilbert
                                  ? hilbert_index_16(qx, qy)
                                  : (static_cast<std::uint64_t>(qy) << 16) | qx;
    keys[i] = (key << 32) | static_cast<std::uint32_t>(i);
  });
  std::sort(keys.begin(), keys.end());

  std::vector<std::uint32_t> perm(n);
  parallel_for(n, [&](std::size_t i) {
    perm[i] = static_cast<std::uint32_t>(keys[i] & 0xffffffffu);
  });
  return perm;
}

std::vector<std::uint32_t> invert_permutation(std::span<const std::uint32_t> perm) {
  const std::size_t n = perm.size();
  constexpr std::uint32_t unset = std::numeric_limits<std::uint32_t>::max();
  // n <= 2^32 - 1 (id space), so `unset` is never a valid new id.
  std::vector<std::uint32_t> inv(n, unset);
  for (std::size_t new_id = 0; new_id < n; ++new_id) {
    const std::uint32_t old_id = perm[new_id];
    if (old_id >= n || inv[old_id] != unset) {
      throw std::invalid_argument("invert_permutation: input is not a permutation of [0, n)");
    }
    inv[old_id] = static_cast<std::uint32_t>(new_id);
  }
  return inv;
}

std::vector<Vec2> apply_permutation(std::span<const Vec2> points,
                                    std::span<const std::uint32_t> perm) {
  check_same_size(points.size(), perm.size(), "point store");
  std::vector<Vec2> out(points.size());
  parallel_for(points.size(), [&](std::size_t i) { out[i] = points[perm[i]]; });
  return out;
}

PointSet apply_permutation(const PointSet& ps, std::span<const std::uint32_t> perm) {
  PointSet out;
  out.window = ps.window;
  out.intensity = ps.intensity;
  out.points = apply_permutation(std::span<const Vec2>(ps.points), perm);
  return out;
}

FlatAdjacency apply_permutation(const FlatAdjacency& adj,
                                std::span<const std::uint32_t> perm) {
  check_same_size(adj.size(), perm.size(), "adjacency");
  const std::vector<std::uint32_t> inv = invert_permutation(perm);
  return build_flat_adjacency(
      adj.size(), [&](std::size_t i) { return adj.degree(perm[i]); },
      [&](std::size_t i, std::uint32_t* out) {
        for (const std::uint32_t v : adj[perm[i]]) *out++ = inv[v];
      });
}

CsrGraph apply_permutation(const CsrGraph& g, std::span<const std::uint32_t> perm) {
  check_same_size(g.num_vertices(), perm.size(), "graph");
  const std::vector<std::uint32_t> inv = invert_permutation(perm);
  // Relabeled lists are no longer sorted; from_symmetric_adjacency re-sorts
  // each list in place, restoring the CSR invariant.
  FlatAdjacency adj = build_flat_adjacency(
      g.num_vertices(),
      [&](std::size_t i) { return g.degree(perm[i]); },
      [&](std::size_t i, std::uint32_t* out) {
        for (const std::uint32_t v : g.neighbors(perm[i])) *out++ = inv[v];
      });
  return CsrGraph::from_symmetric_adjacency(std::move(adj));
}

GeoGraph apply_permutation(const GeoGraph& gg, std::span<const std::uint32_t> perm) {
  GeoGraph out;
  out.points = apply_permutation(std::span<const Vec2>(gg.points), perm);
  out.graph = apply_permutation(gg.graph, perm);
  return out;
}

}  // namespace sens
