#include "sens/spatial/grid_index.hpp"

#include <stdexcept>

namespace sens {

GridIndex::GridIndex(std::span<const Vec2> points, Box bounds, double cell_size)
    : points_(points.begin(), points.end()), bounds_(bounds), cell_size_(cell_size) {
  if (cell_size_ <= 0.0) throw std::invalid_argument("GridIndex: cell_size <= 0");
  nx_ = std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(bounds_.width() / cell_size_)));
  ny_ = std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(bounds_.height() / cell_size_)));

  const std::size_t cells = nx_ * ny_;
  std::vector<std::uint32_t> counts(cells, 0);
  for (const Vec2& p : points_) ++counts[cell_of(p)];

  offsets_.assign(cells + 1, 0);
  for (std::size_t c = 0; c < cells; ++c) offsets_[c + 1] = offsets_[c] + counts[c];

  order_.resize(points_.size());
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::uint32_t i = 0; i < points_.size(); ++i) order_[cursor[cell_of(points_[i])]++] = i;
}

std::size_t GridIndex::cell_of(Vec2 p) const {
  auto ix = static_cast<long>(std::floor((p.x - bounds_.lo.x) / cell_size_));
  auto iy = static_cast<long>(std::floor((p.y - bounds_.lo.y) / cell_size_));
  ix = std::clamp<long>(ix, 0, static_cast<long>(nx_) - 1);
  iy = std::clamp<long>(iy, 0, static_cast<long>(ny_) - 1);
  return static_cast<std::size_t>(iy) * nx_ + static_cast<std::size_t>(ix);
}

}  // namespace sens
