#include "sens/spatial/grid_knn_pyramid.hpp"

#include <stdexcept>

namespace sens {

GridKnnPyramid::GridKnnPyramid(std::span<const Vec2> points, std::span<const LevelSpec> levels)
    : store_(points.begin(), points.end()) {
  levels_.reserve(levels.size());
  for (const LevelSpec& spec : levels) {
    for (const std::uint32_t m : spec.members) {
      if (m >= store_.size()) {
        throw std::out_of_range("GridKnnPyramid: member id out of range");
      }
    }
    // store_ never reallocates after this constructor, so the subset views
    // stay valid for the pyramid's lifetime (and across moves: the moved
    // vector keeps its heap buffer).
    levels_.emplace_back(std::span<const Vec2>(store_), std::span<const std::uint32_t>(spec.members),
                         spec.expected_k);
  }
}

}  // namespace sens
