#include "sens/spatial/grid_knn_pyramid.hpp"

#include <stdexcept>

namespace sens {

GridKnnPyramid::GridKnnPyramid(std::span<const Vec2> points, std::span<const LevelSpec> levels)
    : store_(points.begin(), points.end()) {
  levels_.reserve(levels.size());
  for (const LevelSpec& spec : levels) {
    for (const std::uint32_t m : spec.members) {
      if (m >= store_.size()) {
        throw std::out_of_range("GridKnnPyramid: member id out of range");
      }
    }
    // store_ only changes through append_point (which rebinds every level)
    // and set_point (vacant slots only), so the subset views stay valid for
    // the pyramid's lifetime (and across moves: the moved vector keeps its
    // heap buffer).
    levels_.emplace_back(std::span<const Vec2>(store_), std::span<const std::uint32_t>(spec.members),
                         spec.expected_k);
  }
}

std::uint32_t GridKnnPyramid::append_point(Vec2 p) {
  const auto id = static_cast<std::uint32_t>(store_.size());
  store_.push_back(p);
  // Rebind every level to the grown store: a reallocation preserves
  // contents, and grid buckets depend only on member coordinates, so a
  // repointed span is all the levels need.
  const std::span<const Vec2> s(store_);
  for (GridKnn& lvl : levels_) lvl.rebind(s);
  return id;
}

void GridKnnPyramid::set_point(std::uint32_t id, Vec2 p) {
  if (id >= store_.size()) throw std::out_of_range("GridKnnPyramid: point id out of range");
  store_[id] = p;
}

void GridKnnPyramid::insert(std::size_t l, std::uint32_t id) {
  if (l >= levels_.size()) throw std::out_of_range("GridKnnPyramid: level out of range");
  if (id >= store_.size()) throw std::out_of_range("GridKnnPyramid: member id out of range");
  levels_[l].insert_member(id);
}

void GridKnnPyramid::erase(std::size_t l, std::uint32_t id) {
  if (l >= levels_.size()) throw std::out_of_range("GridKnnPyramid: level out of range");
  if (id >= store_.size()) throw std::out_of_range("GridKnnPyramid: member id out of range");
  levels_[l].erase_member(id);
}

void GridKnnPyramid::push_level(std::size_t expected_k) {
  levels_.emplace_back(std::span<const Vec2>(store_), std::span<const std::uint32_t>{},
                       expected_k);
}

}  // namespace sens
