// Multi-resolution bucket-grid k-NN pyramid over one shared point store.
//
// The hierarchical neighbor graph (sens/hng) queries a *different* k over a
// *sparser* point subset at every level of its hierarchy. A single GridKnn
// is tuned for one (density, k) pair, so the pyramid builds one
// density-tuned grid per level — all of them subset views over the same
// coordinate array (GridKnn's shared-store constructor; zero coordinate
// copies) — and each level reuses GridKnn's exact expanding-ring search
// kernel unchanged. Per-level results are therefore bit-identical to a
// fresh single-level GridKnn over the compacted subset, including the
// (distance, index) tie-breaks (`GridKnnPyramid.LevelsMatchFreshGridKnnOracle`).
//
// The pyramid is mutable for the churn workload (sens/dynamic): the store
// can grow (`append_point` — levels are *rebound*, never rebuilt, since
// grid geometry depends only on member coordinates), vacated slots can be
// recycled (`set_point`), levels can be appended (`push_level`), and each
// level admits/retires members via GridKnn's spill/tombstone path — so
// per-level query results stay a pure function of the live membership,
// bit-identical to a fresh pyramid (`GridKnnPyramidMutation.*`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sens/geometry/vec2.hpp"
#include "sens/spatial/grid_knn.hpp"

namespace sens {

class GridKnnPyramid {
 public:
  /// One level: which points it indexes (global ids into the shared store)
  /// and the query size its grid is tuned for (any k stays exact).
  struct LevelSpec {
    std::vector<std::uint32_t> members;
    std::size_t expected_k = 1;
  };

  /// Copy `points` once into the shared store, then build one grid per
  /// spec. Member ids must be < points.size(); levels may be empty (their
  /// queries return 0 results) and need not be nested or disjoint.
  GridKnnPyramid(std::span<const Vec2> points, std::span<const LevelSpec> levels);

  GridKnnPyramid(GridKnnPyramid&&) noexcept = default;
  GridKnnPyramid& operator=(GridKnnPyramid&&) noexcept = default;
  GridKnnPyramid(const GridKnnPyramid&) = delete;
  GridKnnPyramid& operator=(const GridKnnPyramid&) = delete;

  [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }

  /// The level-`l` index; `nearest_into` on it returns global point ids.
  [[nodiscard]] const GridKnn& level(std::size_t l) const { return levels_[l]; }

  /// The shared coordinate store all levels index into.
  [[nodiscard]] std::span<const Vec2> points() const { return store_; }
  [[nodiscard]] std::size_t store_size() const { return store_.size(); }

  // --- mutation (sens/dynamic) ---

  /// Append a point to the shared store and return its id. Every level is
  /// rebound to the grown store (contents are preserved across a vector
  /// reallocation, so no grid needs rebuilding).
  std::uint32_t append_point(Vec2 p);

  /// Overwrite the coordinates of slot `id`. Precondition: `id` is not
  /// currently a member of any level (a bucketed member's coordinates are
  /// what locate its bucket). Throws std::out_of_range on a bad id.
  void set_point(std::uint32_t id, Vec2 p);

  /// Admit store slot `id` into level `l` / retire it. Bounds-checked;
  /// GridKnn's membership contract applies.
  void insert(std::size_t l, std::uint32_t id);
  void erase(std::size_t l, std::uint32_t id);

  /// Append an empty level tuned for `expected_k`-sized queries.
  void push_level(std::size_t expected_k);

 private:
  std::vector<Vec2> store_;     ///< declared before levels_: grids span it
  std::vector<GridKnn> levels_;
};

}  // namespace sens
