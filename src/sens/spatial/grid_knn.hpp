// Exact k-nearest-neighbor queries over a uniform grid (expanding rings).
//
// The batched k-NN selection workload — every point of a Poisson set asks
// for its k nearest — is better served by a bucket grid than a kd-tree: the
// answer is almost always inside the 3x3 cell neighborhood, so a Chebyshev
// ring expansion touches O(k) candidates with no tree traversal at all.
// This engine is exact (not approximate): rings expand until the k-th best
// distance provably beats the nearest unscanned cell boundary, and ties are
// broken by (distance, index) exactly like `KdTree::nearest`, so both
// engines return identical neighbor lists on any input (asserted by
// `GridKnnParamTest.MatchesKdTreeOracle`). `knn_selections_flat` drives it
// chunk-parallel with one scratch per chunk (DESIGN.md §2.3).
//
// Cell size is tuned at construction for an expected query size k; queries
// with other k values stay exact, only ring granularity is off-tune. A
// second constructor indexes a *subset* of a shared point store without
// copying coordinates — the per-level building block of `GridKnnPyramid`
// (spatial/grid_knn_pyramid.hpp).
//
// Membership is mutable after construction (`insert_member` /
// `erase_member`, the churn substrate of sens/dynamic): admissions land on
// an unbucketed spill list that every query scans exhaustively — so a
// point outside the built grid box can never be pruned away — and
// retirements tombstone their bucket slot, which the scan loops skip.
// Once tombstones + spill outgrow a fraction of the live set the grid is
// rebuilt from the live members (ascending id). Query results are a pure
// function of the live member set, identical to a freshly built GridKnn
// over it (asserted by `GridKnnMutation.*` / `GridKnnPyramidMutation.*`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sens/geometry/vec2.hpp"

namespace sens {

class GridKnn {
 public:
  /// Build over `points`, tuning the cell size for queries of ~`expected_k`
  /// neighbors (any k stays exact). Bounds are the point bounding box.
  GridKnn(std::span<const Vec2> points, std::size_t expected_k);

  /// Subset view over a *shared* point store: index only the points named in
  /// `members` (ids into `shared_points`), without copying any coordinates.
  /// Queries return those global ids, with the same (distance, index)
  /// tie-break as the owning constructor — equivalent to a fresh GridKnn
  /// over the compacted subset with ids mapped back (asserted by
  /// `GridKnnPyramid.LevelsMatchFreshGridKnnOracle`). The caller must keep
  /// `shared_points` alive and unmoved for the lifetime of this index; the
  /// grid geometry is tuned to the *subset's* bounding box and density.
  GridKnn(std::span<const Vec2> shared_points, std::span<const std::uint32_t> members,
          std::size_t expected_k);

  GridKnn(GridKnn&&) noexcept = default;
  GridKnn& operator=(GridKnn&&) noexcept = default;
  // Copying is deleted: the owning constructor's `points_` span refers to
  // this object's own `owned_points_`, which a member-wise copy would alias.
  GridKnn(const GridKnn&) = delete;
  GridKnn& operator=(const GridKnn&) = delete;

  static constexpr std::uint32_t npos = 0xffffffffu;

  /// Caller-owned scratch; one per thread/chunk, contents opaque.
  struct QueryScratch {
    struct Candidate {
      double d2;
      std::uint32_t idx;
      bool operator<(const Candidate& o) const {
        return d2 != o.d2 ? d2 < o.d2 : idx < o.idx;
      }
    };
    std::vector<Candidate> cands;
  };

  /// Indices of the k points nearest to `q`, excluding index `exclude`
  /// (npos = exclude nothing), sorted by (distance, index), written into
  /// `out` (cleared first; capacity reused). Returns the count written.
  /// Identical results to `KdTree::nearest_into` on the same points.
  std::size_t nearest_into(Vec2 q, std::size_t k, std::uint32_t exclude, QueryScratch& scratch,
                           std::vector<std::uint32_t>& out) const;

  /// Number of *live* indexed points (the member count for a subset view;
  /// tombstoned members do not count).
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] std::span<const Vec2> points() const { return points_; }

  // --- mutable membership (sens/dynamic) ---

  /// Admit point `id` (an index into the shared store). The coordinates of
  /// a member must not change while it is indexed. Throws std::out_of_range
  /// on an id outside the store; admitting an id twice is undefined.
  void insert_member(std::uint32_t id);

  /// Retire member `id`. Throws std::invalid_argument if `id` is not
  /// currently a member.
  void erase_member(std::uint32_t id);

  /// Rebuild the bucket grid from the live member set now (ascending id) —
  /// called automatically once tombstones + spill outgrow the live count;
  /// public so tests can force the compaction path.
  void compact();

  /// Live member ids, ascending — the rebuild order `compact` uses.
  [[nodiscard]] std::vector<std::uint32_t> live_members() const;

  /// The expected query size this grid's geometry is tuned for.
  [[nodiscard]] std::size_t expected_k() const { return expected_k_; }

  /// Tombstone + spill count (observability for compaction tests).
  [[nodiscard]] std::size_t pending() const { return dead_ + spill_.size(); }

  /// Repoint the shared-store span (subset views only). The new span must
  /// present every member id at unchanged coordinates — e.g. the owning
  /// store grew (possibly reallocating, contents preserved). Grid geometry
  /// and buckets depend only on member coordinates, so no rebuild is
  /// needed. Used by `GridKnnPyramid` when its store grows.
  void rebind(std::span<const Vec2> shared_points) { points_ = shared_points; }

 private:
  void build(std::span<const std::uint32_t> members, std::size_t expected_k);
  [[nodiscard]] std::size_t cell_index(Vec2 p) const;
  void maybe_compact();
  std::size_t collect_small(Vec2 q, std::size_t k, std::uint32_t exclude,
                            QueryScratch::Candidate* best) const;
  void collect_large(Vec2 q, std::size_t k, std::uint32_t exclude,
                     std::vector<QueryScratch::Candidate>& cands) const;

  std::vector<Vec2> owned_points_;     ///< owning ctor only; empty for subset views
  std::span<const Vec2> points_;       ///< what the kernel reads (shared or owned)
  Vec2 lo_{0.0, 0.0};
  double cell_ = 1.0;
  long nx_ = 1;
  long ny_ = 1;
  std::vector<std::uint32_t> offsets_;  // nx*ny + 1
  std::vector<std::uint32_t> order_;    // indexed point ids grouped by cell (npos = tombstone)
  std::vector<std::uint32_t> spill_;    // admitted since the last (re)build, unbucketed
  std::size_t expected_k_ = 1;
  std::size_t live_ = 0;  // |order_| - dead_ + |spill_|
  std::size_t dead_ = 0;  // tombstones inside order_

  /// Up to this k the candidate set is a sorted array maintained by
  /// insertion while streaming cells; beyond it, candidates are collected
  /// per ring and selected with nth_element (the O(k) insertion memmove
  /// loses to selection at NN-SENS sizes, k = 188).
  static constexpr std::size_t kStreamingMaxK = 48;
};

}  // namespace sens
