// Cache-ordered layouts: spatial relabeling permutations (DESIGN.md §2.8).
//
// The builders and batched engines are label-order sensitive in *memory*
// terms only: `GridKnn` ring scans, CSR adjacency walks and the
// `dijkstra_many`/`bfs_many` sweeps all touch per-node arrays indexed by
// vertex id, so ids that are spatially local should be numerically close.
// A freshly generated Poisson store is grid-major (good); a store in
// deployment order — ids assigned by arrival, the realistic regime for a
// sensor network — is effectively random (bad: every adjacency hop is a
// cache miss at 10^6 nodes). This module computes a relabeling permutation
// from the point geometry (Hilbert curve, or plain grid-major as the
// cheaper baseline) and applies it to every structure the build pipeline
// passes around.
//
// Conventions, used consistently everywhere:
//   perm[new_id] = old_id      (a permutation is "who lands in slot i")
//   inv  = invert_permutation(perm), inv[old_id] = new_id
// Relabeling commutes with every geometry-pure builder: building on
// permuted points equals permuting the built structure, bit for bit
// (`Reorder.*` oracle tests; the HNG caveat — promotion levels are keyed
// by node id, so relabeling resamples the hierarchy — is documented in
// DESIGN.md §2.8). Per-node experiment output stays byte-identical under
// reordering by mapping results back through `inv` before reporting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sens/geograph/geo_graph.hpp"
#include "sens/geograph/point_set.hpp"
#include "sens/geometry/vec2.hpp"
#include "sens/graph/csr.hpp"
#include "sens/graph/flat_adjacency.hpp"

namespace sens {

enum class SpatialOrder {
  kHilbert,    ///< Hilbert space-filling curve over a 2^16 x 2^16 quantization
  kGridMajor,  ///< row-major over the same quantization (the generator's order)
};

/// The Hilbert index of quantized coordinates (x, y), each in [0, 2^16):
/// the standard bit-interleaving walk, so the result fits in 32 bits.
[[nodiscard]] std::uint64_t hilbert_index_16(std::uint32_t x, std::uint32_t y);

/// The relabeling permutation (perm[new_id] = old_id) that sorts `points`
/// by the chosen spatial key over their bounding box, ties broken by old
/// id — deterministic for any input. Throws std::overflow_error when the
/// point count exceeds the 32-bit id space.
[[nodiscard]] std::vector<std::uint32_t> spatial_order_permutation(std::span<const Vec2> points,
                                                                   SpatialOrder order);

/// inv with inv[perm[new_id]] = new_id. Validates that `perm` is a
/// permutation of [0, n) (throws std::invalid_argument otherwise), so a
/// round trip through experiment JSON can trust the map.
[[nodiscard]] std::vector<std::uint32_t> invert_permutation(
    std::span<const std::uint32_t> perm);

/// `points` relabeled: result[new_id] = points[perm[new_id]].
[[nodiscard]] std::vector<Vec2> apply_permutation(std::span<const Vec2> points,
                                                  std::span<const std::uint32_t> perm);

/// The point set with its store relabeled (window and intensity unchanged).
[[nodiscard]] PointSet apply_permutation(const PointSet& ps,
                                         std::span<const std::uint32_t> perm);

/// Directed selection lists relabeled on both axes: list new_id holds the
/// relabeled entries of list perm[new_id], each entry mapped through the
/// inverse. Within-list order is preserved (selection lists are
/// (distance, index)-ordered; relabeling must not re-sort them).
[[nodiscard]] FlatAdjacency apply_permutation(const FlatAdjacency& adj,
                                              std::span<const std::uint32_t> perm);

/// The isomorphic graph under the relabeling: vertex new_id is old vertex
/// perm[new_id], adjacency lists re-sorted into the new id order (CSR lists
/// are sorted by construction). Exact two-pass build, chunk-parallel,
/// bit-identical at any thread count.
[[nodiscard]] CsrGraph apply_permutation(const CsrGraph& g,
                                         std::span<const std::uint32_t> perm);

/// Points and topology relabeled together.
[[nodiscard]] GeoGraph apply_permutation(const GeoGraph& gg,
                                         std::span<const std::uint32_t> perm);

}  // namespace sens
