// Uniform grid over a point set for fixed-radius neighbor queries.
//
// The unit-disk graph builder needs all pairs within distance 1; bucketing
// points into cells of side >= query radius makes that a 3x3 cell scan per
// point. Storage is CSR-style (offsets + permuted indices), cache friendly
// and allocation free at query time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sens/geometry/box.hpp"
#include "sens/geometry/vec2.hpp"

namespace sens {

class GridIndex {
 public:
  /// Builds an index over `points` with cells of side `cell_size` (must be
  /// > 0). Points outside `bounds` are clamped into the edge cells.
  GridIndex(std::span<const Vec2> points, Box bounds, double cell_size);

  /// Invoke `fn(j)` for every point j with dist(points[j], q) <= radius.
  /// `radius` must be <= cell_size for the 3x3 scan to be exhaustive;
  /// larger radii scan proportionally more cells.
  void for_each_in_radius(Vec2 q, double radius, const std::function<void(std::uint32_t)>& fn) const;

  /// Collect variant of for_each_in_radius.
  [[nodiscard]] std::vector<std::uint32_t> query_radius(Vec2 q, double radius) const;

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::span<const Vec2> points() const { return points_; }

 private:
  [[nodiscard]] std::size_t cell_of(Vec2 p) const;

  std::vector<Vec2> points_;
  Box bounds_;
  double cell_size_;
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::vector<std::uint32_t> offsets_;  // nx*ny + 1
  std::vector<std::uint32_t> order_;    // point indices grouped by cell
};

}  // namespace sens
