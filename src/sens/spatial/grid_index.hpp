// Uniform grid over a point set for fixed-radius neighbor queries.
//
// The unit-disk graph builder needs all pairs within distance 1; bucketing
// points into cells of side >= query radius makes that a 3x3 cell scan per
// point. Storage is CSR-style (offsets + permuted indices), cache friendly
// and allocation free at query time.
//
// The visitor entry points are templates (header-only hot path): the
// caller's lambda is invoked directly with zero type erasure — no
// `std::function` construction or indirect call per query, which matters
// because `build_udg` issues one query per point (DESIGN.md §2.3).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sens/geometry/box.hpp"
#include "sens/geometry/vec2.hpp"

namespace sens {

class GridIndex {
 public:
  /// Builds an index over `points` with cells of side `cell_size` (must be
  /// > 0). Points outside `bounds` are clamped into the edge cells.
  GridIndex(std::span<const Vec2> points, Box bounds, double cell_size);

  /// Invoke `visit(j)` for every point j with dist(points[j], q) <= radius.
  /// Exhaustive for every radius: the scan covers ceil(radius / cell_size)
  /// rings of cells around q's cell (3x3 when radius <= cell_size, growing
  /// quadratically for larger radii). Visit order is deterministic:
  /// row-major over cells, then bucket order within a cell.
  template <typename Visitor>
  void for_each_in_radius(Vec2 q, double radius, Visitor&& visit) const {
    for_each_in_radius_until(q, radius, [&](std::uint32_t j) {
      visit(j);
      return false;
    });
  }

  /// Like `for_each_in_radius`, but `visit(j)` returns true to stop the
  /// scan early. Returns true when a visitor stopped it (i.e. some point
  /// satisfied the visitor), false when the scan ran to completion.
  template <typename Visitor>
  bool for_each_in_radius_until(Vec2 q, double radius, Visitor&& visit) const {
    const double r2 = radius * radius;
    const long reach = std::max<long>(1, static_cast<long>(std::ceil(radius / cell_size_)));
    const long cx = std::clamp<long>(
        static_cast<long>(std::floor((q.x - bounds_.lo.x) / cell_size_)), 0,
        static_cast<long>(nx_) - 1);
    const long cy = std::clamp<long>(
        static_cast<long>(std::floor((q.y - bounds_.lo.y) / cell_size_)), 0,
        static_cast<long>(ny_) - 1);
    const long y_lo = std::max<long>(cy - reach, 0);
    const long y_hi = std::min<long>(cy + reach, static_cast<long>(ny_) - 1);
    const long x_lo = std::max<long>(cx - reach, 0);
    const long x_hi = std::min<long>(cx + reach, static_cast<long>(nx_) - 1);
    for (long y = y_lo; y <= y_hi; ++y) {
      for (long x = x_lo; x <= x_hi; ++x) {
        const std::size_t cell = static_cast<std::size_t>(y) * nx_ + static_cast<std::size_t>(x);
        for (std::uint32_t k = offsets_[cell]; k < offsets_[cell + 1]; ++k) {
          const std::uint32_t j = order_[k];
          if (dist2(points_[j], q) <= r2 && visit(j)) return true;
        }
      }
    }
    return false;
  }

  /// CSR-style collector: write every index within `radius` of q into `out`
  /// (cleared first; capacity is reused — allocation-free once warm).
  /// Returns the number written. Order is the deterministic scan order of
  /// `for_each_in_radius`, NOT sorted.
  std::size_t query_radius_into(Vec2 q, double radius, std::vector<std::uint32_t>& out) const {
    out.clear();
    for_each_in_radius(q, radius, [&](std::uint32_t j) { out.push_back(j); });
    return out.size();
  }

  /// Allocating wrapper over `query_radius_into`.
  [[nodiscard]] std::vector<std::uint32_t> query_radius(Vec2 q, double radius) const {
    std::vector<std::uint32_t> out;
    query_radius_into(q, radius, out);
    return out;
  }

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::span<const Vec2> points() const { return points_; }

 private:
  [[nodiscard]] std::size_t cell_of(Vec2 p) const;

  std::vector<Vec2> points_;
  Box bounds_;
  double cell_size_;
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::vector<std::uint32_t> offsets_;  // nx*ny + 1
  std::vector<std::uint32_t> order_;    // point indices grouped by cell
};

}  // namespace sens
