// Monte-Carlo estimation of P(tile good) and the threshold searches behind
// Theorems 2.2 and 2.4.
//
// Tile goodness depends only on the points inside the tile, so the coupled
// site process is exactly iid site percolation with p = P(good); the
// construction percolates once P(good) exceeds the site threshold
// p_c ≈ 0.5927 (the paper uses 0.593). These estimators evaluate P(good)
// per parameter value and locate the crossing:
//   * UDG: P(good) is increasing in the density lambda  => bisection;
//   * NN:  with the tile scale a fixed, P(good) is increasing in k (only
//     the occupancy cap k/2 depends on k) => one batch of trials yields the
//     entire curve over k at once (NnGoodCurve).
#pragma once

#include <cstdint>
#include <vector>

#include "sens/support/stats.hpp"
#include "sens/tiles/nn_tile.hpp"
#include "sens/tiles/udg_tile.hpp"

namespace sens {

/// MC estimate of P(good) for a UDG tile at density lambda.
[[nodiscard]] Proportion udg_good_probability(const UdgTileSpec& spec, double lambda,
                                              std::size_t trials, std::uint64_t seed);

/// Smallest lambda with P(good) >= target (bisection over [lo, hi] using
/// `trials` samples per probe). This is the measured lambda_s.
[[nodiscard]] double find_udg_lambda_threshold(const UdgTileSpec& spec, double target,
                                               std::size_t trials, std::uint64_t seed,
                                               double lo = 0.25, double hi = 64.0,
                                               int steps = 24);

/// One NN tile trial result: tile occupancy and whether all nine regions
/// were occupied. Goodness at any k is N <= k/2 && occupied.
struct NnTileTrial {
  std::uint32_t occupancy = 0;
  bool regions_occupied = false;
};

/// Run `trials` independent tile samples at unit density for tile scale a.
/// The same batch evaluates every k (the regions do not depend on k).
class NnGoodCurve {
 public:
  NnGoodCurve(double a, std::size_t trials, std::uint64_t seed);

  [[nodiscard]] Proportion probability_at(std::size_t k) const;
  /// Probability that the nine regions are occupied, ignoring the cap
  /// (the k -> infinity limit; ablation A2).
  [[nodiscard]] Proportion occupancy_only() const;
  /// Smallest k with P(good) >= target, or 0 when even the cap-free
  /// probability stays below target.
  [[nodiscard]] std::size_t threshold_k(double target) const;

  [[nodiscard]] double a() const { return a_; }
  [[nodiscard]] std::size_t trials() const { return trials_.size(); }

 private:
  double a_;
  std::vector<NnTileTrial> trials_;
};

/// Golden-section search for the tile scale a maximizing P(good) at fixed k.
[[nodiscard]] double optimize_nn_a(std::size_t k, std::size_t trials, std::uint64_t seed,
                                   double a_lo = 0.4, double a_hi = 2.0, int steps = 18);

}  // namespace sens
