#include "sens/tiles/good_prob.hpp"

#include <algorithm>

#include "sens/geometry/box.hpp"
#include "sens/geograph/point_set.hpp"
#include "sens/rng/rng.hpp"
#include "sens/support/parallel.hpp"

namespace sens {

Proportion udg_good_probability(const UdgTileSpec& spec, double lambda, std::size_t trials,
                                std::uint64_t seed) {
  const Box tile = Box::square({0.0, 0.0}, spec.side);
  const std::size_t hits = parallel_reduce(
      trials, std::size_t{0},
      [&](std::size_t t) -> std::size_t {
        const std::vector<Vec2> pts = poisson_points_in_box(tile, lambda, seed, t);
        return udg_tile_good(spec, pts) ? 1 : 0;
      },
      [](std::size_t a, std::size_t b) { return a + b; });
  return Proportion{hits, trials};
}

double find_udg_lambda_threshold(const UdgTileSpec& spec, double target, std::size_t trials,
                                 std::uint64_t seed, double lo, double hi, int steps) {
  for (int s = 0; s < steps; ++s) {
    const double mid = (lo + hi) / 2.0;
    const double p =
        udg_good_probability(spec, mid, trials, mix_seed(seed, static_cast<std::uint64_t>(s))).estimate();
    if (p < target)
      lo = mid;
    else
      hi = mid;
  }
  return (lo + hi) / 2.0;
}

NnGoodCurve::NnGoodCurve(double a, std::size_t trials, std::uint64_t seed) : a_(a) {
  // Regions do not depend on k; build the spec once with a placeholder k.
  const NnTileSpec spec(a, 2);
  const Box tile = Box::square({0.0, 0.0}, spec.side());
  trials_ = parallel_map<NnTileTrial>(trials, [&](std::size_t t) {
    const std::vector<Vec2> pts = poisson_points_in_box(tile, 1.0, seed, t);
    NnTileTrial trial;
    trial.occupancy = static_cast<std::uint32_t>(pts.size());
    trial.regions_occupied = spec.regions_occupied(pts);
    return trial;
  });
}

Proportion NnGoodCurve::probability_at(std::size_t k) const {
  const std::size_t cap = k / 2;
  std::size_t hits = 0;
  for (const auto& t : trials_)
    if (t.regions_occupied && t.occupancy <= cap) ++hits;
  return Proportion{hits, trials_.size()};
}

Proportion NnGoodCurve::occupancy_only() const {
  std::size_t hits = 0;
  for (const auto& t : trials_)
    if (t.regions_occupied) ++hits;
  return Proportion{hits, trials_.size()};
}

std::size_t NnGoodCurve::threshold_k(double target) const {
  if (occupancy_only().estimate() < target) return 0;
  // P(good) is nondecreasing in k; binary search the smallest k meeting the
  // target. Occupancies are bounded; cap the search at 2*max+2.
  std::uint32_t max_occ = 0;
  for (const auto& t : trials_) max_occ = std::max(max_occ, t.occupancy);
  std::size_t lo = 1, hi = 2 * static_cast<std::size_t>(max_occ) + 2;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (probability_at(mid).estimate() >= target)
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

double optimize_nn_a(std::size_t k, std::size_t trials, std::uint64_t seed, double a_lo,
                     double a_hi, int steps) {
  auto value = [&](double a, int step) {
    return NnGoodCurve(a, trials, mix_seed(seed, static_cast<std::uint64_t>(step)))
        .probability_at(k)
        .estimate();
  };
  const double gr = 0.6180339887498949;
  double a = a_lo, b = a_hi;
  double x1 = b - gr * (b - a);
  double x2 = a + gr * (b - a);
  double f1 = value(x1, 0);
  double f2 = value(x2, 1);
  for (int s = 2; s < steps; ++s) {
    if (f1 > f2) {  // maximize
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - gr * (b - a);
      f1 = value(x1, s);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + gr * (b - a);
      f2 = value(x2, s);
    }
  }
  return (a + b) / 2.0;
}

}  // namespace sens
