#include "sens/tiles/nn_tile.hpp"

#include <stdexcept>

#include "sens/geometry/box.hpp"

namespace sens {

NnTileSpec::NnTileSpec(double a, std::size_t k) : a_(a), k_(k) {
  if (a <= 0.0) throw std::invalid_argument("NnTileSpec: a <= 0");
  if (k == 0) throw std::invalid_argument("NnTileSpec: k == 0");
  for (int dir = 0; dir < 4; ++dir) {
    const DiskFamilyRegion region = make_e_region(dir);
    // Interior seed: midway between C0 and the C disk, per Figure 5.
    const Vec2 seed = kDirVec[static_cast<std::size_t>(dir)] * (2.0 * a_);
    ConvexPolygon poly = region.polygonize(seed, 6.0 * a_, 256);
    // Relay regions must live inside their own tile for local computability;
    // clip defensively (a no-op for the paper geometry).
    e_polygons_[static_cast<std::size_t>(dir)] =
        poly.clip_box(Box::square({0.0, 0.0}, side()));
  }
}

DiskFamilyRegion NnTileSpec::make_e_region(int dir) const {
  const Vec2 u = kDirVec[static_cast<std::size_t>(dir)];
  const Box own = Box::square({0.0, 0.0}, side());
  const Box neighbor = Box::square(u * side(), side());
  const Box domain = own.united(neighbor);
  std::vector<DiskFamilyGenerator> gens;
  gens.push_back(DiskFamilyGenerator::inscribed(Circle{{0.0, 0.0}, a_}, domain));
  gens.push_back(DiskFamilyGenerator::inscribed(Circle{c_center(dir), a_}, domain));
  return DiskFamilyRegion(std::move(gens));
}

bool NnTileSpec::in_e_region_exact(Vec2 local, int dir, double eps) const {
  if (!in_tile(local)) return false;
  return make_e_region(dir).contains(local, eps);
}

unsigned NnTileSpec::region_mask(Vec2 local) const {
  unsigned mask = 0;
  if (in_c0(local)) mask |= 1u;
  for (int dir = 0; dir < 4; ++dir) {
    if (in_c_region(local, dir)) mask |= 1u << (dir + 1);
    if (in_e_region(local, dir)) mask |= 1u << (dir + 5);
  }
  return mask;
}

bool NnTileSpec::regions_occupied(std::span<const Vec2> local_points) const {
  constexpr unsigned kAll = 0x1FFu;  // 9 regions
  unsigned mask = 0;
  for (const Vec2 p : local_points) {
    mask |= region_mask(p);
    if (mask == kAll) return true;
  }
  return mask == kAll;
}

bool NnTileSpec::good(std::span<const Vec2> local_points) const {
  if (local_points.size() > max_occupancy()) return false;
  return regions_occupied(local_points);
}

}  // namespace sens
