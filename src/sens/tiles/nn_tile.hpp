// Tile geometry for NN-SENS(2, k) (Section 2.2).
//
// A tile of side 10a carries nine regions: five disks of radius a —
// C0 at the center and Cr, Cl, Ct, Cb at (+-4a, 0), (0, +-4a) — and four
// relay regions Er, El, Et, Eb. The relay region toward direction u is
//     E_u = { p : d(p, q) <= R(q) for all q in C0 ∪ C_u },
// where R(q) is the radius of the largest disk centered at q that stays
// inside the union of this tile and its u-neighbor (Figure 5). E_u is an
// intersection of disks, hence convex; we polygonize it once per spec
// (sens/geometry/disk_family.hpp) so membership tests are O(log n).
//
// Goodness (Section 2.2): the tile holds at most k/2 points of the process
// AND all nine regions are occupied. With both a tile and its neighbor
// good, the k-NN graph is guaranteed to contain the 5-edge path
//     rep -> E_u relay -> C_u relay -> neighbor C relay -> neighbor E relay -> neighbor rep
// (Claim 2.3; verified against actual k-NN selections by experiment E5).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "sens/geometry/circle.hpp"
#include "sens/geometry/disk_family.hpp"
#include "sens/geometry/polygon.hpp"
#include "sens/tiles/udg_tile.hpp"  // kDirVec / opposite_dir

namespace sens {

class NnTileSpec {
 public:
  /// `a` is the region-disk radius (tile side = 10a); `k` the NN degree.
  NnTileSpec(double a, std::size_t k);

  /// The paper's Theorem 2.4 parameters: k = 188, a = 0.893 (unit density;
  /// the NN model is scale free so density 1 is WLOG).
  [[nodiscard]] static NnTileSpec paper() { return NnTileSpec(0.893, 188); }

  [[nodiscard]] double a() const { return a_; }
  [[nodiscard]] double side() const { return 10.0 * a_; }
  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] std::size_t max_occupancy() const { return k_ / 2; }

  // --- regions, tile-local coordinates (origin = tile center) ---

  [[nodiscard]] bool in_tile(Vec2 local) const {
    const double h = side() / 2.0;
    return local.x >= -h && local.x < h && local.y >= -h && local.y < h;
  }
  [[nodiscard]] bool in_c0(Vec2 local) const { return local.norm2() <= a_ * a_; }
  /// C disk toward direction dir (center 4a * u, radius a).
  [[nodiscard]] bool in_c_region(Vec2 local, int dir) const {
    return dist2(local, c_center(dir)) <= a_ * a_;
  }
  /// Relay region E toward direction dir (polygonized disk-family region).
  [[nodiscard]] bool in_e_region(Vec2 local, int dir) const {
    return e_polygons_[static_cast<std::size_t>(dir)].contains(local);
  }

  [[nodiscard]] Vec2 c_center(int dir) const { return kDirVec[static_cast<std::size_t>(dir)] * (4.0 * a_); }

  /// Slow, oracle-exact membership (used to validate the polygonization).
  [[nodiscard]] bool in_e_region_exact(Vec2 local, int dir, double eps = 1e-9) const;

  [[nodiscard]] const ConvexPolygon& e_polygon(int dir) const {
    return e_polygons_[static_cast<std::size_t>(dir)];
  }
  [[nodiscard]] double e_region_area() const { return e_polygons_[0].area(); }
  [[nodiscard]] double c_region_area() const { return Circle{{0, 0}, a_}.area(); }

  /// Occupancy bitmask: bit 0 = C0, bits 1..4 = C dir, bits 5..8 = E dir.
  [[nodiscard]] unsigned region_mask(Vec2 local) const;

  /// Goodness: |points| <= k/2 and all nine regions occupied.
  [[nodiscard]] bool good(std::span<const Vec2> local_points) const;
  /// Variant without the occupancy cap (ablation A2).
  [[nodiscard]] bool regions_occupied(std::span<const Vec2> local_points) const;

 private:
  [[nodiscard]] DiskFamilyRegion make_e_region(int dir) const;

  double a_;
  std::size_t k_;
  std::array<ConvexPolygon, 4> e_polygons_;
};

/// Recompute the four E-region polygons for disk radius `a` straight from
/// the disk-family oracle, bypassing the process-wide polygon cache (slow:
/// ~0.7 s of ray casting). Used by tools/gen_nn_polygons to regenerate the
/// baked table in nn_tile_polygons.inc and by the test that proves the baked
/// table is bit-identical to a fresh computation.
[[nodiscard]] std::array<ConvexPolygon, 4> compute_nn_e_polygons(double a);

/// The `a` keys baked into nn_tile_polygons.inc (exact doubles, in baked
/// order). Tests assert this set covers every `a` the suites construct
/// repeatedly, so a new hot value fails loudly instead of silently paying
/// the ~0.7 s polygonization in every fresh gtest process
/// (NnTilePolygonTable.BakedTableCoversEveryTestedA).
[[nodiscard]] std::vector<double> baked_nn_polygon_a_values();

}  // namespace sens
