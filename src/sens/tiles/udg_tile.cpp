#include "sens/tiles/udg_tile.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "sens/geometry/box.hpp"
#include "sens/geometry/circle_clip.hpp"
#include "sens/geometry/polygon.hpp"

namespace sens {

UdgTileSpec UdgTileSpec::paper() { return UdgTileSpec{4.0 / 3.0, 0.5, 1.0, 1.0, "paper"}; }

UdgTileSpec UdgTileSpec::strict() { return UdgTileSpec{0.84, 0.35, 0.65, 1.0, "strict"}; }

UdgTileSpec UdgTileSpec::custom(double side, double rep_radius, double reach) {
  return UdgTileSpec{side, rep_radius, reach, 1.0, "custom"};
}

bool UdgTileSpec::in_relay_region(Vec2 local, int dir) const {
  if (!in_tile(local)) return false;
  if (in_rep_region(local)) return false;
  const Vec2 neighbor_center = kDirVec[static_cast<std::size_t>(dir)] * side;
  const double r2 = reach * reach;
  return local.norm2() <= r2 && dist2(local, neighbor_center) <= r2;
}

double UdgTileSpec::rep_region_area() const {
  // C0 may poke out of the tile only if rep_radius > side/2; all presets
  // keep it inside, but clip for safety.
  const Box tile = Box::square({0.0, 0.0}, side);
  return disk_polygon_area(Circle{{0.0, 0.0}, rep_radius}, box_polygon(tile));
}

double UdgTileSpec::relay_region_area() const {
  // Lens of the two reach-disks, clipped to the tile, minus the C0 overlap.
  // The lens is convex; polygonize it finely and clip.
  const Vec2 nc = kDirVec[0] * side;
  const Circle own{{0.0, 0.0}, reach};
  const Circle nbr{nc, reach};
  const double d = side;
  if (d >= 2.0 * reach) return 0.0;  // empty lens

  // Polygonize the lens by intersecting two finely-sampled disk polygons:
  // clip own-circle polygon against the neighbor disk via many half-planes
  // is awkward; instead sample the lens boundary directly.
  // Lens = points within `reach` of both centers. Its boundary consists of
  // two circular arcs meeting at (d/2, +-h), h = sqrt(reach^2 - d^2/4).
  const double h = std::sqrt(reach * reach - d * d / 4.0);
  constexpr int kArcSteps = 256;
  std::vector<Vec2> verts;
  verts.reserve(2 * kArcSteps);
  // Arc of the *neighbor* disk bounds the lens on the left... the lens's
  // right boundary is the own-circle arc (centered at origin), the left
  // boundary is the neighbor-circle arc. Walk CCW: start at (d/2, -h),
  // along own-circle arc to (d/2, +h), then along neighbor arc back down.
  const double phi0 = std::atan2(-h, d / 2.0);
  const double phi1 = std::atan2(h, d / 2.0);
  for (int s = 0; s <= kArcSteps; ++s) {
    const double t = phi0 + (phi1 - phi0) * static_cast<double>(s) / kArcSteps;
    verts.push_back(reach * unit_vec(t));
  }
  const double psi0 = std::atan2(h, -d / 2.0);
  double psi1 = std::atan2(-h, -d / 2.0);
  if (psi1 < psi0) psi1 += 2.0 * std::numbers::pi;  // sweep through pi (the far side)
  for (int s = 1; s < kArcSteps; ++s) {
    const double t = psi0 + (psi1 - psi0) * static_cast<double>(s) / kArcSteps;
    verts.push_back(nc + reach * unit_vec(t));
  }
  ConvexPolygon lens{std::move(verts)};
  const ConvexPolygon clipped = lens.clip_box(Box::square({0.0, 0.0}, side));
  if (clipped.empty()) return 0.0;
  const double c0_overlap = disk_polygon_area(Circle{{0.0, 0.0}, rep_radius}, clipped);
  return clipped.area() - c0_overlap;
}

bool UdgTileSpec::guarantees_paths() const {
  // (i) every relay within link_radius of every possible rep:
  //     relay in disk(c, reach), rep in disk(c, rep_radius)
  //     => worst pair distance reach + rep_radius... that bound is loose;
  //     the tight requirement is reach <= link_radius - rep_radius.
  if (reach > link_radius - rep_radius + 1e-12) return false;
  // (ii) facing relays live in one lens of radius `reach` with centers
  //      `side` apart; its diameter must be <= link_radius.
  if (side >= 2.0 * reach) return false;  // empty lens
  const double h = std::sqrt(reach * reach - side * side / 4.0);
  const double chord = 2.0 * h;                  // vertical extent
  const double horiz = 2.0 * (reach - side / 2.0);  // horizontal extent
  if (std::max(chord, horiz) > link_radius + 1e-12) return false;
  // (iii) relay region non-empty: the lens must extend beyond C0.
  if (reach <= rep_radius) return false;
  if (relay_region_area() <= 1e-9) return false;
  return true;
}

unsigned udg_region_mask(const UdgTileSpec& spec, Vec2 local) {
  unsigned mask = 0;
  if (spec.in_rep_region(local) && spec.in_tile(local)) mask |= 1u;
  for (int dir = 0; dir < 4; ++dir)
    if (spec.in_relay_region(local, dir)) mask |= 1u << (dir + 1);
  return mask;
}

bool udg_tile_good(const UdgTileSpec& spec, std::span<const Vec2> local_points) {
  unsigned mask = 0;
  for (const Vec2 p : local_points) {
    mask |= udg_region_mask(spec, p);
    if (mask == 0b11111u) return true;
  }
  return mask == 0b11111u;
}

}  // namespace sens
