// Classification of a point set into good/bad tiles with per-region leader
// election, materializing the coupling phi of Section 2: the output of
// classification *is* a site-percolation configuration (SiteGrid), and the
// elected representatives/relays are the overlay nodes.
//
// Leader election here is the centralized equivalent of the distributed
// flood-min protocol in sens/runtime: the member with the smallest point
// index wins. The runtime integration test asserts the two agree.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "sens/perc/site_grid.hpp"
#include "sens/tiles/nn_tile.hpp"
#include "sens/tiles/tiling.hpp"
#include "sens/tiles/udg_tile.hpp"

namespace sens {

inline constexpr std::uint32_t kNoNode = 0xffffffffu;

/// Elected nodes of one UDG tile: representative + one relay per direction.
struct UdgTileNodes {
  std::uint32_t rep = kNoNode;
  std::array<std::uint32_t, 4> relay{kNoNode, kNoNode, kNoNode, kNoNode};
};

/// Elected nodes of one NN tile: representative + C relay and E relay per
/// direction (Figure 5's nine regions).
struct NnTileNodes {
  std::uint32_t rep = kNoNode;
  std::array<std::uint32_t, 4> c_relay{kNoNode, kNoNode, kNoNode, kNoNode};
  std::array<std::uint32_t, 4> e_relay{kNoNode, kNoNode, kNoNode, kNoNode};
};

struct UdgClassification {
  UdgTileSpec spec;
  TileWindow window;
  std::vector<std::uint8_t> good;      ///< per tile (window.index order)
  std::vector<UdgTileNodes> nodes;     ///< per tile
  std::vector<std::uint32_t> occupancy;  ///< points per tile

  [[nodiscard]] SiteGrid site_grid() const;
  [[nodiscard]] std::size_t good_count() const;
};

struct NnClassification {
  double a = 0.0;
  std::size_t k = 0;
  TileWindow window;
  std::vector<std::uint8_t> good;
  std::vector<NnTileNodes> nodes;
  std::vector<std::uint32_t> occupancy;

  [[nodiscard]] SiteGrid site_grid() const;
  [[nodiscard]] std::size_t good_count() const;
};

/// Classify `points` over the tile window. Points outside the window are
/// ignored (they belong to the buffer).
[[nodiscard]] UdgClassification classify_udg(const UdgTileSpec& spec, std::span<const Vec2> points,
                                             TileWindow window);

[[nodiscard]] NnClassification classify_nn(const NnTileSpec& spec, std::span<const Vec2> points,
                                           TileWindow window);

}  // namespace sens
