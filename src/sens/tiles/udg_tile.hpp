// Tile geometry for UDG-SENS(2, lambda) (Section 2.1).
//
// Each tile of side `a` carries a representative region C0 (disk of radius
// `rep_radius` at the tile center) and four relay regions, one per
// neighboring tile. A relay region toward direction u is the lens
//     disk(c, reach) ∩ disk(c + a*u, reach) ∩ tile \ C0,
// i.e. points simultaneously within `reach` of this tile's center and the
// neighbor's center. See DESIGN.md §1.1: the paper's literal definition is
// vacuous, so the lens is parameterized and shipped in two presets:
//   paper()  — a = 4/3, r0 = 1/2, reach = 1 (the figure-3 reading; no
//              worst-case edge guarantee, gap measured by experiment E4);
//   strict() — a = 0.84, r0 = 0.35, reach = 1 - r0 (goodness of adjacent
//              tiles provably yields a 3-hop path with every edge <= 1).
#pragma once

#include <array>
#include <span>
#include <string>

#include "sens/geometry/circle.hpp"
#include "sens/geometry/vec2.hpp"

namespace sens {

/// Direction index convention used across the tile code:
/// 0 = +x (right), 1 = -x (left), 2 = +y (top), 3 = -y (bottom).
inline constexpr std::array<Vec2, 4> kDirVec{Vec2{1.0, 0.0}, Vec2{-1.0, 0.0}, Vec2{0.0, 1.0},
                                             Vec2{0.0, -1.0}};
/// Opposite direction (right<->left, top<->bottom).
[[nodiscard]] constexpr int opposite_dir(int dir) { return dir ^ 1; }

struct UdgTileSpec {
  double side = 4.0 / 3.0;    ///< tile side a
  double rep_radius = 0.5;    ///< C0 radius r0
  double reach = 1.0;         ///< lens radius R
  double link_radius = 1.0;   ///< UDG connection radius (paper: 1)
  std::string name = "paper";

  [[nodiscard]] static UdgTileSpec paper();
  [[nodiscard]] static UdgTileSpec strict();
  /// Free-form spec for the geometry ablation (A1).
  [[nodiscard]] static UdgTileSpec custom(double side, double rep_radius, double reach);

  // --- region tests in tile-local coordinates (origin = tile center) ---

  [[nodiscard]] bool in_tile(Vec2 local) const {
    const double h = side / 2.0;
    return local.x >= -h && local.x < h && local.y >= -h && local.y < h;
  }
  [[nodiscard]] bool in_rep_region(Vec2 local) const {
    return local.norm2() <= rep_radius * rep_radius;
  }
  [[nodiscard]] bool in_relay_region(Vec2 local, int dir) const;

  // --- analytics ---

  [[nodiscard]] double rep_region_area() const;
  /// Exact area of one relay region (lens ∩ tile \ C0).
  [[nodiscard]] double relay_region_area() const;

  /// True when the spec carries the worst-case guarantee of Claim 2.1:
  /// every rep-relay pair and every facing relay-relay pair is within
  /// link_radius, and the relay regions are non-empty.
  [[nodiscard]] bool guarantees_paths() const;

  /// Upper bound on the Claim 2.1 stretch constant c_u: worst-case 3-hop
  /// path length over the minimum rep-rep separation... computed from the
  /// geometry (3 * link_radius / (side - 2 * rep_radius) is a simple bound;
  /// we report 3 hops of at most link_radius each like the paper).
  [[nodiscard]] double max_hop_length() const { return link_radius; }
};

/// Tile goodness (Section 2.1): C0 and all four relay regions contain at
/// least one of `local_points`.
[[nodiscard]] bool udg_tile_good(const UdgTileSpec& spec, std::span<const Vec2> local_points);

/// Region occupancy bitmask: bit 0 = C0, bits 1..4 = relay dir 0..3.
[[nodiscard]] unsigned udg_region_mask(const UdgTileSpec& spec, Vec2 local);

}  // namespace sens
