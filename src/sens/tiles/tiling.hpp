// Square tiling of R^2 and the coupling map phi between tiles and Z^2 sites
// (Section 2: "We associate each tile in R^2 with a point in Z^2").
#pragma once

#include <cstdint>
#include <cmath>

#include "sens/geometry/box.hpp"
#include "sens/geometry/vec2.hpp"
#include "sens/perc/site_grid.hpp"

namespace sens {

/// Integer tile coordinates (tile (i, j) covers [i*a, (i+1)*a) x [j*a, (j+1)*a)).
struct TileCoord {
  std::int64_t i = 0;
  std::int64_t j = 0;
  constexpr bool operator==(const TileCoord&) const = default;
};

class Tiling {
 public:
  explicit Tiling(double side) : side_(side) {}

  [[nodiscard]] double side() const { return side_; }

  [[nodiscard]] TileCoord tile_of(Vec2 p) const {
    return {static_cast<std::int64_t>(std::floor(p.x / side_)),
            static_cast<std::int64_t>(std::floor(p.y / side_))};
  }

  [[nodiscard]] Box tile_box(TileCoord t) const {
    const Vec2 lo{static_cast<double>(t.i) * side_, static_cast<double>(t.j) * side_};
    return {lo, {lo.x + side_, lo.y + side_}};
  }

  [[nodiscard]] Vec2 tile_center(TileCoord t) const { return tile_box(t).center(); }

  /// Local coordinates of p relative to the center of its tile.
  [[nodiscard]] Vec2 local(Vec2 p, TileCoord t) const { return p - tile_center(t); }

 private:
  double side_;
};

/// A rectangular block of tiles [i0, i0+w) x [j0, j0+h) identified with the
/// site window [0, w) x [0, h): phi(tile (i,j)) = site (i - i0, j - j0).
struct TileWindow {
  std::int64_t i0 = 0;
  std::int64_t j0 = 0;
  std::int32_t width = 0;
  std::int32_t height = 0;

  [[nodiscard]] bool contains(TileCoord t) const {
    return t.i >= i0 && t.i < i0 + width && t.j >= j0 && t.j < j0 + height;
  }
  [[nodiscard]] Site phi(TileCoord t) const {
    return {static_cast<std::int32_t>(t.i - i0), static_cast<std::int32_t>(t.j - j0)};
  }
  [[nodiscard]] TileCoord phi_inverse(Site s) const { return {i0 + s.x, j0 + s.y}; }
  [[nodiscard]] std::size_t tile_count() const {
    return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  }
  [[nodiscard]] std::size_t index(TileCoord t) const {
    const Site s = phi(t);
    return static_cast<std::size_t>(s.y) * static_cast<std::size_t>(width) +
           static_cast<std::size_t>(s.x);
  }

  /// Geometric bounds of the whole window under `tiling`.
  [[nodiscard]] Box bounds(const Tiling& tiling) const {
    const double a = tiling.side();
    return {{static_cast<double>(i0) * a, static_cast<double>(j0) * a},
            {static_cast<double>(i0 + width) * a, static_cast<double>(j0 + height) * a}};
  }
};

}  // namespace sens
