#include "sens/tiles/classify.hpp"

#include <algorithm>

namespace sens {

namespace {
void elect(std::uint32_t& slot, std::uint32_t candidate) {
  slot = std::min(slot, candidate);
}
}  // namespace

SiteGrid UdgClassification::site_grid() const {
  SiteGrid grid(window.width, window.height);
  for (std::size_t idx = 0; idx < good.size(); ++idx)
    if (good[idx]) grid.set_open(grid.site_at(idx), true);
  return grid;
}

std::size_t UdgClassification::good_count() const {
  return static_cast<std::size_t>(std::count(good.begin(), good.end(), std::uint8_t{1}));
}

SiteGrid NnClassification::site_grid() const {
  SiteGrid grid(window.width, window.height);
  for (std::size_t idx = 0; idx < good.size(); ++idx)
    if (good[idx]) grid.set_open(grid.site_at(idx), true);
  return grid;
}

std::size_t NnClassification::good_count() const {
  return static_cast<std::size_t>(std::count(good.begin(), good.end(), std::uint8_t{1}));
}

UdgClassification classify_udg(const UdgTileSpec& spec, std::span<const Vec2> points,
                               TileWindow window) {
  UdgClassification out;
  out.spec = spec;
  out.window = window;
  out.nodes.assign(window.tile_count(), UdgTileNodes{});
  out.occupancy.assign(window.tile_count(), 0);
  std::vector<std::uint8_t> mask(window.tile_count(), 0);

  const Tiling tiling(spec.side);
  for (std::uint32_t p = 0; p < points.size(); ++p) {
    const TileCoord t = tiling.tile_of(points[p]);
    if (!window.contains(t)) continue;
    const std::size_t idx = window.index(t);
    ++out.occupancy[idx];
    const Vec2 local = tiling.local(points[p], t);
    const unsigned m = udg_region_mask(spec, local);
    if (m == 0) continue;
    mask[idx] = static_cast<std::uint8_t>(mask[idx] | m);
    UdgTileNodes& nodes = out.nodes[idx];
    if (m & 1u) elect(nodes.rep, p);
    for (int dir = 0; dir < 4; ++dir)
      if (m & (1u << (dir + 1))) elect(nodes.relay[static_cast<std::size_t>(dir)], p);
  }

  out.good.assign(window.tile_count(), 0);
  for (std::size_t idx = 0; idx < out.good.size(); ++idx)
    out.good[idx] = mask[idx] == 0b11111u ? 1 : 0;
  return out;
}

NnClassification classify_nn(const NnTileSpec& spec, std::span<const Vec2> points,
                             TileWindow window) {
  NnClassification out;
  out.a = spec.a();
  out.k = spec.k();
  out.window = window;
  out.nodes.assign(window.tile_count(), NnTileNodes{});
  out.occupancy.assign(window.tile_count(), 0);
  std::vector<std::uint16_t> mask(window.tile_count(), 0);

  const Tiling tiling(spec.side());
  for (std::uint32_t p = 0; p < points.size(); ++p) {
    const TileCoord t = tiling.tile_of(points[p]);
    if (!window.contains(t)) continue;
    const std::size_t idx = window.index(t);
    ++out.occupancy[idx];
    const Vec2 local = tiling.local(points[p], t);
    const unsigned m = spec.region_mask(local);
    mask[idx] = static_cast<std::uint16_t>(mask[idx] | m);
    if (m == 0) continue;
    NnTileNodes& nodes = out.nodes[idx];
    if (m & 1u) elect(nodes.rep, p);
    for (int dir = 0; dir < 4; ++dir) {
      if (m & (1u << (dir + 1))) elect(nodes.c_relay[static_cast<std::size_t>(dir)], p);
      if (m & (1u << (dir + 5))) elect(nodes.e_relay[static_cast<std::size_t>(dir)], p);
    }
  }

  out.good.assign(window.tile_count(), 0);
  for (std::size_t idx = 0; idx < out.good.size(); ++idx) {
    const bool occupied = mask[idx] == 0x1FFu;
    const bool under_cap = out.occupancy[idx] <= spec.max_occupancy();
    out.good[idx] = (occupied && under_cap) ? 1 : 0;
  }
  return out;
}

}  // namespace sens
