// E8 — Lemma 1.1 (Antal-Pisztora): chemical distance in supercritical
// percolation. P(D_p(x,y) > a) < exp(-c a) for a > rho * D(x,y); this bench
// measures rho = E[D_p/D] and the exceedance tail at several p > p_c.
#include <vector>

#include "bench_common.hpp"
#include "sens/perc/chemical.hpp"
#include "sens/rng/rng.hpp"
#include "sens/support/stats.hpp"

using namespace sens;
using namespace sens::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("E8 / Lemma 1.1 (Antal-Pisztora chemical distance)",
             "P(D_p > a) < e^{-c a} for a > rho * D; rho depends only on p");

  const std::int32_t n = env.scale > 1 ? 256 : 160;
  const std::size_t pairs = 120 * env.scale;

  Table t({"p", "pairs", "mean D_p/D", "p95 D_p/D", "max D_p/D"});
  Table tail({"p", "P(ratio>1.1)", "P(ratio>1.3)", "P(ratio>1.6)", "P(ratio>2.0)"});
  for (const double p : {0.65, 0.70, 0.75, 0.85, 0.95}) {
    const SiteGrid grid = SiteGrid::random(n, n, p, mix_seed(env.seed, static_cast<std::uint64_t>(p * 1e4)));
    const ClusterLabels labels(grid);
    const auto samples = sample_chemical_distances(grid, labels, n / 4, pairs, env.seed + 3);
    RunningStats ratio;
    std::vector<double> ratios;
    for (const auto& s : samples) {
      ratio.add(s.ratio());
      ratios.push_back(s.ratio());
    }
    if (ratios.empty()) continue;
    t.add_row({Table::fmt(p, 3), Table::fmt_int(static_cast<long long>(ratios.size())),
               Table::fmt(ratio.mean(), 4), Table::fmt(quantile(ratios, 0.95), 4),
               Table::fmt(ratio.max(), 4)});
    auto frac = [&](double a) {
      std::size_t c = 0;
      for (const double r : ratios) c += r > a;
      return static_cast<double>(c) / static_cast<double>(ratios.size());
    };
    tail.add_row({Table::fmt(p, 3), Table::fmt(frac(1.1), 4), Table::fmt(frac(1.3), 4),
                  Table::fmt(frac(1.6), 4), Table::fmt(frac(2.0), 4)});
  }
  env.emit("chemical/lattice distance ratio (rho estimate; -> 1 as p -> 1)", t);
  env.emit("exceedance tail (should collapse toward 0 as the ratio grows)", tail);

  env.footer();
  return 0;
}
