// E6 — Property P1 (sparsity): the SENS overlays have maximum degree 4
// (representatives 4, relays 2, shared-role nodes still <= 4).
#include "bench_common.hpp"
#include "sens/core/metrics.hpp"
#include "sens/core/nn_sens.hpp"
#include "sens/core/udg_sens.hpp"

using namespace sens;
using namespace sens::bench;

namespace {
void add_rows(Table& t, const std::string& model, const DegreeReport& deg) {
  t.add_row({model, Table::fmt_int(static_cast<long long>(deg.nodes)),
             Table::fmt(deg.mean_degree, 4), Table::fmt_int(static_cast<long long>(deg.max_degree)),
             Table::fmt_int(static_cast<long long>(deg.histogram[1])),
             Table::fmt_int(static_cast<long long>(deg.histogram[2])),
             Table::fmt_int(static_cast<long long>(deg.histogram[3])),
             Table::fmt_int(static_cast<long long>(deg.histogram[4]))});
}
}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("E6 / Property P1 (sparsity)", "overlay maximum degree = 4");

  Table t({"model", "overlay nodes", "mean deg", "max deg", "#deg1", "#deg2", "#deg3", "#deg4"});

  const int udg_tiles = env.scale > 1 ? 96 : 48;
  const UdgSensResult udg = build_udg_sens(UdgTileSpec::strict(), 25.0, udg_tiles, udg_tiles, env.seed);
  add_rows(t, "UDG-SENS (strict, lambda=25)", overlay_degree_report(udg.overlay));

  const UdgSensResult udg_p = build_udg_sens(UdgTileSpec::paper(), 12.0, udg_tiles, udg_tiles, env.seed + 1);
  add_rows(t, "UDG-SENS (paper, lambda=12)", overlay_degree_report(udg_p.overlay));

  const int nn_tiles = env.scale > 1 ? 20 : 12;
  const NnSensResult nn = build_nn_sens(NnTileSpec::paper(), nn_tiles, nn_tiles, env.seed + 2);
  add_rows(t, "NN-SENS (a=0.893, k=188)", overlay_degree_report(nn.overlay));

  env.emit("overlay degree distribution", t);

  // For contrast: the base graphs these overlays were carved from.
  Table base({"base graph", "mean degree"});
  base.add_row({"UDG(2, 25) (strict window)", Table::fmt(25.0 * 3.14159265, 4)});
  base.add_row({"NN(2, 188)", ">= 188"});
  env.emit("underlying interconnection density (for contrast)", base);

  env.footer();
  return 0;
}
