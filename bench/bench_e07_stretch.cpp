// E7 — Theorem 3.2 / Property P2: constant stretch with exponential tails.
//
// Samples rep pairs of the giant SENS component and reports Euclidean
// length stretch, hop-per-lattice-distance ratios, and the exceedance tail
// P(hops > alpha * D) whose exponential decay Theorem 3.2 asserts.
#include <vector>

#include "bench_common.hpp"
#include "sens/core/metrics.hpp"
#include "sens/core/nn_sens.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/support/stats.hpp"

using namespace sens;
using namespace sens::bench;

namespace {

void stretch_report(BenchEnv& env, const std::string& model, const Overlay& overlay,
                    std::size_t pairs) {
  const auto samples = sample_overlay_stretch(overlay, pairs, env.seed + 7);
  RunningStats len_stretch, hop_ratio;
  std::vector<double> ratios, lens;
  for (const auto& s : samples) {
    if (s.lattice < 3) continue;
    len_stretch.add(s.length_stretch());
    hop_ratio.add(s.hop_per_lattice());
    ratios.push_back(s.hop_per_lattice());
    lens.push_back(s.length_stretch());
  }
  Table t({"metric", "mean", "p95", "max"});
  if (!ratios.empty()) {
    t.add_row({"Euclidean length stretch (path len / straight line)",
               Table::fmt(len_stretch.mean(), 4), Table::fmt(quantile(lens, 0.95), 4),
               Table::fmt(len_stretch.max(), 4)});
    t.add_row({"overlay hops per lattice distance D",
               Table::fmt(hop_ratio.mean(), 4), Table::fmt(quantile(ratios, 0.95), 4),
               Table::fmt(hop_ratio.max(), 4)});
  }
  env.emit(model + " — stretch over " + Table::fmt_int(static_cast<long long>(ratios.size())) +
               " rep pairs",
           t);

  // Exceedance tail: fraction of pairs with hops > alpha * D.
  Table tail({"alpha", "P(hops > alpha*D)"});
  for (const double alpha : {2.0, 2.5, 3.0, 3.5, 4.0, 5.0}) {
    std::size_t exceed = 0;
    for (const double r : ratios) exceed += r > alpha;
    tail.add_row({Table::fmt(alpha, 3),
                  Table::fmt(static_cast<double>(exceed) /
                                 static_cast<double>(std::max<std::size_t>(1, ratios.size())),
                             4)});
  }
  env.emit(model + " — exceedance tail (Theorem 3.2: exponential decay)", tail);
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("E7 / Theorem 3.2, P2 (constant stretch)",
             "d_SENS(x,y) <= alpha * D(x,y) except with exponentially small probability");

  const int udg_tiles = env.scale > 1 ? 96 : 56;
  const UdgSensResult udg = build_udg_sens(UdgTileSpec::strict(), 25.0, udg_tiles, udg_tiles, env.seed);
  stretch_report(env, "UDG-SENS (strict, lambda=25)", udg.overlay, 300 * env.scale);

  const int nn_tiles = env.scale > 1 ? 20 : 12;
  const NnSensResult nn = build_nn_sens(NnTileSpec::paper(), nn_tiles, nn_tiles, env.seed + 1);
  stretch_report(env, "NN-SENS (a=0.893, k=188)", nn.overlay, 150 * env.scale);

  env.footer();
  return 0;
}
