// M — google-benchmark microbenchmarks for the computational kernels:
// point-process sampling, graph builders, spatial queries, cluster labeling,
// tile classification, overlay construction and mesh routing.
#include <benchmark/benchmark.h>

#include "sens/core/udg_sens.hpp"
#include "sens/geograph/knn.hpp"
#include "sens/geograph/point_set.hpp"
#include "sens/geograph/udg.hpp"
#include "sens/perc/clusters.hpp"
#include "sens/perc/mesh_router.hpp"
#include "sens/spatial/grid_index.hpp"
#include "sens/spatial/grid_knn.hpp"
#include "sens/spatial/kdtree.hpp"
#include "sens/support/parallel.hpp"
#include "sens/tiles/classify.hpp"
#include "sens/tiles/good_prob.hpp"

namespace {

using namespace sens;

void BM_PoissonPointSet(benchmark::State& state) {
  const double side = static_cast<double>(state.range(0));
  const Box w{{0.0, 0.0}, {side, side}};
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(poisson_point_set(w, 2.0, seed++).points);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(static_cast<double>(state.iterations()) * 2.0 * side * side));
}
BENCHMARK(BM_PoissonPointSet)->Arg(16)->Arg(64);

void BM_BuildUdg(benchmark::State& state) {
  const double side = static_cast<double>(state.range(0));
  const Box w{{0.0, 0.0}, {side, side}};
  const PointSet ps = poisson_point_set(w, 4.0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_udg(ps.points, w, 1.0).graph.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ps.size()));
}
BENCHMARK(BM_BuildUdg)->Arg(16)->Arg(48);

void BM_BuildKnnGraph(benchmark::State& state) {
  const Box w{{0.0, 0.0}, {32.0, 32.0}};
  const PointSet ps = poisson_point_set(w, 2.0, 9);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_knn_graph(ps.points, k).graph.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ps.size()));
}
BENCHMARK(BM_BuildKnnGraph)->Arg(8)->Arg(32);

void BM_KdTreeQuery(benchmark::State& state) {
  const Box w{{0.0, 0.0}, {64.0, 64.0}};
  const PointSet ps = poisson_point_set(w, 2.0, 11);
  const KdTree tree(ps.points);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.nearest(ps.points[i % ps.size()], 16, static_cast<std::uint32_t>(i % ps.size())));
    ++i;
  }
}
BENCHMARK(BM_KdTreeQuery);

void BM_KdTreeQueryScratch(benchmark::State& state) {
  const Box w{{0.0, 0.0}, {64.0, 64.0}};
  const PointSet ps = poisson_point_set(w, 2.0, 11);
  const KdTree tree(ps.points);
  KdTree::QueryScratch scratch;
  std::vector<std::uint32_t> out;
  std::uint32_t i = 0;
  for (auto _ : state) {
    tree.nearest_into(ps.points[i % ps.size()], 16, static_cast<std::uint32_t>(i % ps.size()),
                      scratch, out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
}
BENCHMARK(BM_KdTreeQueryScratch);

// The k-NN selection kernel, seed shape (PR 2): one allocating `nearest`
// call per point, results in a nested vector<vector>. Serial loop so the
// ratio against BM_KnnSelectScratch isolates the per-query cost.
void BM_KnnSelectAlloc(benchmark::State& state) {
  const Box w{{0.0, 0.0}, {32.0, 32.0}};
  const PointSet ps = poisson_point_set(w, 2.0, 9);
  const KdTree tree(ps.points);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<std::vector<std::uint32_t>> out(ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i) {
      out[i] = tree.nearest(ps.points[i], k, static_cast<std::uint32_t>(i));
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ps.size()));
}
BENCHMARK(BM_KnnSelectAlloc)->Arg(8)->Arg(32)->Arg(188);

// Same kernel, allocation-free batched shape: `GridKnn::nearest_into` with
// one scratch, writing flat slices (what `knn_selections_flat` runs per
// chunk). Returns identical neighbor lists to the kd-tree path.
void BM_KnnSelectScratch(benchmark::State& state) {
  const Box w{{0.0, 0.0}, {32.0, 32.0}};
  const PointSet ps = poisson_point_set(w, 2.0, 9);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const GridKnn index(ps.points, k);
  const std::size_t deg = std::min(k, ps.size() - 1);
  FlatAdjacency adj;
  adj.offsets.resize(ps.size() + 1);
  adj.neighbors.resize(ps.size() * deg);
  GridKnn::QueryScratch scratch;
  std::vector<std::uint32_t> found;
  for (auto _ : state) {
    for (std::size_t i = 0; i < ps.size(); ++i) {
      index.nearest_into(ps.points[i], k, static_cast<std::uint32_t>(i), scratch, found);
      std::copy(found.begin(), found.end(),
                adj.neighbors.begin() + static_cast<std::ptrdiff_t>(i * deg));
    }
    benchmark::DoNotOptimize(adj.neighbors.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ps.size()));
}
BENCHMARK(BM_KnnSelectScratch)->Arg(8)->Arg(32)->Arg(188);

// The full chunk-parallel flat builder (tree construction included).
void BM_KnnSelectionsFlat(benchmark::State& state) {
  const Box w{{0.0, 0.0}, {32.0, 32.0}};
  const PointSet ps = poisson_point_set(w, 2.0, 9);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn_selections_flat(ps.points, k).neighbors.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ps.size()));
}
BENCHMARK(BM_KnnSelectionsFlat)->Arg(8)->Arg(32)->Arg(188);

void BM_GridRadiusAlloc(benchmark::State& state) {
  const Box w{{0.0, 0.0}, {48.0, 48.0}};
  const PointSet ps = poisson_point_set(w, 4.0, 7);
  const GridIndex index(ps.points, w, 1.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.query_radius(ps.points[i % ps.size()], 1.0).data());
    ++i;
  }
}
BENCHMARK(BM_GridRadiusAlloc);

void BM_GridRadiusInto(benchmark::State& state) {
  const Box w{{0.0, 0.0}, {48.0, 48.0}};
  const PointSet ps = poisson_point_set(w, 4.0, 7);
  const GridIndex index(ps.points, w, 1.0);
  std::vector<std::uint32_t> out;
  std::size_t i = 0;
  for (auto _ : state) {
    index.query_radius_into(ps.points[i % ps.size()], 1.0, out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
}
BENCHMARK(BM_GridRadiusInto);

void BM_ClusterLabeling(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const SiteGrid grid = SiteGrid::random(n, n, 0.65, 3);
  for (auto _ : state) {
    const ClusterLabels labels(grid);
    benchmark::DoNotOptimize(labels.largest_cluster_size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n);
}
BENCHMARK(BM_ClusterLabeling)->Arg(128)->Arg(512);

void BM_ClassifyUdgTiles(benchmark::State& state) {
  const UdgTileSpec spec = UdgTileSpec::strict();
  const TileWindow window{0, 0, 32, 32};
  const PointSet ps = poisson_point_set(window.bounds(Tiling(spec.side)), 25.0, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify_udg(spec, ps.points, window).good_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ps.size()));
}
BENCHMARK(BM_ClassifyUdgTiles);

void BM_ClassifyNnTiles(benchmark::State& state) {
  const NnTileSpec spec = NnTileSpec::paper();
  const TileWindow window{0, 0, 8, 8};
  const PointSet ps = poisson_point_set(window.bounds(Tiling(spec.side())), 1.0, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify_nn(spec, ps.points, window).good_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ps.size()));
}
BENCHMARK(BM_ClassifyNnTiles);

void BM_BuildUdgSens(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        build_udg_sens(UdgTileSpec::strict(), 25.0, 24, 24, seed++).overlay.giant_size());
  }
}
BENCHMARK(BM_BuildUdgSens);

void BM_NnGoodTrial(benchmark::State& state) {
  const NnTileSpec spec = NnTileSpec::paper();
  const Box tile = Box::square({0.0, 0.0}, spec.side());
  std::uint64_t s = 0;
  for (auto _ : state) {
    const auto pts = poisson_points_in_box(tile, 1.0, 17, s++);
    benchmark::DoNotOptimize(spec.good(pts));
  }
}
BENCHMARK(BM_NnGoodTrial);

void BM_MeshRoute(benchmark::State& state) {
  const SiteGrid grid = SiteGrid::random(128, 128, 0.75, 5);
  const ClusterLabels labels(grid);
  const MeshRouter router(grid);
  std::vector<Site> giant;
  for (std::size_t i = 0; i < grid.num_sites(); i += 11)
    if (labels.in_largest(grid.site_at(i))) giant.push_back(grid.site_at(i));
  std::size_t i = 0;
  for (auto _ : state) {
    const Site a = giant[i % giant.size()];
    const Site b = giant[(i * 7 + 13) % giant.size()];
    benchmark::DoNotOptimize(router.route(a, b).probes);
    ++i;
  }
}
BENCHMARK(BM_MeshRoute);

}  // namespace

BENCHMARK_MAIN();
