// M — google-benchmark microbenchmarks for the computational kernels:
// point-process sampling, graph builders, spatial queries, cluster labeling,
// tile classification, overlay construction and mesh routing.
#include <benchmark/benchmark.h>

#include <cmath>
#include <functional>
#include <map>
#include <numeric>
#include <utility>

#include "sens/core/udg_sens.hpp"
#include "sens/geograph/knn.hpp"
#include "sens/geograph/point_set.hpp"
#include "sens/geograph/udg.hpp"
#include "sens/graph/bfs.hpp"
#include "sens/graph/dijkstra.hpp"
#include "sens/hng/hng.hpp"
#include "sens/perc/clusters.hpp"
#include "sens/perc/mesh_router.hpp"
#include "sens/spatial/grid_index.hpp"
#include "sens/spatial/grid_knn.hpp"
#include "sens/rng/rng.hpp"
#include "sens/spatial/grid_knn_pyramid.hpp"
#include "sens/spatial/kdtree.hpp"
#include "sens/spatial/reorder.hpp"
#include "sens/support/parallel.hpp"
#include "sens/tiles/classify.hpp"
#include "sens/tiles/good_prob.hpp"

namespace {

using namespace sens;

/// Shared traversal fixture: the UDG the shortest-path kernels run on
/// (~4k vertices, mean degree ~12.6) plus a deterministic source batch.
const GeoGraph& traversal_graph() {
  static const GeoGraph g = [] {
    const Box w{{0.0, 0.0}, {32.0, 32.0}};
    return build_udg(poisson_point_set(w, 4.0, 21).points, w, 1.0);
  }();
  return g;
}

std::vector<std::uint32_t> traversal_sources(std::size_t count) {
  const std::size_t n = traversal_graph().graph.num_vertices();
  std::vector<std::uint32_t> sources(count);
  for (std::size_t i = 0; i < count; ++i) {
    sources[i] = static_cast<std::uint32_t>((i * 37 + 11) % n);
  }
  return sources;
}

void BM_PoissonPointSet(benchmark::State& state) {
  const double side = static_cast<double>(state.range(0));
  const Box w{{0.0, 0.0}, {side, side}};
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(poisson_point_set(w, 2.0, seed++).points);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(static_cast<double>(state.iterations()) * 2.0 * side * side));
}
BENCHMARK(BM_PoissonPointSet)->Arg(16)->Arg(64);

void BM_BuildUdg(benchmark::State& state) {
  const double side = static_cast<double>(state.range(0));
  const Box w{{0.0, 0.0}, {side, side}};
  const PointSet ps = poisson_point_set(w, 4.0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_udg(ps.points, w, 1.0).graph.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ps.size()));
}
BENCHMARK(BM_BuildUdg)->Arg(16)->Arg(48);

void BM_BuildKnnGraph(benchmark::State& state) {
  const Box w{{0.0, 0.0}, {32.0, 32.0}};
  const PointSet ps = poisson_point_set(w, 2.0, 9);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_knn_graph(ps.points, k).graph.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ps.size()));
}
BENCHMARK(BM_BuildKnnGraph)->Arg(8)->Arg(32);

void BM_KdTreeQuery(benchmark::State& state) {
  const Box w{{0.0, 0.0}, {64.0, 64.0}};
  const PointSet ps = poisson_point_set(w, 2.0, 11);
  const KdTree tree(ps.points);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.nearest(ps.points[i % ps.size()], 16, static_cast<std::uint32_t>(i % ps.size())));
    ++i;
  }
}
BENCHMARK(BM_KdTreeQuery);

void BM_KdTreeQueryScratch(benchmark::State& state) {
  const Box w{{0.0, 0.0}, {64.0, 64.0}};
  const PointSet ps = poisson_point_set(w, 2.0, 11);
  const KdTree tree(ps.points);
  KdTree::QueryScratch scratch;
  std::vector<std::uint32_t> out;
  std::uint32_t i = 0;
  for (auto _ : state) {
    tree.nearest_into(ps.points[i % ps.size()], 16, static_cast<std::uint32_t>(i % ps.size()),
                      scratch, out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
}
BENCHMARK(BM_KdTreeQueryScratch);

// The k-NN selection kernel, seed shape (PR 2): one allocating `nearest`
// call per point, results in a nested vector<vector>. Serial loop so the
// ratio against BM_KnnSelectScratch isolates the per-query cost.
void BM_KnnSelectAlloc(benchmark::State& state) {
  const Box w{{0.0, 0.0}, {32.0, 32.0}};
  const PointSet ps = poisson_point_set(w, 2.0, 9);
  const KdTree tree(ps.points);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<std::vector<std::uint32_t>> out(ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i) {
      out[i] = tree.nearest(ps.points[i], k, static_cast<std::uint32_t>(i));
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ps.size()));
}
BENCHMARK(BM_KnnSelectAlloc)->Arg(8)->Arg(32)->Arg(188);

// Same kernel, allocation-free batched shape: `GridKnn::nearest_into` with
// one scratch, writing flat slices (what `knn_selections_flat` runs per
// chunk). Returns identical neighbor lists to the kd-tree path.
void BM_KnnSelectScratch(benchmark::State& state) {
  const Box w{{0.0, 0.0}, {32.0, 32.0}};
  const PointSet ps = poisson_point_set(w, 2.0, 9);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const GridKnn index(ps.points, k);
  const std::size_t deg = std::min(k, ps.size() - 1);
  FlatAdjacency adj;
  adj.offsets.resize(ps.size() + 1);
  adj.neighbors.resize(ps.size() * deg);
  GridKnn::QueryScratch scratch;
  std::vector<std::uint32_t> found;
  for (auto _ : state) {
    for (std::size_t i = 0; i < ps.size(); ++i) {
      index.nearest_into(ps.points[i], k, static_cast<std::uint32_t>(i), scratch, found);
      std::copy(found.begin(), found.end(),
                adj.neighbors.begin() + static_cast<std::ptrdiff_t>(i * deg));
    }
    benchmark::DoNotOptimize(adj.neighbors.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ps.size()));
}
BENCHMARK(BM_KnnSelectScratch)->Arg(8)->Arg(32)->Arg(188);

// The full chunk-parallel flat builder (tree construction included).
void BM_KnnSelectionsFlat(benchmark::State& state) {
  const Box w{{0.0, 0.0}, {32.0, 32.0}};
  const PointSet ps = poisson_point_set(w, 2.0, 9);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn_selections_flat(ps.points, k).neighbors.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ps.size()));
}
BENCHMARK(BM_KnnSelectionsFlat)->Arg(8)->Arg(32)->Arg(188);

// Size-axis fixture for the scale tier (DESIGN.md §2.8): the UDG over a
// Poisson deployment of ~n nodes whose store is shuffled into deployment
// order (ids by arrival), optionally relabeled along the Hilbert curve.
// Cached per (n, layout) so the 512k build happens once per process.
const GeoGraph& scale_udg(std::int64_t n_target, bool hilbert) {
  static std::map<std::pair<std::int64_t, bool>, GeoGraph> cache;
  const auto key = std::make_pair(n_target, hilbert);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const double side = std::sqrt(static_cast<double>(n_target) / 4.0);
    const Box w{{0.0, 0.0}, {side, side}};
    PointSet ps = poisson_point_set_ordered(w, 4.0, 21);
    Rng shuffle = Rng::stream(21, 0xB16, static_cast<std::uint64_t>(n_target));
    for (std::size_t i = ps.size(); i > 1; --i) {
      std::swap(ps.points[i - 1], ps.points[shuffle.uniform_index(i)]);
    }
    std::vector<Vec2> pts = std::move(ps.points);
    if (hilbert) {
      const auto perm = spatial_order_permutation(pts, SpatialOrder::kHilbert);
      pts = apply_permutation(std::span<const Vec2>(pts), perm);
    }
    it = cache.emplace(key, build_udg(pts, w, 1.0)).first;
  }
  return it->second;
}

// The batched full-store k-NN workload over the size axis, Hilbert layout
// on/off (args: n target, hilbert). Query i asks for the 8 nearest of
// point i, so spatially coherent ids turn the ring scans into cache hits —
// the locality dividend bench_e18 measures end to end.
void BM_GridKnnBatch(benchmark::State& state) {
  const GeoGraph& g = scale_udg(state.range(0), state.range(1) != 0);
  const GridKnn index(g.points, 8);
  GridKnn::QueryScratch scratch;
  std::vector<std::uint32_t> found;
  for (auto _ : state) {
    std::size_t touched = 0;
    for (std::uint32_t i = 0; i < g.size(); ++i) {
      touched += index.nearest_into(g.points[i], 8, i, scratch, found);
    }
    benchmark::DoNotOptimize(touched);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.size()));
}
BENCHMARK(BM_GridKnnBatch)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({65536, 0})
    ->Args({65536, 1})
    ->Args({524288, 0})
    ->Args({524288, 1});

void BM_GridRadiusAlloc(benchmark::State& state) {
  const Box w{{0.0, 0.0}, {48.0, 48.0}};
  const PointSet ps = poisson_point_set(w, 4.0, 7);
  const GridIndex index(ps.points, w, 1.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.query_radius(ps.points[i % ps.size()], 1.0).data());
    ++i;
  }
}
BENCHMARK(BM_GridRadiusAlloc);

void BM_GridRadiusInto(benchmark::State& state) {
  const Box w{{0.0, 0.0}, {48.0, 48.0}};
  const PointSet ps = poisson_point_set(w, 4.0, 7);
  const GridIndex index(ps.points, w, 1.0);
  std::vector<std::uint32_t> out;
  std::size_t i = 0;
  for (auto _ : state) {
    index.query_radius_into(ps.points[i % ps.size()], 1.0, out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
}
BENCHMARK(BM_GridRadiusInto);

void BM_ClusterLabeling(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const SiteGrid grid = SiteGrid::random(n, n, 0.65, 3);
  for (auto _ : state) {
    const ClusterLabels labels(grid);
    benchmark::DoNotOptimize(labels.largest_cluster_size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n);
}
BENCHMARK(BM_ClusterLabeling)->Arg(128)->Arg(512);

void BM_ClassifyUdgTiles(benchmark::State& state) {
  const UdgTileSpec spec = UdgTileSpec::strict();
  const TileWindow window{0, 0, 32, 32};
  const PointSet ps = poisson_point_set(window.bounds(Tiling(spec.side)), 25.0, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify_udg(spec, ps.points, window).good_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ps.size()));
}
BENCHMARK(BM_ClassifyUdgTiles);

void BM_ClassifyNnTiles(benchmark::State& state) {
  const NnTileSpec spec = NnTileSpec::paper();
  const TileWindow window{0, 0, 8, 8};
  const PointSet ps = poisson_point_set(window.bounds(Tiling(spec.side())), 1.0, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify_nn(spec, ps.points, window).good_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ps.size()));
}
BENCHMARK(BM_ClassifyNnTiles);

void BM_BuildUdgSens(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        build_udg_sens(UdgTileSpec::strict(), 25.0, 24, 24, seed++).overlay.giant_size());
  }
}
BENCHMARK(BM_BuildUdgSens);

void BM_NnGoodTrial(benchmark::State& state) {
  const NnTileSpec spec = NnTileSpec::paper();
  const Box tile = Box::square({0.0, 0.0}, spec.side());
  std::uint64_t s = 0;
  for (auto _ : state) {
    const auto pts = poisson_points_in_box(tile, 1.0, 17, s++);
    benchmark::DoNotOptimize(spec.good(pts));
  }
}
BENCHMARK(BM_NnGoodTrial);

// The single-source Dijkstra kernel, seed shape (pre-PR-4): a type-erased
// `std::function` invoked per relaxed edge and a freshly allocated
// cost/queue per source. The ratio against BM_DijkstraCostsInto isolates
// what the arc-weight array + versioned scratch + indexed heap buy.
void BM_DijkstraCostsFn(benchmark::State& state) {
  const GeoGraph& g = traversal_graph();
  const std::function<double(std::uint32_t, std::uint32_t)> weight =
      [&g](std::uint32_t u, std::uint32_t v) { return std::pow(g.edge_length(u, v), 2.0); };
  std::uint32_t s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dijkstra_costs(g.graph, s % static_cast<std::uint32_t>(g.size()), weight).data());
    ++s;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.size()));
}
BENCHMARK(BM_DijkstraCostsFn);

// Same kernel, batched shape: precomputed per-arc powers, caller-owned
// scratch and output buffer (DESIGN.md §2.4).
void BM_DijkstraCostsInto(benchmark::State& state) {
  const GeoGraph& g = traversal_graph();
  const std::vector<double> weights = g.power_arc_weights(2.0);
  DijkstraScratch scratch;
  std::vector<double> out(g.size());
  std::uint32_t s = 0;
  for (auto _ : state) {
    dijkstra_costs_into(g.graph, s % static_cast<std::uint32_t>(g.size()), weights, scratch, out);
    benchmark::DoNotOptimize(out.data());
    ++s;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.size()));
}
BENCHMARK(BM_DijkstraCostsInto);

// The multi-source stretch kernel, seed shape: what bench_e07/e12-style
// sweeps paid per batch of sources before PR 4 — one `std::function`
// Dijkstra per source in a serial loop.
void BM_DijkstraManySerialFn(benchmark::State& state) {
  const GeoGraph& g = traversal_graph();
  const auto sources = traversal_sources(static_cast<std::size_t>(state.range(0)));
  const std::function<double(std::uint32_t, std::uint32_t)> weight =
      [&g](std::uint32_t u, std::uint32_t v) { return std::pow(g.edge_length(u, v), 2.0); };
  for (auto _ : state) {
    double sum = 0.0;
    for (const std::uint32_t s : sources) {
      const auto costs = dijkstra_costs(g.graph, s, weight);
      sum += costs[0];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DijkstraManySerialFn)->Arg(64);

// Same batch through `dijkstra_many` — now swept over the scale-tier size
// axis with the Hilbert layout on/off (args: n target, hilbert; 8 fixed
// sources, items = settled row-nodes). The 4096/deploy row is the modern
// shape of the old 4k-fixture batch; BM_DijkstraManySerialFn above remains
// the seed-shape contrast at that size (compare time per source).
void BM_DijkstraMany(benchmark::State& state) {
  const GeoGraph& g = scale_udg(state.range(0), state.range(1) != 0);
  std::vector<std::uint32_t> sources(8);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    sources[i] = static_cast<std::uint32_t>((i * 37 + 11) % g.size());
  }
  const std::vector<double> weights = g.power_arc_weights(2.0);
  std::vector<double> out(sources.size() * g.size());
  for (auto _ : state) {
    dijkstra_many_into(g.graph, sources, weights, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sources.size()) *
                          static_cast<std::int64_t>(g.size()));
}
BENCHMARK(BM_DijkstraMany)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({65536, 0})
    ->Args({65536, 1})
    ->Args({524288, 0})
    ->Args({524288, 1});

// Multi-source BFS batch (the E7 hop-stretch kernel shape).
void BM_BfsMany(benchmark::State& state) {
  const GeoGraph& g = traversal_graph();
  const auto sources = traversal_sources(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint32_t> out(sources.size() * g.size());
  for (auto _ : state) {
    bfs_many_into(g.graph, sources, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BfsMany)->Arg(64);

// Seed shape of the BFS batch: one allocating `bfs_distances` per source.
void BM_BfsManySerialAlloc(benchmark::State& state) {
  const GeoGraph& g = traversal_graph();
  const auto sources = traversal_sources(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const std::uint32_t s : sources) {
      const auto dist = bfs_distances(g.graph, s);
      sum += dist[0];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BfsManySerialAlloc)->Arg(64);

// The full hierarchical-neighbor-graph construction (DESIGN.md §2.5):
// p-thinning levels, pyramid build, per-level k-NN linking, CSR
// symmetrization. Baseline recorded in bench/BENCH_hng.json.
void BM_HngBuild(benchmark::State& state) {
  const double side = static_cast<double>(state.range(0));
  const Box w{{0.0, 0.0}, {side, side}};
  const PointSet ps = poisson_point_set(w, 4.0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        build_hng(ps.points, {.promote_p = 0.25, .k = 3}, 7).geo.graph.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ps.size()));
}
BENCHMARK(BM_HngBuild)->Arg(16)->Arg(48);

// The multi-resolution pyramid kernel in isolation: build per-level
// density-tuned grids over p-thinned nested subsets of one shared store,
// then run the HNG linking workload (each member of level l queries k
// into level l+1).
void BM_HngKnnPyramid(benchmark::State& state) {
  const Box w{{0.0, 0.0}, {32.0, 32.0}};
  const PointSet ps = poisson_point_set(w, 4.0, 7);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  // Levels from the real construction (one source of truth, outside the
  // timed loop); spec l indexes the population with level >= l + 2.
  const HngResult hng = build_hng(ps.points, {}, 7);
  std::vector<GridKnnPyramid::LevelSpec> specs(hng.top_level >= 2 ? hng.top_level - 1 : 0);
  for (std::uint32_t u = 0; u < hng.level.size(); ++u) {
    for (std::uint32_t l = 2; l <= hng.level[u]; ++l) specs[l - 2].members.push_back(u);
  }
  for (auto& spec : specs) spec.expected_k = std::min(k, spec.members.size());
  GridKnn::QueryScratch scratch;
  std::vector<std::uint32_t> found;
  for (auto _ : state) {
    const GridKnnPyramid pyramid(ps.points, specs);
    std::size_t touched = 0;
    // Members of the population *below* grid l query into grid l.
    for (std::size_t l = 0; l < pyramid.num_levels(); ++l) {
      if (l == 0) {
        for (std::uint32_t q = 0; q < ps.size(); ++q) {
          touched += pyramid.level(0).nearest_into(ps.points[q], k, q, scratch, found);
        }
      } else {
        for (const std::uint32_t q : specs[l - 1].members) {
          touched += pyramid.level(l).nearest_into(ps.points[q], k, q, scratch, found);
        }
      }
    }
    benchmark::DoNotOptimize(touched);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ps.size()));
}
BENCHMARK(BM_HngKnnPyramid)->Arg(3)->Arg(16);

void BM_MeshRoute(benchmark::State& state) {
  const SiteGrid grid = SiteGrid::random(128, 128, 0.75, 5);
  const ClusterLabels labels(grid);
  const MeshRouter router(grid);
  std::vector<Site> giant;
  for (std::size_t i = 0; i < grid.num_sites(); i += 11)
    if (labels.in_largest(grid.site_at(i))) giant.push_back(grid.site_at(i));
  std::size_t i = 0;
  for (auto _ : state) {
    const Site a = giant[i % giant.size()];
    const Site b = giant[(i * 7 + 13) % giant.size()];
    benchmark::DoNotOptimize(router.route(a, b).probes);
    ++i;
  }
}
BENCHMARK(BM_MeshRoute);

}  // namespace

BENCHMARK_MAIN();
