// A2 — ablation: the NN occupancy cap (<= k/2 points per tile).
//
// The cap is what makes Claim 2.3's k-NN edge argument work (any in-domain
// disk holds <= k points). Removing it raises P(good) toward the
// regions-occupied ceiling but breaks the edge guarantee; this bench
// quantifies both sides: the probability gained and the overlay edges that
// fail to exist in NN(2, k) once over-crowded tiles are declared good.
#include "bench_common.hpp"
#include "sens/core/metrics.hpp"
#include "sens/core/nn_sens.hpp"
#include "sens/tiles/good_prob.hpp"

using namespace sens;
using namespace sens::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("A2 / ablation (NN occupancy cap)",
             "goodness requires <= k/2 points per tile (Section 2.2 condition 1)");

  const std::size_t trials = 5000 * env.scale;
  Table t({"k", "P(good) with cap", "P(good) without cap", "cap cost"});
  const NnGoodCurve curve(0.893, trials, env.seed);
  const double no_cap = curve.occupancy_only().estimate();
  for (const std::size_t k : {150u, 170u, 188u, 213u, 260u}) {
    const double with_cap = curve.probability_at(k).estimate();
    t.add_row({Table::fmt_int(static_cast<long long>(k)), Table::fmt(with_cap, 4),
               Table::fmt(no_cap, 4), Table::fmt(no_cap - with_cap, 4)});
  }
  env.emit("probability side: what the cap costs", t);

  // Guarantee side: declare tiles good ignoring the cap, then realize edges
  // against the true NN(2, 188) selections and count the violations.
  const int tiles = env.scale > 1 ? 14 : 9;
  const NnTileSpec spec = NnTileSpec::paper();
  const NnSensResult capped = build_nn_sens(spec, tiles, tiles, env.seed + 5);

  const NnTileSpec uncapped_spec(0.893, 1u << 20);  // effectively no cap
  NnClassification loose = classify_nn(uncapped_spec, capped.points.points,
                                       capped.classification.window);
  loose.k = spec.k();  // realize edges against the real k = 188 graph
  const KdTree tree(capped.points.points);
  const Overlay loose_overlay = build_nn_overlay(loose, capped.points.points, tree);

  Table g({"variant", "good tiles", "edges expected", "edges missing", "claim paths realized"});
  const ClaimCheck c_capped = check_adjacent_tile_paths(capped.overlay);
  const ClaimCheck c_loose = check_adjacent_tile_paths(loose_overlay);
  g.add_row({"with cap (paper)", Table::fmt_int(static_cast<long long>(capped.classification.good_count())),
             Table::fmt_int(static_cast<long long>(capped.overlay.edges_expected)),
             Table::fmt_int(static_cast<long long>(capped.overlay.edges_missing)),
             Table::fmt(c_capped.realized_fraction(), 4)});
  g.add_row({"without cap", Table::fmt_int(static_cast<long long>(loose.good_count())),
             Table::fmt_int(static_cast<long long>(loose_overlay.edges_expected)),
             Table::fmt_int(static_cast<long long>(loose_overlay.edges_missing)),
             Table::fmt(c_loose.realized_fraction(), 4)});
  env.emit("guarantee side: edge realization in NN(2, 188)", g);

  env.footer();
  return 0;
}
