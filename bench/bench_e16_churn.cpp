// E16 — dynamic HNG maintenance under churn vs full rebuilds.
//
// The HNG paper (arXiv:0903.0742) argues the structure is cheap to maintain
// as sensors join and leave: a join links locally, a leave orphans only the
// bounded set of nodes that had selected it. This bench drives a DynamicHng
// through three churn regimes — a balanced trickle, a flash crowd of joins,
// and a flash crowd of leaves — and reports the per-event repair work
// (nodes relinked, overlay edge delta), the structure quality after each
// phase (degree, components, sampled length stretch), and whether the
// incrementally maintained overlay is still *bit-identical* to a fresh
// batch build over the survivors (it must be: DESIGN.md §2.7, the
// `churn` test tier enforces it per event).
//
// Wall-clock — amortized cost per event vs a full rebuild per event — is
// printed as a table but kept out of the --json document, which must stay
// byte-identical across runs and --threads values (the bench-json CI job
// cmp's it). Measured runs are recorded in bench/BENCH_churn.json.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sens/dynamic/dynamic_hng.hpp"
#include "sens/geograph/point_set.hpp"
#include "sens/graph/components.hpp"
#include "sens/graph/dijkstra.hpp"
#include "sens/hng/hng.hpp"
#include "sens/rng/rng.hpp"
#include "sens/support/stats.hpp"

using namespace sens;
using namespace sens::bench;

namespace {

struct PhaseSpec {
  std::string name;
  std::size_t events;
  double p_join;
};

struct PhaseRun {
  std::size_t joins = 0;
  std::size_t leaves = 0;
  std::size_t relinked = 0;
  std::size_t edges_added = 0;
  std::size_t edges_removed = 0;
  double seconds = 0.0;
};

/// Drive one churn phase. Joins drop a uniform point into the window (the
/// stationary regime of the Poisson workload); leaves evict a uniformly
/// random live slot. All draws come from a dedicated (seed, 0xE16, phase)
/// stream, so the trace — and with it the whole json document — is a pure
/// function of (seed, scale).
PhaseRun run_phase(DynamicHng& dyn, const Box& window, const PhaseSpec& spec,
                   std::uint64_t seed, std::size_t phase_index) {
  Rng rng = Rng::stream(seed, 0xE16, phase_index);
  PhaseRun run;
  Timer timer;
  for (std::size_t e = 0; e < spec.events; ++e) {
    if (dyn.size() == 0 || rng.bernoulli(spec.p_join)) {
      dyn.insert({rng.uniform(window.lo.x, window.hi.x), rng.uniform(window.lo.y, window.hi.y)});
      ++run.joins;
    } else {
      dyn.remove(static_cast<std::uint32_t>(rng.uniform_index(dyn.size())));
      ++run.leaves;
    }
    run.relinked += dyn.last_event().relinked;
    run.edges_added += dyn.last_event().edges_added;
    run.edges_removed += dyn.last_event().edges_removed;
  }
  run.seconds = timer.seconds();
  return run;
}

/// Mean length stretch over sampled far pairs (shortest path / straight
/// line), the quality signal that would drift if maintenance ever went
/// stale. Deterministic: pinned pair stream, exact Dijkstra.
double sampled_stretch(std::span<const Vec2> points, const CsrGraph& g, std::uint64_t seed,
                       std::size_t pairs) {
  const std::vector<double> w =
      g.arc_weights([&](std::uint32_t u, std::uint32_t v) { return dist(points[u], points[v]); });
  Rng pick = Rng::stream(seed, 0xE16, 0xFA12);
  DijkstraScratch scratch;
  RunningStats stretch;
  for (std::size_t t = 0; t < pairs * 6 && stretch.count() < pairs; ++t) {
    const auto a = static_cast<std::uint32_t>(pick.uniform_index(points.size()));
    const auto b = static_cast<std::uint32_t>(pick.uniform_index(points.size()));
    const double straight = dist(points[a], points[b]);
    if (a == b || straight < 5.0) continue;
    const double len = dijkstra_cost(g, a, b, w, scratch);
    if (len >= kInfCost) continue;
    stretch.add(len / straight);
  }
  return stretch.mean();
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("E16 / dynamic HNG maintenance under churn",
             "an HNG absorbs joins and leaves with bounded local repair — per-event "
             "relink work orders of magnitude below a full rebuild, with the overlay "
             "bit-identical to batch construction throughout (arXiv:0903.0742)");

  const Box window{{0.0, 0.0}, {20.0, 20.0}};
  const double lambda = 4.0;
  const HngParams params{.promote_p = 0.25, .k = 3, .max_level = 48};
  const PointSet ps = poisson_point_set(window, lambda, env.seed);

  Timer timer;
  DynamicHng dyn(ps.points, params, env.seed);
  const double adopt_ms = timer.millis();
  timer.reset();
  const HngResult batch = build_hng(ps.points, params, env.seed);
  const double batch_ms = timer.millis();
  const bool adoption_identical =
      dyn.overlay().edge_list() == batch.geo.graph.edge_list();

  const std::vector<PhaseSpec> phases{
      {"trickle (p_join=0.5)", 300 * env.scale, 0.5},
      {"flash-crowd join (p_join=0.9)", 400 * env.scale, 0.9},
      {"flash-crowd leave (p_join=0.1)", 400 * env.scale, 0.1},
  };

  Table work({"phase", "events", "joins", "leaves", "n end", "edges end", "relinked/event",
              "edge delta/event"});
  Table quality({"phase", "components", "mean degree", "max degree", "top level",
                 "length stretch (sampled mean)", "identical to full rebuild"});
  Table clock({"phase", "maintain us/event", "snapshot ms (deferred)", "full rebuild ms",
               "rebuild/event ratio"});
  clock.add_row({"initial bulk adoption (" + Table::fmt_int(static_cast<long long>(ps.size())) +
                     " nodes, vs one batch build)",
                 Table::fmt(adopt_ms * 1e3 / static_cast<double>(ps.size()), 3), "-",
                 Table::fmt(batch_ms, 2), "-"});

  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseSpec& spec = phases[i];
    const PhaseRun run = run_phase(dyn, window, spec, env.seed, i + 1);
    const auto events = static_cast<double>(spec.events);

    // First overlay() read after the burst: pays the one batched
    // apply_edge_delta for the whole phase (timed separately — the honest
    // cost of reading a CSR snapshot under deferred materialization).
    timer.reset();
    (void)dyn.overlay();
    const double snapshot_ms = timer.millis();

    timer.reset();
    const HngResult fresh = build_hng(dyn.points(), params, env.seed);
    const double rebuild_ms = timer.millis();
    const bool identical = dyn.overlay().edge_list() == fresh.geo.graph.edge_list();

    work.add_row({spec.name, Table::fmt_int(static_cast<long long>(spec.events)),
                  Table::fmt_int(static_cast<long long>(run.joins)),
                  Table::fmt_int(static_cast<long long>(run.leaves)),
                  Table::fmt_int(static_cast<long long>(dyn.size())),
                  Table::fmt_int(static_cast<long long>(dyn.overlay().num_edges())),
                  Table::fmt(static_cast<double>(run.relinked) / events, 3),
                  Table::fmt(static_cast<double>(run.edges_added + run.edges_removed) / events,
                             3)});
    quality.add_row(
        {spec.name,
         Table::fmt_int(static_cast<long long>(connected_components(dyn.overlay()).count())),
         Table::fmt(dyn.overlay().mean_degree(), 4),
         Table::fmt_int(static_cast<long long>(dyn.overlay().max_degree())),
         Table::fmt_int(dyn.top_level()),
         Table::fmt(sampled_stretch(dyn.points(), dyn.overlay(), env.seed, 24 * env.scale), 4),
         identical ? "yes" : "NO"});
    const double us_per_event = run.seconds * 1e6 / events;
    clock.add_row({spec.name, Table::fmt(us_per_event, 3), Table::fmt(snapshot_ms, 2),
                   Table::fmt(rebuild_ms, 2), Table::fmt(rebuild_ms * 1e3 / us_per_event, 3)});
  }

  env.emit("per-event repair work (the paper's bounded-local-maintenance claim: a join or "
           "leave relinks a handful of nodes, never the deployment)",
           work);
  env.emit("structure quality at phase end (the maintained overlay must stay bit-identical "
           "to a fresh batch build over the survivors; adoption check: " +
               std::string(adoption_identical ? "identical" : "DIVERGED") + ")",
           quality);

  // Wall-clock is deliberately *not* emitted: the --json document must be
  // byte-identical across runs and --threads values.
  std::cout << "**maintenance cost vs full rebuild (excluded from --json)**\n\n";
  clock.print(std::cout);
  std::cout << "\nnote: the rebuild/event ratio is the speedup of incremental maintenance over\n"
               "rebuilding from scratch at every event; BENCH_churn.json records measured runs.\n\n";
  env.footer();
  return 0;
}
