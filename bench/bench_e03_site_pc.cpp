// E3 — substrate validation: the site-percolation threshold on Z^2.
//
// The paper relies on p_c(site, Z^2) in (0.592, 0.593) [13]. This bench
// estimates the finite-size half-crossing point at several window sizes;
// it should converge toward 0.5927 as the window grows.
#include "bench_common.hpp"
#include "sens/perc/crossing.hpp"
#include "sens/rng/rng.hpp"

using namespace sens;
using namespace sens::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("E3 / substrate (site percolation threshold)",
             "p_c in (0.592, 0.593) for Z^2 site percolation [Lee 2007]");

  const std::size_t trials = 200 * env.scale;

  Table t({"n", "crossing P at p=0.55", "at p=0.5927", "at p=0.64", "half-crossing point"});
  for (const std::int32_t n : {32, 64, 128}) {
    const auto stream = static_cast<std::uint64_t>(n);
    const double lo = crossing_probability(n, 0.55, trials, mix_seed(env.seed, stream));
    const double mid = crossing_probability(n, 0.5927, trials, mix_seed(env.seed, stream + 1));
    const double hi = crossing_probability(n, 0.64, trials, mix_seed(env.seed, stream + 2));
    const double pc = estimate_half_crossing_point(n, trials, mix_seed(env.seed, stream + 3));
    t.add_row({Table::fmt_int(n), Table::fmt(lo, 3), Table::fmt(mid, 3), Table::fmt(hi, 3),
               Table::fmt(pc, 4)});
  }
  env.emit("left-right crossing probabilities (crossing point -> p_c as n grows)", t);

  Table s({"quantity", "literature", "measured (largest n)"});
  s.add_row({"p_c(site, Z^2)", "0.5927",
             Table::fmt(estimate_half_crossing_point(128, trials, env.seed + 99), 4)});
  env.emit("threshold", s);

  env.footer();
  return 0;
}
