// E10 — Corollary 3.4: boxes of side l >= c log n miss the SENS subgraph
// with probability < 1/n. Extracts c from the E9 exponential fit and
// verifies the implied box sides on held-out windows.
#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "sens/core/coverage.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/support/stats.hpp"

using namespace sens;
using namespace sens::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("E10 / Corollary 3.4 (coverage scaling)",
             "l >= c log n  =>  P(B(l) misses SENS) < 1/n");

  const int tiles = env.scale > 1 ? 112 : 72;
  const double lambda = 25.0;
  const UdgSensResult fit_run =
      build_udg_sens(UdgTileSpec::strict(), lambda, tiles, tiles, env.seed);

  // Fit P_empty(m) ~ A e^{-c' m} on tile blocks.
  const std::vector<int> sizes{1, 2, 3, 4, 5, 6};
  const auto probs = empty_block_probability(fit_run.overlay, sizes);
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (probs[i] > 0.0 && probs[i] < 1.0) {
      xs.push_back(sizes[i]);
      ys.push_back(probs[i]);
    }
  }
  const LineFit fit = fit_exponential(xs, ys);
  const double cprime = -fit.slope;
  const double amp = std::exp(fit.intercept);

  Table f({"fit quantity", "value"});
  f.add_row({"decay rate c' (per tile of side 0.84)", Table::fmt(cprime, 4)});
  f.add_row({"amplitude A", Table::fmt(amp, 4)});
  f.add_row({"r^2 of log-linear fit", Table::fmt(fit.r2, 4)});
  env.emit("exponential fit of the empty-block probability", f);

  // Solve A e^{-c' m} <= 1/n  =>  m >= (log n + log A) / c'.
  Table t({"n", "required block side m(n)", "implied l = m * a", "measured miss prob",
           "target 1/n"});
  const UdgSensResult held_out =
      build_udg_sens(UdgTileSpec::strict(), lambda, tiles, tiles, env.seed + 1);
  for (const double n : {10.0, 100.0, 1000.0}) {
    const int m = static_cast<int>(std::ceil((std::log(n) + std::log(std::max(amp, 1.0))) / cprime));
    const std::vector<int> one{m};
    const double miss = empty_block_probability(held_out.overlay, one)[0];
    t.add_row({Table::fmt(n, 4), Table::fmt_int(m), Table::fmt(m * 0.84, 4),
               Table::fmt(miss, 4), Table::fmt(1.0 / n, 4)});
  }
  env.emit("held-out verification of Corollary 3.4 (miss prob should be < 1/n)", t);

  env.footer();
  return 0;
}
