// E13 — Property P4 / Figure 7: the distributed construction protocol.
// Measures message and energy budgets, verifies bit-exactness against the
// centralized builder for the strict spec, and quantifies the NN protocol's
// occupancy-count agreement (DESIGN.md: the paper leaves local occupancy
// counting unspecified).
#include "bench_common.hpp"
#include "sens/core/nn_sens.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/geograph/knn.hpp"
#include "sens/geograph/udg.hpp"
#include "sens/runtime/construct.hpp"

using namespace sens;
using namespace sens::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("E13 / Property P4, Figure 7 (distributed construction)",
             "network forms with location info + immediate-neighbor messages only");

  // --- UDG protocol ---
  {
    const UdgTileSpec spec = UdgTileSpec::strict();
    Table t({"window", "nodes", "elect msgs/node", "ctrl msgs/node", "energy/node (b=2)",
             "good tiles == centralized", "edges == centralized"});
    for (const int tiles : {6, 10, 14}) {
      const UdgSensResult central =
          build_udg_sens(spec, 25.0, tiles, tiles, env.seed + static_cast<std::uint64_t>(tiles));
      const GeoGraph udg = build_udg(central.points.points, central.points.window, 1.0);
      const ConstructOutcome proto = run_udg_construction(udg, spec, central.classification.window);

      bool good_eq = proto.tile_good.size() == central.classification.good.size();
      for (std::size_t i = 0; good_eq && i < proto.tile_good.size(); ++i)
        good_eq = proto.tile_good[i] == central.classification.good[i];
      std::vector<std::pair<std::uint32_t, std::uint32_t>> cen;
      for (const auto& [u, v] : central.overlay.geo.graph.edge_list()) {
        auto a = central.overlay.base_index[u];
        auto b = central.overlay.base_index[v];
        if (a > b) std::swap(a, b);
        cen.emplace_back(a, b);
      }
      std::sort(cen.begin(), cen.end());

      const double n = static_cast<double>(udg.size());
      t.add_row({Table::fmt_int(tiles) + "x" + Table::fmt_int(tiles),
                 Table::fmt_int(static_cast<long long>(udg.size())),
                 Table::fmt(static_cast<double>(proto.election_messages) / n, 4),
                 Table::fmt(static_cast<double>(proto.control_messages) / n, 4),
                 Table::fmt(proto.energy / n, 4),
                 good_eq ? "yes" : "NO", proto.edges == cen ? "yes" : "NO"});
    }
    env.emit("UDG-SENS protocol (strict spec, lambda = 25)", t);
  }

  // --- NN protocol ---
  {
    const NnTileSpec spec = NnTileSpec::paper();
    const int tiles = env.scale > 1 ? 8 : 5;
    const NnSensResult central = build_nn_sens(spec, tiles, tiles, env.seed + 77);
    const GeoGraph knn = build_knn_graph(central.points.points, spec.k());
    const ConstructOutcome proto = run_nn_construction(knn, spec, central.classification.window);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < proto.tile_good.size(); ++i)
      agree += proto.tile_good[i] == central.classification.good[i];
    Table t({"quantity", "value"});
    t.add_row({"nodes", Table::fmt_int(static_cast<long long>(knn.size()))});
    t.add_row({"goodness agreement with centralized",
               Table::fmt(static_cast<double>(agree) / static_cast<double>(proto.tile_good.size()), 4)});
    t.add_row({"good tiles (protocol / centralized)",
               Table::fmt_int(static_cast<long long>(proto.good_count())) + " / " +
                   Table::fmt_int(static_cast<long long>(central.classification.good_count()))});
    t.add_row({"election messages / node",
               Table::fmt(static_cast<double>(proto.election_messages) /
                              static_cast<double>(knn.size()),
                          4)});
    t.add_row({"control messages / node",
               Table::fmt(static_cast<double>(proto.control_messages) /
                              static_cast<double>(knn.size()),
                          4)});
    t.add_row({"failed connects", Table::fmt_int(static_cast<long long>(proto.failed_connects))});
    env.emit("NN-SENS protocol (a = 0.893, k = 188) — occupancy counted from 1-hop PRESENT", t);
  }

  env.footer();
  return 0;
}
