// Shared plumbing for the experiment binaries: every bench prints a header
// naming the experiment and the paper claim it regenerates, then one or more
// markdown tables (the rows EXPERIMENTS.md records). Flags:
//   --full         multiply replicate counts by 10
//   --scale N      set the replicate multiplier directly
//   --seed S       reseed the whole experiment
//   --threads N    worker count for the parallel layer (0 = hardware)
//   --csv          additionally dump tables as CSV for plotting
//   --json [FILE]  emit the whole run as one JSON document (to FILE, or to
//                  stdout after the markdown when no FILE is given) so CI can
//                  diff experiment results across PRs
//   --trace FILE   export ScopedSpan phase timings as a Chrome-trace /
//                  Perfetto JSON timeline (load in chrome://tracing or
//                  ui.perfetto.dev)
//
// Every bench footer ends with one uniform `[obs]` block (DESIGN.md §2.10):
// elapsed wall clock, peak RSS, per-phase span totals, pool utilization, and
// run notes — stdout only, never part of the `--json` document. The
// deterministic *work counters* accumulated by the instrumented kernels go
// the other way: footer() emits any nonzero registry totals as a regular
// table, so they land in `--json` and are cmp'd across --threads by CI.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "sens/obs/obs.hpp"
#include "sens/support/cli.hpp"
#include "sens/support/mem.hpp"
#include "sens/support/parallel.hpp"
#include "sens/support/table.hpp"
#include "sens/support/timer.hpp"

namespace sens::bench {

/// Minimal JSON string escaping (quotes, backslashes, control characters).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += hex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

struct BenchEnv {
  std::size_t scale = 1;     ///< replicate multiplier (10 with --full)
  std::uint64_t seed = 0x5EB5;
  bool csv = false;
  bool json = false;
  std::string json_path;     ///< empty = stdout
  std::string trace_path;    ///< empty = no Chrome-trace export
  Timer timer;

  static BenchEnv parse(int argc, char** argv) {
    const Cli cli(argc, argv);
    BenchEnv env;
    env.scale = cli.has("full") ? 10 : 1;
    env.scale = static_cast<std::size_t>(cli.get("scale", static_cast<long>(env.scale)));
    env.seed = cli.get("seed", static_cast<unsigned long long>(env.seed));
    env.csv = cli.has("csv");
    env.json = cli.has("json");
    if (env.json) env.json_path = cli.get("json", std::string{});
    if (cli.has("trace")) env.trace_path = cli.get("trace", std::string{});
    const long threads = cli.get("threads", 0L);
    if (threads > 0) set_thread_count(static_cast<unsigned>(threads));
    // Span totals always feed the [obs] footer; individual events are
    // retained only when a --trace export will want the full timeline.
    obs::TraceLog::global().enable(/*keep_events=*/!env.trace_path.empty());
    return env;
  }

  void header(const std::string& id, const std::string& claim) {
    id_ = id;
    claim_ = claim;
    std::cout << "\n### " << id << "\n";
    std::cout << "paper claim: " << claim << "\n";
    std::cout << "(seed=" << seed << ", scale=" << scale << ")\n\n";
  }

  void emit(const std::string& title, const Table& table) {
    std::cout << "**" << title << "**\n\n";
    table.print(std::cout);
    if (csv) std::cout << "\ncsv:\n" << table.csv();
    std::cout << "\n";
    if (json) tables_.emplace_back(title, table);
  }

  /// Queue a one-line run note for the footer — survivor counts of a
  /// failure sweep, sweep caps, anything a human reading the run wants
  /// next to the elapsed/RSS lines. Stdout only: footnotes never enter the
  /// JSON document, which must stay byte-identical across machines and
  /// --threads values (DESIGN.md §2.8).
  void footnote(std::string line) { footnotes_.push_back(std::move(line)); }

  void footer() {
    // Deterministic work counters first: they are a regular table, so they
    // enter the --json document and get byte-compared across --threads by
    // the bench-json CI job (DESIGN.md §2.10). Timing stays out, below.
    if (const Table counters = work_counter_table(); counters.rows() > 0) {
      emit("work counters (deterministic, thread-invariant)", counters);
    }
    // The [obs] block: every machine-dependent observable in one place,
    // stdout only — wall clock, memory, spans, and pool scheduling would
    // all break the CI byte-identity diff (DESIGN.md §2.8, §2.10).
    std::cout << "[obs] elapsed: " << Table::fmt(timer.seconds(), 3) << " s\n";
    if (const std::uint64_t peak = peak_rss_bytes(); peak > 0) {
      std::cout << "[obs] peak rss: "
                << Table::fmt(static_cast<double>(peak) / (1024.0 * 1024.0), 5) << " MiB\n";
    }
    for (const auto& span : obs::TraceLog::global().totals()) {
      std::cout << "[obs] span " << span.name << ": "
                << Table::fmt(static_cast<double>(span.total_ns) / 1e6, 4) << " ms (x"
                << span.count << ")\n";
    }
    const PoolStats pool = pool_stats();
    if (pool.jobs + pool.inline_calls > 0) {
      std::cout << "[obs] pool: " << pool.jobs << " jobs, " << pool.helper_claims
                << " helper claims, " << pool.inline_calls << " inline calls\n";
    }
    for (const std::string& line : footnotes_) std::cout << "[obs] note: " << line << "\n";
    if (!trace_path.empty()) {
      std::ofstream trace(trace_path);
      obs::TraceLog::global().write_chrome_trace(trace);
      trace.flush();
      if (!trace) {
        std::cerr << "error: could not write " << trace_path << "\n";
        std::exit(1);
      }
      std::cout << "[obs] trace: wrote " << trace_path << " ("
                << obs::TraceLog::global().event_count() << " spans)\n";
    }
    if (!json) return;
    const std::string doc = json_document();
    if (json_path.empty()) {
      std::cout << "\njson:\n" << doc << "\n";
    } else {
      std::ofstream out(json_path);
      out << doc << "\n";
      out.flush();
      if (!out) {
        std::cerr << "error: could not write " << json_path << "\n";
        std::exit(1);  // a CI consumer must not diff a stale/missing file
      }
      std::cout << "json: wrote " << json_path << "\n";
    }
  }

 private:
  /// Nonzero obs registry totals as a (counter, value) table. Values are
  /// exact uint64 counts rendered in full — never Table::fmt's rounded
  /// doubles — so the CI byte-diff compares true equality.
  [[nodiscard]] static Table work_counter_table() {
    const obs::CounterSnapshot snap = obs::CounterRegistry::global().snapshot();
    Table t({"counter", "value"});
    for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
      if (snap[i] == 0) continue;
      t.add_row({obs::counter_name(static_cast<obs::Counter>(i)), std::to_string(snap[i])});
    }
    return t;
  }

  [[nodiscard]] std::string json_document() const {
    std::string doc = "{\"experiment\": \"" + json_escape(id_) + "\",\n";
    doc += " \"claim\": \"" + json_escape(claim_) + "\",\n";
    doc += " \"seed\": " + std::to_string(seed) + ",\n";
    doc += " \"scale\": " + std::to_string(scale) + ",\n";
    doc += " \"tables\": [";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const auto& [title, table] = tables_[t];
      doc += t == 0 ? "\n" : ",\n";
      doc += "  {\"title\": \"" + json_escape(title) + "\",\n   \"headers\": [";
      const auto& headers = table.headers();
      for (std::size_t h = 0; h < headers.size(); ++h) {
        doc += h == 0 ? "" : ", ";
        doc += "\"" + json_escape(headers[h]) + "\"";
      }
      doc += "],\n   \"rows\": [";
      for (std::size_t r = 0; r < table.rows(); ++r) {
        doc += r == 0 ? "\n" : ",\n";
        doc += "    [";
        const auto& row = table.row(r);
        for (std::size_t c = 0; c < row.size(); ++c) {
          doc += c == 0 ? "" : ", ";
          doc += "\"" + json_escape(row[c]) + "\"";
        }
        doc += "]";
      }
      doc += "]}";
    }
    // Deliberately no timing field: the document must be byte-identical
    // across runs with the same seed/scale so CI can diff it directly.
    doc += "]}";
    return doc;
  }

  std::string id_;
  std::string claim_;
  std::vector<std::pair<std::string, Table>> tables_;
  std::vector<std::string> footnotes_;
};

}  // namespace sens::bench
