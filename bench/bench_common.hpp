// Shared plumbing for the experiment binaries: every bench prints a header
// naming the experiment and the paper claim it regenerates, then one or more
// markdown tables (the rows EXPERIMENTS.md records). `--full` multiplies
// replicate counts by 10; `--seed` reseeds the whole experiment; `--csv`
// additionally dumps tables as CSV for plotting.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "sens/support/cli.hpp"
#include "sens/support/table.hpp"
#include "sens/support/timer.hpp"

namespace sens::bench {

struct BenchEnv {
  std::size_t scale = 1;     ///< replicate multiplier (10 with --full)
  std::uint64_t seed = 0x5EB5;
  bool csv = false;
  Timer timer;

  static BenchEnv parse(int argc, char** argv) {
    const Cli cli(argc, argv);
    BenchEnv env;
    env.scale = cli.has("full") ? 10 : 1;
    env.scale = static_cast<std::size_t>(cli.get("scale", static_cast<long>(env.scale)));
    env.seed = cli.get("seed", static_cast<unsigned long long>(env.seed));
    env.csv = cli.has("csv");
    return env;
  }

  void header(const std::string& id, const std::string& claim) const {
    std::cout << "\n### " << id << "\n";
    std::cout << "paper claim: " << claim << "\n";
    std::cout << "(seed=" << seed << ", scale=" << scale << ")\n\n";
  }

  void emit(const std::string& title, const Table& table) const {
    std::cout << "**" << title << "**\n\n";
    table.print(std::cout);
    if (csv) std::cout << "\ncsv:\n" << table.csv();
    std::cout << "\n";
  }

  void footer() const {
    std::cout << "elapsed: " << Table::fmt(timer.seconds(), 3) << " s\n";
  }
};

}  // namespace sens::bench
