// A3 — the paper's Section 5 conjecture: the SENS subgraph should exist
// whenever the base graph percolates, i.e. well below the P(good) >= p_c
// coupling bound. This bench compares the theory threshold (lambda with
// P(good) = 0.593) against the empirical onset of percolation of the
// coupled goodness grid (lambda where left-right crossings appear).
#include "bench_common.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/perc/crossing.hpp"
#include "sens/rng/rng.hpp"
#include "sens/tiles/good_prob.hpp"

using namespace sens;
using namespace sens::bench;

namespace {

double crossing_rate(const UdgTileSpec& spec, double lambda, int tiles, std::size_t reps,
                     std::uint64_t seed) {
  // Each replicate builds an independent window from its own seed stream, so
  // the replicate loop fans out over the chunked parallel layer and the hit
  // count is bit-identical at any thread count.
  const std::size_t hits = parallel_reduce(
      reps, std::size_t{0},
      [&](std::size_t i) -> std::size_t {
        const UdgSensResult r = build_udg_sens(spec, lambda, tiles, tiles, mix_seed(seed, i));
        return has_lr_crossing(r.overlay.sites) ? 1 : 0;
      },
      [](std::size_t a, std::size_t b) { return a + b; });
  return static_cast<double>(hits) / static_cast<double>(reps);
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("A3 / Section 5 conjecture (onset gap)",
             "the coupling bound P(good) >= p_c is sufficient, not necessary");

  const UdgTileSpec spec = UdgTileSpec::strict();
  const int tiles = env.scale > 1 ? 64 : 40;
  const std::size_t reps = 6 * env.scale;

  const double lambda_theory =
      find_udg_lambda_threshold(spec, 0.593, 3000 * env.scale, env.seed);

  Table t({"lambda", "P(good)", "LR crossing rate of coupled grid"});
  for (const double frac : {0.70, 0.80, 0.90, 0.95, 1.00, 1.10}) {
    const double lambda = lambda_theory * frac;
    const double pg = udg_good_probability(spec, lambda, 3000, mix_seed(env.seed, static_cast<std::uint64_t>(frac * 100))).estimate();
    const double cr = crossing_rate(spec, lambda, tiles, reps, env.seed + 31);
    t.add_row({Table::fmt(lambda, 4), Table::fmt(pg, 4), Table::fmt(cr, 4)});
  }
  env.emit("percolation onset of the coupled grid vs the theory bound lambda_s = " +
               Table::fmt(lambda_theory, 4),
           t);

  std::cout << "reading: crossings appear exactly where P(good) crosses p_c ~ 0.593 — the\n"
               "coupled process is true iid site percolation, so for *this construction*\n"
               "the bound is tight; the conjectured slack lives in the base graph's own\n"
               "percolation, which the tile construction does not exploit.\n\n";
  env.footer();
  return 0;
}
