// E9 — Theorem 3.3 / Property P3: coverage. The probability that an l x l
// box contains no SENS node decays exponentially with l, and the decay
// sharpens as the density grows (Section 3.2's monotonicity argument).
#include <vector>

#include "bench_common.hpp"
#include "sens/rng/rng.hpp"
#include "sens/core/coverage.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/support/stats.hpp"

using namespace sens;
using namespace sens::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("E9 / Theorem 3.3, P3 (coverage)",
             "P(|B(l) ∩ SENS| = 0) <= c l^2 e^{-c' l}; decay sharpens with lambda");

  const int tiles = env.scale > 1 ? 112 : 64;
  const std::vector<int> block_sizes{1, 2, 3, 4, 5, 6, 8};

  Table t({"lambda", "m=1", "m=2", "m=3", "m=4", "m=5", "m=6", "m=8", "fitted decay rate c'"});
  for (const double lambda : {21.0, 25.0, 30.0}) {
    const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), lambda, tiles, tiles,
                                           mix_seed(env.seed, static_cast<std::uint64_t>(lambda)));
    const auto probs = empty_block_probability(r.overlay, block_sizes);
    std::vector<double> xs, ys;
    for (std::size_t i = 0; i < block_sizes.size(); ++i) {
      if (probs[i] > 0.0 && probs[i] < 1.0) {
        xs.push_back(block_sizes[i]);
        ys.push_back(probs[i]);
      }
    }
    const LineFit fit = fit_exponential(xs, ys);
    std::vector<std::string> row{Table::fmt(lambda, 4)};
    for (const double p : probs) row.push_back(Table::fmt(p, 3));
    row.push_back(Table::fmt(-fit.slope, 4) + " (r2=" + Table::fmt(fit.r2, 3) + ")");
    t.add_row(std::move(row));
  }
  env.emit("empty-block probability vs block side m (tiles), UDG-SENS strict", t);

  // Euclidean boxes (the literal Theorem 3.3 statement).
  Table e({"lambda", "l=0.5", "l=1", "l=2", "l=3", "l=4.5"});
  for (const double lambda : {21.0, 30.0}) {
    const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), lambda, tiles, tiles,
                                           mix_seed(env.seed, static_cast<std::uint64_t>(lambda) + 7));
    std::vector<std::string> row{Table::fmt(lambda, 4)};
    for (const double ell : {0.5, 1.0, 2.0, 3.0, 4.5}) {
      const Proportion p = empty_box_probability(r.overlay, ell, 4000 * env.scale, env.seed + 5);
      row.push_back(Table::fmt(p.estimate(), 4));
    }
    e.add_row(std::move(row));
  }
  env.emit("empty Euclidean-box probability vs box side l", e);

  env.footer();
  return 0;
}
