// E5 — Claim 2.3: adjacent good NN tiles are joined by the 4-relay path
// rep - E - C - C' - E' - rep', every edge a genuine NN(2, k) edge.
#include "bench_common.hpp"
#include "sens/core/metrics.hpp"
#include "sens/core/nn_sens.hpp"

using namespace sens;
using namespace sens::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("E5 / Claim 2.3 (NN inter-tile relay paths)",
             "5-edge path through 4 relays exists between adjacent good tiles; constant c_k");

  const int tiles = env.scale > 1 ? 16 : 10;

  Table t({"seed", "good tiles", "adj good pairs", "realized", "edges missing", "mean stretch",
           "worst stretch (c_k est)"});
  double worst_ck = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    const NnSensResult r = build_nn_sens(NnTileSpec::paper(), tiles, tiles, env.seed + s);
    const ClaimCheck check = check_adjacent_tile_paths(r.overlay);
    worst_ck = std::max(worst_ck, check.worst_stretch);
    t.add_row({Table::fmt_int(static_cast<long long>(env.seed + s)),
               Table::fmt_int(static_cast<long long>(r.classification.good_count())),
               Table::fmt_int(static_cast<long long>(check.adjacent_good_pairs)),
               Table::fmt(check.realized_fraction(), 4),
               Table::fmt_int(static_cast<long long>(r.overlay.edges_missing)),
               Table::fmt(check.mean_stretch, 4), Table::fmt(check.worst_stretch, 4)});
  }
  env.emit("relay-path realization (a = 0.893, k = 188)", t);

  Table s({"quantity", "paper", "measured"});
  s.add_row({"path realization", "always (Claim 2.3)", "see table (expected 1.0)"});
  s.add_row({"c_k", "exists, \"computable by calculus\"", Table::fmt(worst_ck, 4)});
  env.emit("claim vs measurement", s);

  env.footer();
  return 0;
}
