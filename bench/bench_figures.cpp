// F — regenerates the paper's illustrative figures as ASCII/data artifacts
// from real constructions (the paper's Figures 1-9 are diagrams, not data
// plots; everything quantitative lives in E1-E14):
//   Figure 1/2: a tiling of R^2 classified good/bad and the coupled Z^2
//               site configuration (they are the same object here).
//   Figure 4:   the 3-hop path between representatives of adjacent good
//               UDG tiles, with edge lengths.
//   Figure 6:   the 5-edge path between representatives of adjacent good
//               NN tiles.
//   Figure 8:   a routed packet's tile path realized through relays.
#include <iostream>

#include "bench_common.hpp"
#include "sens/core/nn_sens.hpp"
#include "sens/core/sens_router.hpp"
#include "sens/core/udg_sens.hpp"

using namespace sens;
using namespace sens::bench;

namespace {

void render_grid(const SiteGrid& grid, const std::vector<Site>& mark) {
  auto marked = [&](Site s) {
    for (const Site m : mark)
      if (m == s) return true;
    return false;
  };
  for (std::int32_t y = grid.height() - 1; y >= 0; --y) {
    for (std::int32_t x = 0; x < grid.width(); ++x) {
      const Site s{x, y};
      std::cout << (marked(s) ? '*' : grid.open(s) ? '#' : '.');
    }
    std::cout << "\n";
  }
}

void print_path(const Overlay& ov, const std::vector<std::uint32_t>& path) {
  for (std::size_t i = 0; i < path.size(); ++i) {
    const Vec2 p = ov.geo.points[path[i]];
    std::cout << "  node " << path[i] << " at (" << Table::fmt(p.x, 4) << ", "
              << Table::fmt(p.y, 4) << ")";
    if (i + 1 < path.size())
      std::cout << "  --edge " << Table::fmt(ov.geo.edge_length(path[i], path[i + 1]), 3) << "-->";
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("F / Figures 1, 2, 4, 6, 8", "illustrative figures regenerated from real builds");

  // --- Figures 1 & 2: tiling + coupled site configuration ---
  const UdgSensResult udg = build_udg_sens(UdgTileSpec::strict(), 25.0, 24, 24, env.seed);
  std::cout << "Figures 1/2 — good (#) and bad (.) tiles of a classified window;\n"
               "under phi this *is* the coupled Z^2 site configuration:\n\n";
  render_grid(udg.overlay.sites, {});
  std::cout << "\nopen fraction " << Table::fmt(udg.overlay.sites.open_fraction(), 4)
            << " (= P(good) estimate)\n\n";

  // --- Figure 4: rep-relay-relay-rep path across a tile border (UDG) ---
  std::cout << "Figure 4 — 3-hop path between adjacent good-tile representatives (UDG):\n";
  const SiteGrid& grid = udg.overlay.sites;
  bool shown = false;
  for (std::int32_t y = 0; y < grid.height() && !shown; ++y) {
    for (std::int32_t x = 0; x + 1 < grid.width() && !shown; ++x) {
      if (!grid.open({x, y}) || !grid.open({x + 1, y})) continue;
      const std::size_t idx = udg.overlay.tile_index({x, y});
      const std::size_t nidx = udg.overlay.tile_index({x + 1, y});
      std::vector<std::uint32_t> path{udg.overlay.rep_node[idx],
                                      udg.overlay.exit_chain[idx][0].back(),
                                      udg.overlay.exit_chain[nidx][1].back(),
                                      udg.overlay.rep_node[nidx]};
      path.erase(std::unique(path.begin(), path.end()), path.end());
      print_path(udg.overlay, path);
      shown = true;
    }
  }

  // --- Figure 6: the NN 5-edge path ---
  std::cout << "\nFigure 6 — 4-relay path between adjacent good-tile representatives (NN):\n";
  const NnSensResult nn = build_nn_sens(NnTileSpec::paper(), 8, 8, env.seed + 1);
  const SiteGrid& ngrid = nn.overlay.sites;
  shown = false;
  for (std::int32_t y = 0; y < ngrid.height() && !shown; ++y) {
    for (std::int32_t x = 0; x + 1 < ngrid.width() && !shown; ++x) {
      if (!ngrid.open({x, y}) || !ngrid.open({x + 1, y})) continue;
      const std::size_t idx = nn.overlay.tile_index({x, y});
      const std::size_t nidx = nn.overlay.tile_index({x + 1, y});
      std::vector<std::uint32_t> path{nn.overlay.rep_node[idx]};
      for (const auto v : nn.overlay.exit_chain[idx][0]) path.push_back(v);
      const auto& back = nn.overlay.exit_chain[nidx][1];
      for (auto it = back.rbegin(); it != back.rend(); ++it) path.push_back(*it);
      path.push_back(nn.overlay.rep_node[nidx]);
      path.erase(std::unique(path.begin(), path.end()), path.end());
      print_path(nn.overlay, path);
      shown = true;
    }
  }

  // --- Figure 8: a routed packet's tile trace ---
  std::cout << "\nFigure 8 — routed packet: tile path (*) through the percolated mesh:\n\n";
  const auto reps = udg.overlay.giant_rep_sites();
  if (reps.size() >= 2) {
    const SensRouter router(udg.overlay);
    const MeshRouter mesh(udg.overlay.sites);
    const MeshRoute mr = mesh.route(reps.front(), reps.back());
    if (mr.success) {
      render_grid(udg.overlay.sites, mr.path);
      const SensRoute sr = router.route(reps.front(), reps.back());
      std::cout << "\ntile hops " << mr.hops() << ", node hops " << sr.node_hops() << ", probes "
                << mr.probes << "\n";
    }
  }

  std::cout << "\n(Figures 3 and 5 are the tile-geometry definitions — see\n"
               "UdgTileSpec/NnTileSpec and their region areas in E1/E2; Figures 7 and 9\n"
               "are the algorithms executed by sens/runtime, measured in E13/E14.)\n\n";
  env.footer();
  return 0;
}
