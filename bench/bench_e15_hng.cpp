// E15 — hierarchical neighbor graphs vs SENS vs the classical spanners.
//
// Bagchi-Madan-Premi (arXiv:0903.0742) build an energy-efficient bounded-
// expected-degree connected structure over the same Poisson workload as
// SENS by p-thinning levels + per-level k-NN linking. This bench builds
// HNG, UDG, Gabriel, RNG, Yao and UDG-SENS over the *same* Poisson points
// and compares the hierarchy shape, degree/sparsity/connectivity, length
// stretch, and power stretch (Li-Wan-Wang exponents beta in [2, 5]) —
// extending the E12 baseline study with a second principled sparse
// construction. Construction wall-clock is printed as a table but kept out
// of the --json document, which must stay byte-identical across runs and
// --threads values (the bench-json CI job cmp's it).
#include <cmath>

#include "bench_common.hpp"
#include "sens/baselines/spanners.hpp"
#include "sens/core/nn_sens.hpp"
#include "sens/core/sens_router.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/geograph/udg.hpp"
#include "sens/graph/components.hpp"
#include "sens/graph/dijkstra.hpp"
#include "sens/hng/hng.hpp"
#include "sens/rng/rng.hpp"
#include "sens/spatial/kdtree.hpp"
#include "sens/support/stats.hpp"
#include "sens/tiles/classify.hpp"
#include "sens/tiles/nn_tile.hpp"

using namespace sens;
using namespace sens::bench;

namespace {

/// Per-arc weight arrays for every metric the pair loop queries, built once
/// per graph (CsrGraph::arc_weights, DESIGN.md §2.4).
struct MetricWeights {
  std::vector<double> length;
  std::vector<double> power2;
  std::vector<double> power3;
  std::vector<double> power5;

  explicit MetricWeights(const GeoGraph& g)
      : length(g.length_arc_weights()),
        power2(g.power_arc_weights(2.0)),
        power3(g.power_arc_weights(3.0)),
        power5(g.power_arc_weights(5.0)) {}
};

struct Agg {
  RunningStats len_stretch;
  RunningStats pow2_stretch;
  RunningStats pow3_stretch;
  RunningStats pow5_stretch;
};

void sparsity_row(Table& t, const std::string& name, const GeoGraph& g) {
  t.add_row({name, Table::fmt_int(static_cast<long long>(g.size())),
             Table::fmt_int(static_cast<long long>(g.graph.num_edges())),
             Table::fmt(g.graph.mean_degree(), 4),
             Table::fmt_int(static_cast<long long>(g.graph.max_degree())),
             Table::fmt_int(static_cast<long long>(connected_components(g.graph).count()))});
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("E15 / hierarchical neighbor graphs vs SENS and spanners",
             "HNG (arXiv:0903.0742) is a connected bounded-expected-degree power-efficient "
             "structure over the same Poisson points as SENS");

  const int tiles = env.scale > 1 ? 40 : 28;
  const double lambda = 25.0;
  const HngParams hng_params{.promote_p = 0.25, .k = 3, .max_level = 48};

  Table cost({"graph", "build ms"});
  Timer build_timer;
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), lambda, tiles, tiles, env.seed);
  cost.add_row({"UDG-SENS (incl. points)", Table::fmt(build_timer.millis(), 2)});
  const Box window = r.points.window;
  build_timer.reset();
  const GeoGraph udg = build_udg(r.points.points, window, 1.0);
  cost.add_row({"UDG(2,25)", Table::fmt(build_timer.millis(), 2)});
  build_timer.reset();
  const GeoGraph gg = gabriel_graph(udg);
  cost.add_row({"Gabriel", Table::fmt(build_timer.millis(), 2)});
  build_timer.reset();
  const GeoGraph rng_g = relative_neighborhood_graph(udg);
  cost.add_row({"RNG", Table::fmt(build_timer.millis(), 2)});
  build_timer.reset();
  const GeoGraph yao = yao_graph(udg, 7);
  cost.add_row({"Yao(7)", Table::fmt(build_timer.millis(), 2)});
  build_timer.reset();
  const HngResult hng = build_hng(r.points.points, hng_params, env.seed);
  cost.add_row({"HNG(p=0.25, k=3)", Table::fmt(build_timer.millis(), 2)});

  // NN-SENS over the *same* Poisson points. The NN model is scale free
  // (Section 2.2: unit density WLOG), so the shared points are rescaled by
  // s = sqrt(lambda) to unit density and classified with the paper's
  // Theorem 2.4 tile spec on the interior tiles of the rescaled window;
  // lengths and powers map back through 1/s and 1/s^beta, so the stretch
  // ratios below are directly comparable with the UDG-normalized tables.
  build_timer.reset();
  const double nn_s = std::sqrt(lambda);
  std::vector<Vec2> nn_points(r.points.points.size());
  for (std::size_t i = 0; i < nn_points.size(); ++i) nn_points[i] = r.points.points[i] * nn_s;
  const NnTileSpec nn_spec = NnTileSpec::paper();
  const Box nn_box{window.lo * nn_s, window.hi * nn_s};
  TileWindow nn_window;
  nn_window.i0 = static_cast<std::int64_t>(std::ceil(nn_box.lo.x / nn_spec.side()));
  nn_window.j0 = static_cast<std::int64_t>(std::ceil(nn_box.lo.y / nn_spec.side()));
  nn_window.width = static_cast<std::int32_t>(
      static_cast<std::int64_t>(std::floor(nn_box.hi.x / nn_spec.side())) - nn_window.i0);
  nn_window.height = static_cast<std::int32_t>(
      static_cast<std::int64_t>(std::floor(nn_box.hi.y / nn_spec.side())) - nn_window.j0);
  const NnClassification nn_cls = classify_nn(nn_spec, nn_points, nn_window);
  const KdTree nn_tree(nn_points);
  const Overlay nn_ov = build_nn_overlay(nn_cls, nn_points, nn_tree);
  cost.add_row({"NN-SENS (classify + overlay)", Table::fmt(build_timer.millis(), 2)});

  // The p-thinning hierarchy: |S_l| should decay geometrically with ratio
  // ~p, and the top population (the mutually-linked clique) should be O(1).
  Table hier({"level", "|S_l| (level >= l)", "exact-level nodes", "links per node"});
  for (std::uint32_t l = 1; l <= hng.top_level; ++l) {
    const std::uint32_t cum = hng.cumulative_size[l - 1];
    const std::uint32_t next = l < hng.top_level ? hng.cumulative_size[l] : 0;
    const std::string links =
        l == hng.top_level
            ? "clique(" + std::to_string(cum) + ")"
            : "k-NN(" + std::to_string(std::min<std::size_t>(hng_params.k, next)) + ")";
    hier.add_row({Table::fmt_int(l), Table::fmt_int(cum), Table::fmt_int(cum - next), links});
  }
  env.emit("HNG hierarchy (p-thinning populations; top level interconnects mutually)", hier);

  Table deg({"graph", "nodes in use", "edges", "mean degree", "max degree", "components"});
  sparsity_row(deg, "UDG(2,25)", udg);
  sparsity_row(deg, "Gabriel", gg);
  sparsity_row(deg, "RNG", rng_g);
  sparsity_row(deg, "Yao(7)", yao);
  sparsity_row(deg, "UDG-SENS", r.overlay.geo);
  sparsity_row(deg, "NN-SENS", nn_ov.geo);
  sparsity_row(deg, "HNG(p=0.25, k=3)", hng.geo);
  env.emit("sparsity and connectivity (all graphs over the same Poisson points; "
           "SENS keeps only elected nodes, HNG keeps every node; NN-SENS tiles the "
           "rescaled window, so its node budget covers fewer, larger tiles)",
           deg);

  // Stretch between SENS representatives — points present in every graph
  // (HNG spans all nodes, so rep node ids are valid there too).
  const auto reps = r.overlay.giant_rep_sites();
  Rng pick = Rng::stream(env.seed, 0xe15);
  const std::size_t pairs = 25 * env.scale;

  Agg agg_udg, agg_gg, agg_rng, agg_yao, agg_sens, agg_hng;
  const SensRouter sens_router(r.overlay);

  const MetricWeights w_udg(udg), w_gg(gg), w_rng(rng_g), w_yao(yao), w_hng(hng.geo);
  DijkstraScratch scratch;
  SensRouteScratch route_scratch;

  std::size_t used = 0;
  for (std::size_t t = 0; t < pairs * 4 && used < pairs; ++t) {
    const Site sa = reps[pick.uniform_index(reps.size())];
    const Site sb = reps[pick.uniform_index(reps.size())];
    if (sa == sb) continue;
    const std::uint32_t a = r.overlay.base_index[r.overlay.rep_of(sa)];
    const std::uint32_t b = r.overlay.base_index[r.overlay.rep_of(sb)];
    const double straight = dist(r.points.points[a], r.points.points[b]);
    if (straight < 5.0) continue;

    const double udg_len = dijkstra_cost(udg.graph, a, b, w_udg.length, scratch);
    const double udg_p2 = dijkstra_cost(udg.graph, a, b, w_udg.power2, scratch);
    const double udg_p3 = dijkstra_cost(udg.graph, a, b, w_udg.power3, scratch);
    const double udg_p5 = dijkstra_cost(udg.graph, a, b, w_udg.power5, scratch);
    if (udg_len >= kInfCost) continue;

    auto eval = [&](const GeoGraph& g, const MetricWeights& w, Agg& agg) {
      const double len = dijkstra_cost(g.graph, a, b, w.length, scratch);
      if (len >= kInfCost) return;
      agg.len_stretch.add(len / straight);
      agg.pow2_stretch.add(dijkstra_cost(g.graph, a, b, w.power2, scratch) / udg_p2);
      agg.pow3_stretch.add(dijkstra_cost(g.graph, a, b, w.power3, scratch) / udg_p3);
      agg.pow5_stretch.add(dijkstra_cost(g.graph, a, b, w.power5, scratch) / udg_p5);
    };
    eval(udg, w_udg, agg_udg);
    eval(gg, w_gg, agg_gg);
    eval(rng_g, w_rng, agg_rng);
    eval(yao, w_yao, agg_yao);
    eval(hng.geo, w_hng, agg_hng);

    // SENS: the actual routed path (not an omniscient shortest path).
    const SensRoute route = sens_router.route(sa, sb, route_scratch);
    if (route.success) {
      agg_sens.len_stretch.add(route.euclid_length / straight);
      agg_sens.pow2_stretch.add(route.power2 / udg_p2);
      agg_sens.pow3_stretch.add(r.overlay.geo.path_power(route.node_path, 3.0) / udg_p3);
      agg_sens.pow5_stretch.add(r.overlay.geo.path_power(route.node_path, 5.0) / udg_p5);
    }
    ++used;
  }

  Table st({"graph", "length stretch mean", "length stretch max", "power stretch b=2 (mean)",
            "power stretch b=3 (mean)", "power stretch b=5 (mean)"});
  auto row = [&](const std::string& name, const Agg& a) {
    st.add_row({name, Table::fmt(a.len_stretch.mean(), 4), Table::fmt(a.len_stretch.max(), 4),
                Table::fmt(a.pow2_stretch.mean(), 4), Table::fmt(a.pow3_stretch.mean(), 4),
                Table::fmt(a.pow5_stretch.mean(), 4)});
  };
  row("UDG (optimal)", agg_udg);
  row("Gabriel", agg_gg);
  row("RNG", agg_rng);
  row("Yao(7)", agg_yao);
  row("UDG-SENS (routed)", agg_sens);
  row("HNG(p=0.25, k=3)", agg_hng);
  env.emit("stretch between SENS representatives (power stretch normalized to the optimal "
           "UDG path; HNG links may exceed the unit disk radius)",
           st);

  // Stretch between NN-SENS representatives. NN good tiles live on the
  // rescaled window, so the pairs differ from the UDG-rep pairs above; the
  // UDG optimal path between the same base points (same point ids via
  // base_index) is the per-pair normalizer, exactly as in the main table.
  const auto nn_reps = nn_ov.giant_rep_sites();
  Agg agg_nn_opt, agg_nn;
  if (nn_reps.size() >= 2) {
    const SensRouter nn_router(nn_ov);
    SensRouteScratch nn_scratch;
    Rng nn_pick = Rng::stream(env.seed, 0xe15, 2);
    std::size_t nn_used = 0;
    for (std::size_t t = 0; t < pairs * 4 && nn_used < pairs; ++t) {
      const Site sa = nn_reps[nn_pick.uniform_index(nn_reps.size())];
      const Site sb = nn_reps[nn_pick.uniform_index(nn_reps.size())];
      if (sa == sb) continue;
      const std::uint32_t a = nn_ov.base_index[nn_ov.rep_of(sa)];
      const std::uint32_t b = nn_ov.base_index[nn_ov.rep_of(sb)];
      const double straight = dist(r.points.points[a], r.points.points[b]);
      if (straight < 5.0) continue;

      const double udg_len = dijkstra_cost(udg.graph, a, b, w_udg.length, scratch);
      const double udg_p2 = dijkstra_cost(udg.graph, a, b, w_udg.power2, scratch);
      const double udg_p3 = dijkstra_cost(udg.graph, a, b, w_udg.power3, scratch);
      const double udg_p5 = dijkstra_cost(udg.graph, a, b, w_udg.power5, scratch);
      if (udg_len >= kInfCost) continue;
      agg_nn_opt.len_stretch.add(udg_len / straight);
      agg_nn_opt.pow2_stretch.add(1.0);
      agg_nn_opt.pow3_stretch.add(1.0);
      agg_nn_opt.pow5_stretch.add(1.0);

      const SensRoute route = nn_router.route(sa, sb, nn_scratch);
      if (route.success) {
        agg_nn.len_stretch.add(route.euclid_length / nn_s / straight);
        agg_nn.pow2_stretch.add(route.power2 / (nn_s * nn_s) / udg_p2);
        agg_nn.pow3_stretch.add(nn_ov.geo.path_power(route.node_path, 3.0) /
                                std::pow(nn_s, 3.0) / udg_p3);
        agg_nn.pow5_stretch.add(nn_ov.geo.path_power(route.node_path, 5.0) /
                                std::pow(nn_s, 5.0) / udg_p5);
      }
      ++nn_used;
    }
  }
  Table nnst({"graph", "length stretch mean", "length stretch max", "power stretch b=2 (mean)",
              "power stretch b=3 (mean)", "power stretch b=5 (mean)"});
  auto nn_row = [&](const std::string& name, const Agg& a) {
    nnst.add_row({name, Table::fmt(a.len_stretch.mean(), 4), Table::fmt(a.len_stretch.max(), 4),
                  Table::fmt(a.pow2_stretch.mean(), 4), Table::fmt(a.pow3_stretch.mean(), 4),
                  Table::fmt(a.pow5_stretch.mean(), 4)});
  };
  nn_row("UDG (optimal)", agg_nn_opt);
  nn_row("NN-SENS (routed)", agg_nn);
  env.emit("stretch between NN-SENS representatives (lengths and powers rescaled back from "
           "the unit-density window by 1/s^beta, s = sqrt(lambda); normalizer is the optimal "
           "UDG path between the same base points)",
           nnst);

  // Wall-clock is deliberately *not* emitted: the --json document must be
  // byte-identical across runs and --threads values.
  std::cout << "**construction wall-clock (excluded from --json)**\n\n";
  cost.print(std::cout);
  std::cout << "\nnote: HNG keeps every node awake but needs no tiling, no election and no\n"
               "percolation margin; SENS elects ~5 nodes/tile and caps max degree at 4.\n\n";
  env.footer();
  return 0;
}
