// A1 — ablation: UDG tile geometry. Sweeps (side, r0) with reach = 1 - r0
// over the worst-case-feasible set and reports the measured density
// threshold lambda_s of each spec — showing where the shipped strict()
// preset sits and what the guarantee costs relative to the paper preset.
#include "bench_common.hpp"
#include "sens/rng/rng.hpp"
#include "sens/tiles/good_prob.hpp"

using namespace sens;
using namespace sens::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("A1 / ablation (UDG tile geometry)",
             "design choice: strict() = (side 0.84, r0 0.35, reach 0.65)");

  const std::size_t trials = 2500 * env.scale;
  const double target = 0.593;

  Table t({"side", "r0", "reach=1-r0", "feasible (Claim 2.1)", "lambda_s (P(good)=0.593)"});
  for (const double r0 : {0.25, 0.30, 0.35, 0.40, 0.45}) {
    for (const double side : {0.70, 0.78, 0.84, 0.92, 1.00, 1.10}) {
      const UdgTileSpec spec = UdgTileSpec::custom(side, r0, 1.0 - r0);
      const bool ok = spec.guarantees_paths();
      std::string ls = "-";
      if (ok) {
        ls = Table::fmt(find_udg_lambda_threshold(spec, target, trials,
                                                  mix_seed(env.seed, static_cast<std::uint64_t>(r0 * 1e4) +
                                                                         static_cast<std::uint64_t>(side * 1e2)),
                                                  0.5, 128.0, 18),
                        4);
      }
      t.add_row({Table::fmt(side, 3), Table::fmt(r0, 3), Table::fmt(1.0 - r0, 3),
                 ok ? "yes" : "no", ls});
    }
  }
  env.emit("measured lambda_s over the guaranteed-geometry family", t);

  std::cout << "reading: larger tiles lower the threshold until the relay lens "
               "shrinks past feasibility;\nthe shipped strict() preset is near the sweet spot.\n\n";
  env.footer();
  return 0;
}
