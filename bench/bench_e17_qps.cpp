// E17 — routing as a service: batched query throughput on a shared engine.
//
// One QueryEngine is built over the UDG-SENS overlay (length weights +
// landmark oracle, DESIGN.md §2.6) and then serves the same 10^5 x scale
// query batch through every cell of the {exact, oracle} x {1, 2, 8 caller
// threads} matrix, callers slicing the batch into disjoint contiguous
// subspans. The bench *asserts* the serving contract before printing:
// per mode, the FNV-1a digest of the answer array must be identical for
// every caller count (and, transitively, across --threads settings — the
// bench-json CI job cmp's the --json document across --threads 1/2/8).
// Wall-clock QPS is printed as a table but kept out of --json.
//
// The oracle mode reports how many answers were certified from the
// landmark bracket alone versus recomputed exactly; the QPS gap between
// the two modes is the point of the serve layer (bench/BENCH_serve.json
// records a measured run).
#include <algorithm>
#include <cstring>
#include <optional>
#include <thread>

#include "bench_common.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/obs/obs.hpp"
#include "sens/rng/rng.hpp"
#include "sens/serve/query_engine.hpp"

using namespace sens;
using namespace sens::bench;

namespace {

/// FNV-1a over the raw bits of the answer array: equal digests == equal
/// bytes, the currency of the §2.6 determinism checks.
std::uint64_t digest_doubles(std::span<const double> xs) {
  std::uint64_t h = 1469598103934665603ull;
  for (const double x : xs) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &x, sizeof bits);
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  constexpr char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// Each caller thread serves its slice in sub-batches this long and
/// histograms the per-query latency of every sub-batch (one clock pair per
/// 1024 queries — unmeasurable against the serve itself). Answers, digests
/// and ServeStats are unaffected by the sub-batching: every query is a pure
/// function of (engine, query).
constexpr std::size_t kLatencySubBatch = 1024;

struct RunResult {
  double qps = 0.0;
  std::uint64_t digest = 0;
  ServeStats stats;
  std::vector<obs::LatencyHistogram> latency;  ///< one per caller thread
};

/// Serve the whole batch with `callers` threads slicing it into disjoint
/// contiguous subspans of one shared engine.
RunResult run_mode(const QueryEngine& engine, std::span<const Query> qs, bool oracle_mode,
                   std::size_t callers) {
  std::vector<double> out(qs.size());
  std::vector<ServeStats> stats(callers);
  std::vector<obs::LatencyHistogram> lat(callers);
  Timer timer;
  auto serve_slice = [&](std::size_t c) {
    const std::size_t slice = qs.size() / callers;
    const std::size_t begin = c * slice;
    const std::size_t count = c + 1 == callers ? qs.size() - begin : slice;
    const auto sub = qs.subspan(begin, count);
    const auto dst = std::span<double>(out).subspan(begin, count);
    for (std::size_t off = 0; off < sub.size(); off += kLatencySubBatch) {
      const std::size_t nb = std::min(kLatencySubBatch, sub.size() - off);
      const std::uint64_t t0 = monotonic_ns();
      if (oracle_mode) {
        stats[c] += engine.estimate_distances(sub.subspan(off, nb), dst.subspan(off, nb));
      } else {
        engine.exact_distances(sub.subspan(off, nb), dst.subspan(off, nb));
        stats[c].queries += nb;
        stats[c].exact += nb;
        for (const double d : dst.subspan(off, nb)) {
          if (d >= kInfCost) ++stats[c].disconnected;
        }
      }
      lat[c].record((monotonic_ns() - t0) / nb);
    }
  };
  if (callers == 1) {
    serve_slice(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(callers);
    for (std::size_t c = 0; c < callers; ++c) threads.emplace_back(serve_slice, c);
    for (auto& t : threads) t.join();
  }
  RunResult r;
  r.qps = static_cast<double>(qs.size()) / timer.seconds();
  r.digest = digest_doubles(out);
  for (const ServeStats& s : stats) r.stats += s;
  r.latency = std::move(lat);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("E17 / routing as a service: batched query throughput",
             "one immutable QueryEngine over the SENS overlay serves concurrent caller "
             "threads bit-identically; landmark-certified answers amortize Dijkstra away");

  const int tiles = env.scale > 1 ? 40 : 28;
  const double lambda = 25.0;
  const UdgSensResult r = [&] {
    const ScopedSpan span("e17/build-overlay");
    return build_udg_sens(UdgTileSpec::strict(), lambda, tiles, tiles, env.seed);
  }();
  const GeoGraph& geo = r.overlay.geo;

  const QueryEngineParams params{.num_landmarks = 64, .max_stretch = 1.5, .seed = env.seed};
  Timer build_timer;
  std::optional<QueryEngine> engine_slot;
  {
    const ScopedSpan span("e17/build-engine");
    engine_slot.emplace(geo.graph, geo.length_arc_weights(), params);
  }
  const QueryEngine& engine = *engine_slot;
  const double build_ms = build_timer.millis();

  // Queries between giant-component overlay nodes: cross-component pairs
  // would certify trivially (the oracle detects disconnection in O(L)) and
  // flatter the oracle QPS.
  std::vector<std::uint32_t> giant;
  for (std::uint32_t v = 0; v < geo.graph.num_vertices(); ++v) {
    if (r.overlay.comps.in_largest(v)) giant.push_back(v);
  }
  const std::size_t num_queries = 100000 * env.scale;
  Rng pick = Rng::stream(env.seed, 0xe17);
  std::vector<Query> qs(num_queries);
  for (Query& q : qs) {
    q.src = giant[pick.uniform_index(giant.size())];
    q.dst = giant[pick.uniform_index(giant.size())];
  }

  Table setup({"overlay nodes", "edges", "giant nodes", "landmarks", "stretch budget",
               "queries"});
  setup.add_row({Table::fmt_int(static_cast<long long>(geo.size())),
                 Table::fmt_int(static_cast<long long>(geo.graph.num_edges())),
                 Table::fmt_int(static_cast<long long>(giant.size())),
                 Table::fmt_int(static_cast<long long>(engine.oracle().num_landmarks())),
                 Table::fmt(engine.max_stretch(), 2),
                 Table::fmt_int(static_cast<long long>(num_queries))});
  env.emit("serving setup (one engine, built once)", setup);

  const std::size_t caller_counts[] = {1, 2, 8};
  RunResult exact_runs[3];
  RunResult oracle_runs[3];
  {
    const ScopedSpan span("e17/serve-exact");
    for (std::size_t i = 0; i < 3; ++i) {
      exact_runs[i] = run_mode(engine, qs, false, caller_counts[i]);
    }
  }
  {
    const ScopedSpan span("e17/serve-oracle");
    for (std::size_t i = 0; i < 3; ++i) {
      oracle_runs[i] = run_mode(engine, qs, true, caller_counts[i]);
    }
  }

  // The §2.6 contract, enforced: every caller count must produce the same
  // bytes per mode. A mismatch is a bench failure, not a table footnote.
  for (std::size_t i = 1; i < 3; ++i) {
    if (exact_runs[i].digest != exact_runs[0].digest ||
        oracle_runs[i].digest != oracle_runs[0].digest ||
        oracle_runs[i].stats.certified != oracle_runs[0].stats.certified) {
      std::cerr << "error: answers differ across caller counts (serving contract violated)\n";
      return 1;
    }
  }

  Table answers({"mode", "answer digest (fnv1a)", "certified", "exact fallbacks",
                 "disconnected"});
  answers.add_row({"exact", hex64(exact_runs[0].digest), Table::fmt_int(0),
                   Table::fmt_int(static_cast<long long>(exact_runs[0].stats.exact)),
                   Table::fmt_int(static_cast<long long>(exact_runs[0].stats.disconnected))});
  answers.add_row({"oracle", hex64(oracle_runs[0].digest),
                   Table::fmt_int(static_cast<long long>(oracle_runs[0].stats.certified)),
                   Table::fmt_int(static_cast<long long>(oracle_runs[0].stats.exact)),
                   Table::fmt_int(static_cast<long long>(oracle_runs[0].stats.disconnected))});
  env.emit("answers (digest identical for 1, 2 and 8 caller threads — asserted)", answers);

  // Wall-clock is deliberately *not* emitted: the --json document must be
  // byte-identical across runs and --threads values.
  Table qps({"mode", "callers=1 qps", "callers=2 qps", "callers=8 qps"});
  auto qps_row = [&](const std::string& name, const RunResult runs[3]) {
    qps.add_row({name, Table::fmt_int(static_cast<long long>(runs[0].qps)),
                 Table::fmt_int(static_cast<long long>(runs[1].qps)),
                 Table::fmt_int(static_cast<long long>(runs[2].qps))});
  };
  qps_row("exact", exact_runs);
  qps_row("oracle", oracle_runs);
  std::cout << "**throughput (excluded from --json; engine build "
            << Table::fmt(build_ms, 2) << " ms)**\n\n";
  qps.print(std::cout);
  std::cout << "\noracle@8 / exact@1 speedup: "
            << Table::fmt(oracle_runs[2].qps / exact_runs[0].qps, 4) << "x\n\n";

  // Per-caller-thread serving latency (DESIGN.md §2.10): each caller
  // histograms the mean per-query ns of its 1024-query sub-batches, so the
  // percentiles below are of *per-query latency* as one caller sees it.
  // Timing observables never enter --json.
  Table lat({"mode", "callers", "caller thread", "p50 us", "p95 us", "p99 us", "sub-batches"});
  auto lat_rows = [&](const std::string& name, const RunResult runs[3]) {
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t t = 0; t < runs[i].latency.size(); ++t) {
        const obs::LatencyHistogram& h = runs[i].latency[t];
        lat.add_row({name, Table::fmt_int(static_cast<long long>(caller_counts[i])),
                     Table::fmt_int(static_cast<long long>(t)),
                     Table::fmt(static_cast<double>(h.percentile_ns(0.50)) / 1e3, 2),
                     Table::fmt(static_cast<double>(h.percentile_ns(0.95)) / 1e3, 2),
                     Table::fmt(static_cast<double>(h.percentile_ns(0.99)) / 1e3, 2),
                     Table::fmt_int(static_cast<long long>(h.count()))});
      }
    }
  };
  lat_rows("exact", exact_runs);
  lat_rows("oracle", oracle_runs);
  std::cout << "**per-caller-thread latency percentiles (excluded from --json)**\n\n";
  lat.print(std::cout);
  std::cout << "\n";
  env.footer();
  return 0;
}
