// E14 — Figure 9 as traffic: per-packet message and energy budgets of
// routing on the SENS overlay through the event-driven runtime.
#include "bench_common.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/rng/rng.hpp"
#include "sens/runtime/route_proto.hpp"
#include "sens/support/stats.hpp"

using namespace sens;
using namespace sens::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("E14 / Figure 9 (routing protocol traffic)",
             "per-packet cost = data hops + probe exchanges; energy = sum d^beta");

  const int tiles = env.scale > 1 ? 64 : 40;
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), 25.0, tiles, tiles, env.seed);
  const auto reps = r.overlay.giant_rep_sites();

  RoutingProtocol proto(r.overlay, 2.0);
  Rng pick = Rng::stream(env.seed, 0xf19);
  RunningStats data_msgs, probe_msgs, energy, node_hops, per_tile;
  std::size_t failures = 0;
  const std::size_t packets = 50 * env.scale;
  for (std::size_t i = 0; i < packets; ++i) {
    const Site a = reps[pick.uniform_index(reps.size())];
    const Site b = reps[pick.uniform_index(reps.size())];
    if (lattice_distance(a, b) < 4) continue;
    const RouteTrafficReport rep = proto.send_packet(a, b);
    if (!rep.success) {
      ++failures;
      continue;
    }
    data_msgs.add(static_cast<double>(rep.data_messages));
    probe_msgs.add(static_cast<double>(rep.probe_messages));
    energy.add(rep.energy);
    node_hops.add(static_cast<double>(rep.node_hops));
    per_tile.add(static_cast<double>(rep.total_messages) /
                 static_cast<double>(std::max<std::size_t>(1, rep.tile_hops)));
  }

  Table t({"metric", "mean", "min", "max"});
  auto row = [&](const std::string& name, const RunningStats& s) {
    t.add_row({name, Table::fmt(s.mean(), 4), Table::fmt(s.min(), 4), Table::fmt(s.max(), 4)});
  };
  row("data messages / packet", data_msgs);
  row("probe messages / packet", probe_msgs);
  row("transmit energy / packet (beta=2)", energy);
  row("node hops / packet", node_hops);
  row("total messages per tile hop", per_tile);
  env.emit("per-packet traffic over " + Table::fmt_int(static_cast<long long>(data_msgs.count())) +
               " delivered packets (failures: " + Table::fmt_int(static_cast<long long>(failures)) + ")",
           t);

  std::cout << "cumulative network energy: " << Table::fmt(proto.total_energy(), 5)
            << " (messages: " << proto.messages_sent() << ")\n\n";
  env.footer();
  return 0;
}
