// E12 — power efficiency vs the classical topology-control baselines.
//
// Li-Wan-Wang: a subgraph with distance stretch delta has power stretch at
// most delta^beta, beta in [2, 5]. This bench builds UDG, Gabriel, RNG,
// Yao and UDG-SENS over the *same* Poisson points and compares mean degree,
// Euclidean length stretch and power stretch (vs the optimal UDG path)
// between SENS representatives.
#include <cmath>

#include "bench_common.hpp"
#include "sens/baselines/spanners.hpp"
#include "sens/core/sens_router.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/geograph/udg.hpp"
#include "sens/graph/dijkstra.hpp"
#include "sens/rng/rng.hpp"
#include "sens/support/stats.hpp"

using namespace sens;
using namespace sens::bench;

namespace {

/// Per-arc weight arrays for the three metrics every pair queries, built
/// once per graph (CsrGraph::arc_weights, DESIGN.md §2.4): the Dijkstra
/// inner loop reads flat arrays instead of invoking a callable per edge.
struct MetricWeights {
  std::vector<double> length;
  std::vector<double> power2;
  std::vector<double> power4;

  explicit MetricWeights(const GeoGraph& g)
      : length(g.length_arc_weights()),
        power2(g.power_arc_weights(2.0)),
        power4(g.power_arc_weights(4.0)) {}
};

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("E12 / power efficiency vs baselines",
             "SENS is power-efficient up to a constant factor (power stretch <= delta^beta)");

  const int tiles = env.scale > 1 ? 40 : 28;
  const double lambda = 25.0;
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), lambda, tiles, tiles, env.seed);
  const Box window = r.points.window;
  const GeoGraph udg = build_udg(r.points.points, window, 1.0);
  const GeoGraph gg = gabriel_graph(udg);
  const GeoGraph rng_g = relative_neighborhood_graph(udg);
  const GeoGraph yao = yao_graph(udg, 7);

  Table deg({"graph", "nodes in use", "mean degree", "edges"});
  deg.add_row({"UDG(2,25)", Table::fmt_int(static_cast<long long>(udg.size())),
               Table::fmt(udg.graph.mean_degree(), 4),
               Table::fmt_int(static_cast<long long>(udg.graph.num_edges()))});
  deg.add_row({"Gabriel", Table::fmt_int(static_cast<long long>(gg.size())),
               Table::fmt(gg.graph.mean_degree(), 4),
               Table::fmt_int(static_cast<long long>(gg.graph.num_edges()))});
  deg.add_row({"RNG", Table::fmt_int(static_cast<long long>(rng_g.size())),
               Table::fmt(rng_g.graph.mean_degree(), 4),
               Table::fmt_int(static_cast<long long>(rng_g.graph.num_edges()))});
  deg.add_row({"Yao(7)", Table::fmt_int(static_cast<long long>(yao.size())),
               Table::fmt(yao.graph.mean_degree(), 4),
               Table::fmt_int(static_cast<long long>(yao.graph.num_edges()))});
  deg.add_row({"UDG-SENS", Table::fmt_int(static_cast<long long>(r.overlay.geo.size())),
               Table::fmt(r.overlay.geo.graph.mean_degree(), 4),
               Table::fmt_int(static_cast<long long>(r.overlay.geo.graph.num_edges()))});
  env.emit("sparsity (all graphs over the same Poisson points; SENS keeps only elected nodes)",
           deg);

  // Stretch between SENS representatives (present in every graph).
  const auto reps = r.overlay.giant_rep_sites();
  Rng pick = Rng::stream(env.seed, 0xba5e);
  const std::size_t pairs = 25 * env.scale;

  struct Agg {
    RunningStats len_stretch;
    RunningStats pow2_stretch;
    RunningStats pow4_stretch;
  };
  Agg agg_udg, agg_gg, agg_rng, agg_yao, agg_sens;
  const SensRouter sens_router(r.overlay);

  // Weight arrays built once per graph; one Dijkstra scratch serves every
  // query below (allocation-free early-exit runs, DESIGN.md §2.4).
  const MetricWeights w_udg(udg), w_gg(gg), w_rng(rng_g), w_yao(yao);
  DijkstraScratch scratch;
  SensRouteScratch route_scratch;

  std::size_t used = 0;
  for (std::size_t t = 0; t < pairs * 4 && used < pairs; ++t) {
    const Site sa = reps[pick.uniform_index(reps.size())];
    const Site sb = reps[pick.uniform_index(reps.size())];
    if (sa == sb) continue;
    const std::uint32_t a = r.overlay.base_index[r.overlay.rep_of(sa)];
    const std::uint32_t b = r.overlay.base_index[r.overlay.rep_of(sb)];
    const double straight = dist(r.points.points[a], r.points.points[b]);
    if (straight < 5.0) continue;

    const double udg_len = dijkstra_cost(udg.graph, a, b, w_udg.length, scratch);
    const double udg_p2 = dijkstra_cost(udg.graph, a, b, w_udg.power2, scratch);
    const double udg_p4 = dijkstra_cost(udg.graph, a, b, w_udg.power4, scratch);
    if (udg_len >= kInfCost) continue;

    auto eval = [&](const GeoGraph& g, const MetricWeights& w, Agg& agg) {
      const double len = dijkstra_cost(g.graph, a, b, w.length, scratch);
      if (len >= kInfCost) return;
      agg.len_stretch.add(len / straight);
      agg.pow2_stretch.add(dijkstra_cost(g.graph, a, b, w.power2, scratch) / udg_p2);
      agg.pow4_stretch.add(dijkstra_cost(g.graph, a, b, w.power4, scratch) / udg_p4);
    };
    eval(udg, w_udg, agg_udg);
    eval(gg, w_gg, agg_gg);
    eval(rng_g, w_rng, agg_rng);
    eval(yao, w_yao, agg_yao);

    // SENS: the actual routed path (not an omniscient shortest path).
    const SensRoute route = sens_router.route(sa, sb, route_scratch);
    if (route.success) {
      agg_sens.len_stretch.add(route.euclid_length / straight);
      agg_sens.pow2_stretch.add(route.power2 / udg_p2);
      double p4 = 0.0;
      for (std::size_t i = 1; i < route.node_path.size(); ++i)
        p4 += std::pow(r.overlay.geo.edge_length(route.node_path[i - 1], route.node_path[i]), 4.0);
      agg_sens.pow4_stretch.add(p4 / udg_p4);
    }
    ++used;
  }

  Table st({"graph", "length stretch mean", "length stretch max", "power stretch b=2 (mean)",
            "power stretch b=4 (mean)"});
  auto row = [&](const std::string& name, const Agg& a) {
    st.add_row({name, Table::fmt(a.len_stretch.mean(), 4), Table::fmt(a.len_stretch.max(), 4),
                Table::fmt(a.pow2_stretch.mean(), 4), Table::fmt(a.pow4_stretch.mean(), 4)});
  };
  row("UDG (optimal)", agg_udg);
  row("Gabriel", agg_gg);
  row("RNG", agg_rng);
  row("Yao(7)", agg_yao);
  row("UDG-SENS (routed)", agg_sens);
  env.emit("stretch between SENS representatives (power stretch normalized to the optimal UDG path)",
           st);

  std::cout << "note: SENS trades a constant-factor stretch for max degree 4 and a\n"
               "node budget of ~5 elected nodes/tile; baselines keep every node awake.\n\n";
  env.footer();
  return 0;
}
