// E1 — Theorem 2.2: the density threshold lambda_s of UDG-SENS(2, lambda).
//
// The paper claims P(tile good) >= 0.593 at lambda_s = 1.568 for its 4/3
// tile. DESIGN.md §1.2 shows that number cannot follow from the stated
// construction; this bench measures the honest P(good)(lambda) curve for
// both the paper-literal preset and the strict preset, and locates the
// measured lambda_s where the curve crosses the site-percolation target.
#include "bench_common.hpp"
#include "sens/rng/rng.hpp"
#include "sens/tiles/good_prob.hpp"

using namespace sens;
using namespace sens::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("E1 / Theorem 2.2 (UDG-SENS density threshold)",
             "lambda_s = 1.568 makes P(tile good) >= 0.593 (site p_c)");

  const std::size_t trials = 4000 * env.scale;
  const double target = 0.593;

  for (const UdgTileSpec& spec : {UdgTileSpec::paper(), UdgTileSpec::strict()}) {
    Table t({"lambda", "P(good)", "wilson95", "expected pts/tile"});
    for (const double lambda : {1.0, 1.568, 3.0, 6.0, 10.0, 15.0, 20.0, 30.0}) {
      const Proportion p = udg_good_probability(spec, lambda, trials, mix_seed(env.seed, static_cast<std::uint64_t>(lambda * 1000)));
      t.add_row({Table::fmt(lambda), Table::fmt(p.estimate()),
                 "[" + Table::fmt(p.wilson_low(), 3) + ", " + Table::fmt(p.wilson_high(), 3) + "]",
                 Table::fmt(lambda * spec.side * spec.side, 4)});
    }
    env.emit("P(good) vs lambda — spec `" + spec.name + "` (side=" + Table::fmt(spec.side, 4) +
                 ", r0=" + Table::fmt(spec.rep_radius, 3) + ", reach=" + Table::fmt(spec.reach, 3) + ")",
             t);

    const double lambda_s = find_udg_lambda_threshold(spec, target, trials, env.seed + 1);
    Table s({"quantity", "paper", "measured"});
    s.add_row({"lambda_s (P(good) = 0.593)", spec.name == "paper" ? "1.568" : "n/a (our preset)",
               Table::fmt(lambda_s, 4)});
    s.add_row({"P(good) at lambda = 1.568", ">= 0.593",
               Table::fmt(udg_good_probability(spec, 1.568, trials, env.seed + 2).estimate(), 4)});
    s.add_row({"worst-case 3-hop guarantee", "claimed (Claim 2.1)",
               spec.guarantees_paths() ? "holds" : "does not hold"});
    env.emit("threshold — spec `" + spec.name + "`", s);
  }

  env.footer();
  return 0;
}
