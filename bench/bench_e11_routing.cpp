// E11 — Section 4.2 routing: the Angel et al. x-y router's probe budget is
// a constant times the shortest path, both on iid percolated grids and on
// coupled SENS goodness grids.
#include "bench_common.hpp"
#include "sens/core/sens_router.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/perc/chemical.hpp"
#include "sens/perc/clusters.hpp"
#include "sens/perc/mesh_router.hpp"
#include "sens/rng/rng.hpp"
#include "sens/support/stats.hpp"

using namespace sens;
using namespace sens::bench;

namespace {

struct RoutingRow {
  RunningStats probes_per_sp;  // probes / chemical shortest path
  RunningStats hops_per_sp;    // packet hops / chemical shortest path
  std::size_t failures = 0;
};

RoutingRow measure(const SiteGrid& grid, std::size_t pairs, std::uint64_t seed) {
  RoutingRow row;
  const ClusterLabels labels(grid);
  const MeshRouter router(grid);
  std::vector<Site> giant;
  for (std::size_t i = 0; i < grid.num_sites(); ++i)
    if (labels.in_largest(grid.site_at(i))) giant.push_back(grid.site_at(i));
  if (giant.size() < 2) return row;
  Rng rng = Rng::stream(seed, 0x40e7e);
  // Scratch + distance buffer hoisted out of the pair loop: every route and
  // chemical BFS below is allocation-free (DESIGN.md §2.4).
  MeshRouteScratch route_scratch;
  ChemicalScratch chem_scratch;
  std::vector<std::uint32_t> dists(grid.num_sites());
  for (std::size_t t = 0; t < pairs; ++t) {
    const Site a = giant[rng.uniform_index(giant.size())];
    const Site b = giant[rng.uniform_index(giant.size())];
    if (lattice_distance(a, b) < 8) continue;
    const MeshRoute route = router.route(a, b, route_scratch);
    if (!route.success) {
      ++row.failures;
      continue;
    }
    // Chemical shortest path as the baseline the theorem compares against.
    chemical_distances_into(grid, a, chem_scratch, dists);
    const double sp = dists[grid.index(b)];
    row.probes_per_sp.add(static_cast<double>(route.probes) / sp);
    row.hops_per_sp.add(static_cast<double>(route.hops()) / sp);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("E11 / Section 4.2 (distributed routing overhead)",
             "expected probes = O(shortest path) [Angel et al. 2005]");

  const std::int32_t n = env.scale > 1 ? 160 : 96;
  const std::size_t pairs = 60 * env.scale;

  Table t({"grid", "pairs ok", "failures", "probes/SP mean", "probes/SP max", "hops/SP mean"});
  for (const double p : {0.65, 0.70, 0.80, 0.90}) {
    const SiteGrid grid = SiteGrid::random(n, n, p, mix_seed(env.seed, static_cast<std::uint64_t>(p * 1e4)));
    const RoutingRow row = measure(grid, pairs, env.seed + 11);
    t.add_row({"iid p=" + Table::fmt(p, 3),
               Table::fmt_int(static_cast<long long>(row.probes_per_sp.count())),
               Table::fmt_int(static_cast<long long>(row.failures)),
               Table::fmt(row.probes_per_sp.mean(), 4), Table::fmt(row.probes_per_sp.max(), 4),
               Table::fmt(row.hops_per_sp.mean(), 4)});
  }
  // Coupled SENS grid (tile goodness in place of coin flips).
  const int tiles = env.scale > 1 ? 128 : 72;
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), 25.0, tiles, tiles, env.seed + 1);
  const RoutingRow row = measure(r.overlay.sites, pairs, env.seed + 12);
  t.add_row({"coupled UDG-SENS (P(good)~0.68)",
             Table::fmt_int(static_cast<long long>(row.probes_per_sp.count())),
             Table::fmt_int(static_cast<long long>(row.failures)),
             Table::fmt(row.probes_per_sp.mean(), 4), Table::fmt(row.probes_per_sp.max(), 4),
             Table::fmt(row.hops_per_sp.mean(), 4)});
  env.emit("probe overhead relative to the chemical shortest path", t);

  env.footer();
  return 0;
}
