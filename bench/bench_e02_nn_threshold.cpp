// E2 — Theorem 2.4: the degree threshold k_s of NN-SENS(2, k).
//
// Paper: at tile scale a = 0.893 (unit density), k = 188 is the smallest k
// with P(tile good) >= 0.593, improving Teng-Yao's bound of 213. One batch
// of tile samples yields the entire curve over k (only the occupancy cap
// k/2 depends on k). Also sweeps the tile scale a to check how close the
// paper's 0.893 is to optimal.
#include "bench_common.hpp"
#include "sens/rng/rng.hpp"
#include "sens/tiles/good_prob.hpp"

using namespace sens;
using namespace sens::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("E2 / Theorem 2.4 (NN-SENS degree threshold)",
             "k_c(2) <= k_s = 188 at tile scale a = 0.893; previous best 213 (Teng-Yao)");

  const std::size_t trials = 6000 * env.scale;
  const NnGoodCurve curve(0.893, trials, env.seed);

  Table t({"k", "cap k/2", "P(good)", "wilson95"});
  for (const std::size_t k : {120u, 150u, 170u, 182u, 188u, 200u, 213u, 240u}) {
    const Proportion p = curve.probability_at(k);
    t.add_row({Table::fmt_int(static_cast<long long>(k)), Table::fmt_int(static_cast<long long>(k / 2)),
               Table::fmt(p.estimate()),
               "[" + Table::fmt(p.wilson_low(), 3) + ", " + Table::fmt(p.wilson_high(), 3) + "]"});
  }
  env.emit("P(good) vs k at a = 0.893 (unit density)", t);

  Table s({"quantity", "paper", "measured"});
  s.add_row({"k_s (P(good) >= 0.593)", "188", Table::fmt_int(static_cast<long long>(curve.threshold_k(0.593)))});
  s.add_row({"P(good) at k = 188", ">= 0.593", Table::fmt(curve.probability_at(188).estimate(), 4)});
  s.add_row({"P(9 regions occupied), no cap", "n/a", Table::fmt(curve.occupancy_only().estimate(), 4)});
  env.emit("threshold", s);

  // Tile-scale sweep: is a = 0.893 near-optimal for k = 188?
  Table a_sweep({"a", "P(good) at k=188", "k_s at this a"});
  for (const double a : {0.75, 0.82, 0.86, 0.893, 0.93, 1.0, 1.1}) {
    const NnGoodCurve c(a, trials / 2, mix_seed(env.seed, static_cast<std::uint64_t>(a * 1e4)));
    const std::size_t ks = c.threshold_k(0.593);
    a_sweep.add_row({Table::fmt(a, 4), Table::fmt(c.probability_at(188).estimate(), 4),
                     ks == 0 ? "unreachable" : Table::fmt_int(static_cast<long long>(ks))});
  }
  env.emit("tile-scale ablation (paper picked a = 0.893)", a_sweep);

  env.footer();
  return 0;
}
