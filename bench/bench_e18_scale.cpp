// E18 — million-node scale tier: streaming generation, cache-ordered
// layouts, and batched-query throughput (DESIGN.md §2.8).
//
// The paper's constructions are motivated by *massive* sensor deployments,
// so this bench drives the full pipeline — streaming Poisson generation,
// UDG and HNG construction, batched BFS/Dijkstra/k-NN queries — at
// n ∈ {10^4, 10^5, 10^6} (10^7 rides behind --scale >= 10) and compares two
// node labelings of the same deployment:
//   deploy   ids in arrival order (a deterministic shuffle of the store —
//            the realistic regime: sensors get ids as they are switched on),
//   hilbert  the spatial/reorder relabeling along a Hilbert curve.
// The UDG is rebuilt from the permuted points (bit-identical to relabeling
// the deploy build — the `Reorder.*` oracle tests); the HNG is relabeled
// *after* construction, because its promotion levels are keyed by node id
// and a rebuild on permuted points would resample the hierarchy (§2.8).
// Either way both layouts carry the same graph, so the distance digests —
// batched BFS/Dijkstra rows mapped back to deploy ids and hashed — must
// agree bitwise across layouts, and the bench records that check in the
// JSON document.
//
// Wall clock, throughput and peak RSS are printed as tables but kept out of
// the --json document, which must stay byte-identical across runs and
// --threads values (the bench-json CI job cmp's it at 1/2/8 threads with
// --nmax 100000). Measured runs, including the hilbert/deploy throughput
// ratios at n = 10^6, are recorded in bench/BENCH_scale.json.
//
// Extra flag: --nmax N caps the size sweep (default 10^6).
#include <bit>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "sens/geograph/knn.hpp"
#include "sens/geograph/point_set.hpp"
#include "sens/geograph/udg.hpp"
#include "sens/graph/bfs.hpp"
#include "sens/graph/components.hpp"
#include "sens/graph/dijkstra.hpp"
#include "sens/hng/hng.hpp"
#include "sens/rng/rng.hpp"
#include "sens/spatial/reorder.hpp"

using namespace sens;
using namespace sens::bench;

namespace {

std::uint64_t mix64(std::uint64_t h, std::uint64_t x) {
  h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Batched sources per size — fewer rows at larger n so the default run
/// stays minutes, a pure function of n (never of threads or wall clock).
std::size_t source_count(std::size_t n) {
  if (n <= 10'000) return 32;
  if (n <= 100'000) return 16;
  if (n <= 1'000'000) return 8;
  return 4;
}

struct QueryRun {
  double knn_s = 0.0;
  double bfs_s = 0.0;
  double dij_s = 0.0;
  std::uint64_t bfs_digest = 0;
  std::uint64_t dij_digest = 0;
};

/// Run the batched query suite over one layout. `sources` are this layout's
/// ids; `to_this` maps a deploy id to this layout's id (empty = identity),
/// so the digests hash every row in deploy id order — bitwise identical
/// across layouts for the same underlying graph (distances are min-over-
/// identical-candidate-sets, independent of relaxation order; §2.8).
QueryRun run_queries(const GeoGraph& gg, std::span<const std::uint32_t> sources,
                     std::span<const std::uint32_t> to_this) {
  const ScopedSpan span("e18/queries");
  const std::size_t n = gg.size();
  QueryRun run;
  Timer timer;

  (void)knn_selections_flat(gg.points, 8);
  run.knn_s = timer.seconds();

  timer.reset();
  const std::vector<std::uint32_t> hops = bfs_many(gg.graph, sources);
  run.bfs_s = timer.seconds();

  const std::vector<double> w = gg.length_arc_weights();
  timer.reset();
  const std::vector<double> costs = dijkstra_many(gg.graph, sources, w);
  run.dij_s = timer.seconds();

  std::uint64_t hb = 0xE18, hd = 0xE18;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const std::uint32_t* hop_row = hops.data() + s * n;
    const double* cost_row = costs.data() + s * n;
    for (std::size_t old = 0; old < n; ++old) {
      const std::size_t v = to_this.empty() ? old : to_this[old];
      hb = mix64(hb, hop_row[v]);
      hd = mix64(hd, std::bit_cast<std::uint64_t>(cost_row[v]));
    }
  }
  run.bfs_digest = hb;
  run.dij_digest = hd;
  return run;
}

double mibs(std::uint64_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  const Cli cli(argc, argv);
  const auto nmax = static_cast<std::size_t>(cli.get("nmax", 1'000'000L));

  env.header("E18 / million-node scale tier",
             "the constructions stay practical at massive deployment sizes: streaming "
             "generation never materializes an unsorted store, and a Hilbert "
             "relabeling of the same graph lifts batched query throughput purely "
             "through memory locality (Section 1.1 regime at scale)");

  std::vector<std::size_t> sizes{10'000, 100'000, 1'000'000};
  if (env.scale >= 10) sizes.push_back(10'000'000);
  std::erase_if(sizes, [&](std::size_t n) { return n > nmax; });

  const double lambda = 4.0;
  const HngParams params{.promote_p = 0.25, .k = 3, .max_level = 48};

  Table counts({"n target", "structure", "layout", "n", "edges", "components", "mean degree",
                "bfs digest", "dijkstra digest", "matches deploy"});
  Table gen_clock({"n target", "n", "gen s (streaming)", "shuffle s", "hilbert perm s"});
  Table clock({"n target", "structure", "layout", "build s", "knn Mq/s", "bfs Mnode/s",
               "dijkstra Mnode/s", "peak rss MiB"});

  for (const std::size_t n_target : sizes) {
    const double side = std::sqrt(static_cast<double>(n_target) / lambda);
    const Box window{{0.0, 0.0}, {side, side}};

    Timer timer;
    PointSet ps = [&] {
      const ScopedSpan span("e18/generate");
      return poisson_point_set_ordered(window, lambda, env.seed);
    }();
    const double gen_s = timer.seconds();
    const std::size_t n = ps.size();

    // Deployment order: a seeded Fisher-Yates shuffle of the grid-major
    // store — ids in arrival order, the layout a real network hands us.
    timer.reset();
    Rng shuffle = Rng::stream(env.seed, 0xE18, n_target);
    for (std::size_t i = n; i > 1; --i) {
      std::swap(ps.points[i - 1], ps.points[shuffle.uniform_index(i)]);
    }
    const double shuffle_s = timer.seconds();
    const std::vector<Vec2>& deploy = ps.points;

    timer.reset();
    std::vector<std::uint32_t> perm;
    std::vector<std::uint32_t> inv;
    std::vector<Vec2> hilbert;
    {
      const ScopedSpan span("e18/reorder");
      perm = spatial_order_permutation(deploy, SpatialOrder::kHilbert);
      inv = invert_permutation(perm);
      hilbert = apply_permutation(std::span<const Vec2>(deploy), perm);
    }
    const double perm_s = timer.seconds();

    gen_clock.add_row({Table::fmt_int(static_cast<long long>(n_target)),
                       Table::fmt_int(static_cast<long long>(n)), Table::fmt(gen_s, 3),
                       Table::fmt(shuffle_s, 3), Table::fmt(perm_s, 3)});

    // Batched sources, drawn in deploy ids; the hilbert runs query the same
    // nodes under their new labels.
    Rng pick = Rng::stream(env.seed, 0xE18, 0x50BCE5);
    std::vector<std::uint32_t> src_deploy(source_count(n_target));
    for (auto& s : src_deploy) s = static_cast<std::uint32_t>(pick.uniform_index(n));
    std::vector<std::uint32_t> src_hilbert(src_deploy.size());
    for (std::size_t i = 0; i < src_deploy.size(); ++i) src_hilbert[i] = inv[src_deploy[i]];

    struct Config {
      const char* structure;
      const char* layout;
      GeoGraph geo;
      double build_s;
      bool is_deploy;
    };
    std::vector<Config> configs;
    configs.reserve(4);

    {
      const ScopedSpan span("e18/build");
      timer.reset();
      configs.push_back({"UDG", "deploy", build_udg(deploy, window, 1.0), timer.seconds(), true});
      timer.reset();
      configs.push_back(
          {"UDG", "hilbert", build_udg(hilbert, window, 1.0), timer.seconds(), false});
      timer.reset();
      HngResult hng = build_hng(deploy, params, env.seed);
      const double hng_build_s = timer.seconds();
      timer.reset();
      GeoGraph hng_relabeled = apply_permutation(hng.geo, perm);
      const double hng_relabel_s = timer.seconds();
      configs.push_back({"HNG", "deploy", std::move(hng.geo), hng_build_s, true});
      configs.push_back({"HNG", "hilbert (relabel)", std::move(hng_relabeled), hng_relabel_s,
                         false});
    }

    std::uint64_t deploy_bfs = 0, deploy_dij = 0;
    for (Config& cfg : configs) {
      const QueryRun run =
          run_queries(cfg.geo, cfg.is_deploy ? src_deploy : src_hilbert,
                      cfg.is_deploy ? std::span<const std::uint32_t>{}
                                    : std::span<const std::uint32_t>(inv));
      if (cfg.is_deploy) {
        deploy_bfs = run.bfs_digest;
        deploy_dij = run.dij_digest;
      }
      const bool matches = run.bfs_digest == deploy_bfs && run.dij_digest == deploy_dij;

      counts.add_row({Table::fmt_int(static_cast<long long>(n_target)), cfg.structure,
                      cfg.layout, Table::fmt_int(static_cast<long long>(cfg.geo.size())),
                      Table::fmt_int(static_cast<long long>(cfg.geo.graph.num_edges())),
                      Table::fmt_int(static_cast<long long>(
                          connected_components(cfg.geo.graph).count())),
                      Table::fmt(cfg.geo.graph.mean_degree(), 4), hex64(run.bfs_digest),
                      hex64(run.dij_digest), matches ? "yes" : "NO"});

      const double rows = static_cast<double>(src_deploy.size());
      const double nd = static_cast<double>(cfg.geo.size());
      clock.add_row(
          {Table::fmt_int(static_cast<long long>(n_target)), cfg.structure, cfg.layout,
           Table::fmt(cfg.build_s, 3), Table::fmt(nd / run.knn_s / 1e6, 3),
           Table::fmt(rows * nd / run.bfs_s / 1e6, 3),
           Table::fmt(rows * nd / run.dij_s / 1e6, 3), Table::fmt(mibs(peak_rss_bytes()), 5)});
      cfg.geo = GeoGraph{};  // release before the next size doubles the footprint
    }
  }

  env.emit("structure census and layout-invariance digests (BFS/Dijkstra rows mapped back to "
           "deploy ids hash identically for every layout of the same graph — and at every "
           "--threads value)",
           counts);

  // Wall clock, throughput and RSS are deliberately *not* emitted: the
  // --json document must be byte-identical across machines, runs and
  // --threads values. BENCH_scale.json records measured runs.
  std::cout << "**streaming generation and relabeling cost (excluded from --json)**\n\n";
  gen_clock.print(std::cout);
  std::cout << "\n**build time and batched query throughput (excluded from --json; "
               "peak rss is a process-lifetime high-water mark, monotone down the rows)**\n\n";
  clock.print(std::cout);
  std::cout << "\nnote: knn Mq/s is full-store k=8 self-queries; bfs/dijkstra Mnode/s are "
               "settled row-nodes per second over "
            << "batched sources; the hilbert/deploy ratio at n = 10^6 is the layout "
               "dividend recorded in BENCH_scale.json.\n\n";
  env.footer();
  return 0;
}
