// E19 — fault injection: degradation curves and epoch survival.
//
// The sparse constructions (SENS, HNG, the classical spanners) trade edges
// for power; this bench asks what that trade costs in survivability. A
// deterministic `FaultInjector` (fault/fault_plan.hpp, DESIGN.md §2.9)
// kills nodes, regions and links with per-entity rng streams, so every
// scenario — and with it the whole --json document — is a pure function of
// (seed, scale, --fmax) at any --threads. Three sections:
//
//   1. crash sweep: the same casualty draw applied to UDG / Gabriel / RNG /
//      Yao / HNG over the same Poisson points (plus UDG-SENS over its
//      elected overlay), audited for giant-component mass, coverage,
//      stretch inflation, oracle certification and disconnection rates;
//   2. a compound regime (blackout strip + independent link fade + crashes)
//      with the per-cause edge-loss accounting;
//   3. epoch survival: a DynamicHng absorbs a crash wave and a rejoin wave
//      while an `EpochQueryEngine` follows via journal replay — every
//      served batch is checked against exact Dijkstra on the epoch
//      snapshot, and the run *fails* (exit 1) on any uncertified wrong
//      answer or on an epoch snapshot that diverges from the maintainer.
//
// Flags: --fmax F caps the crash sweep's failure fraction (default 0.5).
// Wall-clock is printed as a table but kept out of --json; measured runs
// are recorded in bench/BENCH_faults.json.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sens/baselines/spanners.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/dynamic/dynamic_hng.hpp"
#include "sens/fault/degradation.hpp"
#include "sens/fault/fault_plan.hpp"
#include "sens/geograph/udg.hpp"
#include "sens/graph/dijkstra.hpp"
#include "sens/hng/hng.hpp"
#include "sens/rng/rng.hpp"
#include "sens/serve/epoch_engine.hpp"
#include "sens/support/cli.hpp"

using namespace sens;
using namespace sens::bench;

namespace {

struct Construction {
  std::string name;
  const GeoGraph* geo;
};

/// Recheck a served batch against exact Dijkstra on the engine's own epoch
/// snapshot: kExact must match (modulo summation order), kCertified must
/// land in [d, max_stretch * d], kDisconnected must really have no path,
/// and kStale must name a slot outside this epoch. Returns the number of
/// violations — the zero-uncertified-wrong contract says zero.
std::size_t soundness_violations(const EpochQueryEngine& engine, std::span<const Query> queries,
                                 std::span<const double> out, std::span<const Verdict> verdicts) {
  const CsrGraph& g = engine.graph();
  const std::span<const double> w = engine.arc_weights();
  const std::size_t n = g.num_vertices();
  DijkstraScratch scratch;
  std::size_t bad = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (verdicts[i] == Verdict::kStale) {
      if (queries[i].src < n && queries[i].dst < n) ++bad;
      continue;
    }
    const double exact = dijkstra_cost(g, queries[i].src, queries[i].dst, w, scratch);
    switch (verdicts[i]) {
      case Verdict::kExact:
        if (exact >= kInfCost || std::abs(out[i] - exact) > 1e-9 * (1.0 + exact)) ++bad;
        break;
      case Verdict::kCertified:
        if (exact >= kInfCost || out[i] < exact - 1e-9 ||
            out[i] > engine.max_stretch() * exact + 1e-9) {
          ++bad;
        }
        break;
      case Verdict::kDisconnected:
        if (exact < kInfCost) ++bad;
        break;
      default:
        break;
    }
  }
  return bad;
}

void verdict_row(Table& t, const std::string& phase, std::size_t nodes,
                 const EpochServeStats& s, std::size_t violations) {
  t.add_row({phase, Table::fmt_int(static_cast<long long>(s.generation)),
             Table::fmt_int(static_cast<long long>(nodes)),
             Table::fmt_int(static_cast<long long>(s.queries)),
             Table::fmt_int(static_cast<long long>(s.exact)),
             Table::fmt_int(static_cast<long long>(s.certified)),
             Table::fmt_int(static_cast<long long>(s.disconnected)),
             Table::fmt_int(static_cast<long long>(s.stale)),
             Table::fmt_int(static_cast<long long>(violations))});
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  const Cli cli(argc, argv);
  const double fmax = cli.get("fmax", 0.5);
  env.header("E19 / fault injection: degradation and epoch survival",
             "sparse power-efficient topologies degrade gracefully under node, region and "
             "link failures, and a journal-following serving epoch survives churn with zero "
             "uncertified wrong answers (DESIGN.md 2.9)");

  const int tiles = env.scale > 1 ? 24 : 14;
  const double lambda = 25.0;
  const HngParams hng_params{.promote_p = 0.25, .k = 3, .max_level = 48};

  Table clock({"step", "ms"});
  Timer step_timer;
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), lambda, tiles, tiles, env.seed);
  const Box window = r.points.window;
  const GeoGraph udg = build_udg(r.points.points, window, 1.0);
  const GeoGraph gg = gabriel_graph(udg);
  const GeoGraph rng_g = relative_neighborhood_graph(udg);
  const GeoGraph yao = yao_graph(udg, 7);
  const HngResult hng = build_hng(r.points.points, hng_params, env.seed);
  clock.add_row({"build all constructions", Table::fmt(step_timer.millis(), 2)});

  const std::vector<Construction> graphs{
      {"UDG(2,25)", &udg},         {"Gabriel", &gg},
      {"RNG", &rng_g},             {"Yao(7)", &yao},
      {"UDG-SENS", &r.overlay.geo}, {"HNG(p=0.25, k=3)", &hng.geo},
  };

  DegradationParams audit;
  audit.sample_pairs = 192 * env.scale;
  audit.min_separation = 4.0;
  audit.num_landmarks = 16;
  audit.max_stretch = 1.5;
  audit.seed = env.seed;

  // --- 1. crash sweep -------------------------------------------------------
  // One casualty draw per failure fraction, shared across the base-point
  // constructions (fault draws key on node ids, so UDG/Gabriel/RNG/Yao/HNG
  // lose the *identical* node set; UDG-SENS draws over its elected overlay
  // ids — same marginal rate, different individuals).
  const std::vector<double> fractions{0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5};
  Table sweep({"graph", "crash f", "survivors", "edges", "giant frac", "coverage",
               "mean stretch", "stretch inflation", "certified rate", "disconnected rate"});
  step_timer.reset();
  double swept_max = 0.0;
  for (const Construction& c : graphs) {
    const ScopedSpan span("e19/crash-sweep");
    double base_stretch = 0.0;
    for (const double f : fractions) {
      if (f > fmax + 1e-12) continue;
      DegradationReport rep;
      std::size_t survivors = c.geo->size();
      std::size_t edges = c.geo->graph.num_edges();
      if (f == 0.0) {
        rep = audit_degradation(*c.geo, window, audit);
        base_stretch = rep.mean_stretch;
      } else {
        FaultPlan plan;
        plan.node_crash = f;
        plan.seed = env.seed;
        const FaultedGraph faulted = apply_faults(*c.geo, FaultInjector{plan});
        rep = audit_degradation(faulted.geo, window, audit);
        survivors = faulted.geo.size();
        edges = faulted.geo.graph.num_edges();
        swept_max = std::max(swept_max, f);
      }
      const double inflation =
          base_stretch > 0.0 && rep.mean_stretch > 0.0 ? rep.mean_stretch / base_stretch : 0.0;
      sweep.add_row({c.name, Table::fmt(f, 2), Table::fmt_int(static_cast<long long>(survivors)),
                     Table::fmt_int(static_cast<long long>(edges)),
                     Table::fmt(rep.giant_fraction, 4), Table::fmt(rep.coverage_fraction, 4),
                     Table::fmt(rep.mean_stretch, 4), Table::fmt(inflation, 4),
                     Table::fmt(rep.certified_rate, 4), Table::fmt(rep.disconnected_rate, 4)});
    }
  }
  clock.add_row({"crash sweep + audits", Table::fmt(step_timer.millis(), 2)});
  env.emit("degradation vs crash fraction (same Poisson points; denser graphs buy giant-"
           "component mass and certification rate with edges the sparse ones saved)",
           sweep);

  // --- 2. compound regime: blackout strip + link fade + crashes -------------
  const Vec2 center{(window.lo.x + window.hi.x) / 2.0, (window.lo.y + window.hi.y) / 2.0};
  const double half = (window.hi.x - window.lo.x) * 0.09;
  FaultPlan compound;
  compound.node_crash = 0.05;
  compound.link_failure = 0.15;
  compound.blackouts = {{{center.x - half, window.lo.y - 1.0}, {center.x + half, window.hi.y + 1.0}}};
  compound.seed = env.seed;
  const FaultInjector compound_inj{compound};

  Table comp({"graph", "survivors", "edges", "lost: dead endpoint", "lost: link fade",
              "giant frac", "coverage", "certified rate", "disconnected rate"});
  step_timer.reset();
  for (const Construction& c : graphs) {
    const ScopedSpan span("e19/compound");
    const FaultedGraph faulted = apply_faults(*c.geo, compound_inj);
    const DegradationReport rep = audit_degradation(faulted.geo, window, audit);
    comp.add_row({c.name, Table::fmt_int(static_cast<long long>(faulted.geo.size())),
                  Table::fmt_int(static_cast<long long>(faulted.geo.graph.num_edges())),
                  Table::fmt_int(static_cast<long long>(faulted.edges_lost_endpoint)),
                  Table::fmt_int(static_cast<long long>(faulted.edges_lost_link)),
                  Table::fmt(rep.giant_fraction, 4), Table::fmt(rep.coverage_fraction, 4),
                  Table::fmt(rep.certified_rate, 4), Table::fmt(rep.disconnected_rate, 4)});
  }
  clock.add_row({"compound regime + audits", Table::fmt(step_timer.millis(), 2)});
  env.emit("compound failure (vertical blackout strip through the deployment + 15% link fade "
           "+ 5% crashes): the strip severs anything without long chords across it",
           comp);

  // --- 3. epoch survival under churn ----------------------------------------
  // The maintainer churns; the engine follows by journal replay and must
  // never serve an uncertified wrong answer (contract asserted per batch).
  DynamicHng dyn(r.points.points, hng_params, env.seed);
  const std::size_t n_pre = dyn.size();
  const EpochEngineParams eparams{.num_landmarks = 16,
                                  .max_stretch = 1.25,
                                  .seed = env.seed,
                                  .selection = LandmarkSelection::kFarthestPoint};
  step_timer.reset();
  EpochQueryEngine engine(dyn, eparams);
  clock.add_row({"epoch engine first build", Table::fmt(step_timer.millis(), 2)});

  const std::size_t num_queries = 256 * env.scale;
  std::vector<Query> queries(num_queries);
  Rng qdraw = Rng::stream(env.seed, 0xE19, 7);
  for (Query& q : queries) {
    q.src = static_cast<std::uint32_t>(qdraw.uniform_index(n_pre));
    q.dst = static_cast<std::uint32_t>(qdraw.uniform_index(n_pre));
  }
  std::vector<double> out(queries.size());
  std::vector<Verdict> verdicts(queries.size());

  Table refresh_t({"wave", "generation", "deltas applied", "landmarks demoted",
                   "landmarks recruited", "resynced", "snapshot == maintainer"});
  Table serve_t({"phase", "generation", "nodes", "queries", "exact", "certified",
                 "disconnected", "stale", "uncertified wrong"});
  std::size_t total_violations = 0;

  auto serve_span = [&] {
    const ScopedSpan span("e19/epoch-serve");
    return engine.serve(queries, out, verdicts);
  };
  auto refresh_span = [&] {
    const ScopedSpan span("e19/epoch-refresh");
    return engine.refresh();
  };

  const EpochServeStats pre = serve_span();
  std::size_t bad = soundness_violations(engine, queries, out, verdicts);
  total_violations += bad;
  verdict_row(serve_t, "pre-churn", dyn.size(), pre, bad);

  // Wave 1: a 30% crash wave, planned by the injector over the *slots* of
  // the dynamic structure and applied in descending slot order so every
  // planned slot is still valid when its turn comes (swap-remove moves only
  // higher slots down).
  FaultPlan churn_plan;
  churn_plan.node_crash = 0.3;
  churn_plan.seed = env.seed ^ 0xE19;
  const FaultInjector churn_inj{churn_plan};
  std::size_t crashed = 0;
  for (std::uint32_t slot = static_cast<std::uint32_t>(dyn.size()); slot-- > 0;) {
    if (churn_inj.node_crashes(slot)) {
      dyn.remove(slot);
      ++crashed;
    }
  }
  step_timer.reset();
  const EpochRefreshStats r1 = refresh_span();
  const double refresh1_ms = step_timer.millis();
  bool snap_ok = engine.graph().edge_list() == dyn.overlay().edge_list();
  refresh_t.add_row({"crash wave (30%)", Table::fmt_int(static_cast<long long>(r1.generation)),
                     Table::fmt_int(static_cast<long long>(r1.deltas_applied)),
                     Table::fmt_int(static_cast<long long>(r1.landmarks_demoted)),
                     Table::fmt_int(static_cast<long long>(r1.landmarks_recruited)),
                     r1.resynced ? "yes" : "no", snap_ok ? "yes" : "NO"});
  if (!snap_ok) {
    std::cerr << "error: epoch snapshot diverged from the maintainer after the crash wave\n";
    return 1;
  }
  const EpochServeStats post = serve_span();
  bad = soundness_violations(engine, queries, out, verdicts);
  total_violations += bad;
  verdict_row(serve_t, "post-crash (same pre-churn queries)", dyn.size(), post, bad);

  // Wave 2: a rejoin wave — 15% of the original population comes back as
  // fresh uniform nodes; re-query over the *current* id space.
  Rng join = Rng::stream(env.seed, 0xE19, 8);
  const std::size_t joins = n_pre * 3 / 20;
  for (std::size_t j = 0; j < joins; ++j) {
    dyn.insert({join.uniform(window.lo.x, window.hi.x), join.uniform(window.lo.y, window.hi.y)});
  }
  step_timer.reset();
  const EpochRefreshStats r2 = refresh_span();
  const double refresh2_ms = step_timer.millis();
  snap_ok = engine.graph().edge_list() == dyn.overlay().edge_list();
  refresh_t.add_row({"rejoin wave (15%)", Table::fmt_int(static_cast<long long>(r2.generation)),
                     Table::fmt_int(static_cast<long long>(r2.deltas_applied)),
                     Table::fmt_int(static_cast<long long>(r2.landmarks_demoted)),
                     Table::fmt_int(static_cast<long long>(r2.landmarks_recruited)),
                     r2.resynced ? "yes" : "no", snap_ok ? "yes" : "NO"});
  if (!snap_ok) {
    std::cerr << "error: epoch snapshot diverged from the maintainer after the rejoin wave\n";
    return 1;
  }
  Rng qdraw2 = Rng::stream(env.seed, 0xE19, 9);
  for (Query& q : queries) {
    q.src = static_cast<std::uint32_t>(qdraw2.uniform_index(dyn.size()));
    q.dst = static_cast<std::uint32_t>(qdraw2.uniform_index(dyn.size()));
  }
  const EpochServeStats rejoin = serve_span();
  bad = soundness_violations(engine, queries, out, verdicts);
  total_violations += bad;
  verdict_row(serve_t, "post-rejoin (fresh queries)", dyn.size(), rejoin, bad);

  step_timer.reset();
  const EpochQueryEngine rebuilt(dyn, eparams);
  const double rebuild_ms = step_timer.millis();
  (void)rebuilt;

  env.emit("epoch refresh work (journal replay, never a wholesale rebuild; pivots demoted "
           "only when their slot vanished)",
           refresh_t);
  env.emit("served batches with verdicts (every answer exact, certified within stretch "
           "1.25, or explicitly disconnected/stale — the zero-uncertified-wrong contract)",
           serve_t);

  clock.add_row({"refresh after crash wave", Table::fmt(refresh1_ms, 2)});
  clock.add_row({"refresh after rejoin wave", Table::fmt(refresh2_ms, 2)});
  clock.add_row({"fresh engine build (comparison)", Table::fmt(rebuild_ms, 2)});

  // Wall-clock is deliberately *not* emitted: the --json document must be
  // byte-identical across runs and --threads values.
  std::cout << "**wall-clock (excluded from --json)**\n\n";
  clock.print(std::cout);
  std::cout << "\n";

  env.footnote("crash sweep capped at --fmax=" + Table::fmt(fmax, 2) + " (max swept " +
               Table::fmt(swept_max, 2) + ")");
  env.footnote("epoch churn: " + Table::fmt_int(static_cast<long long>(n_pre)) + " nodes, " +
               Table::fmt_int(static_cast<long long>(crashed)) + " crashed, " +
               Table::fmt_int(static_cast<long long>(joins)) + " rejoined, " +
               Table::fmt_int(static_cast<long long>(dyn.size())) + " serving");
  env.footer();

  if (total_violations > 0) {
    std::cerr << "error: " << total_violations << " uncertified wrong answer(s) served\n";
    return 1;
  }
  return 0;
}
