// E4 — Claim 2.1: adjacent good UDG tiles are joined by a 3-hop relay path
// with every edge <= 1 and stretch constant c_u <= 3.
//
// For the strict preset this is a theorem (100% realization, worst edge
// <= 1); for the paper-literal preset the bench *measures* the violation
// rate — the quantitative gap DESIGN.md §1.1 predicts.
#include "bench_common.hpp"
#include "sens/core/metrics.hpp"
#include "sens/core/udg_sens.hpp"

using namespace sens;
using namespace sens::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::parse(argc, argv);
  env.header("E4 / Claim 2.1 (UDG inter-tile relay paths)",
             "3-hop rep-to-rep path exists, each edge <= 1, c_u <= 3");

  const int tiles = static_cast<int>(24 * (env.scale > 1 ? 2 : 1));

  Table t({"spec", "lambda", "adj good pairs", "realized", "worst edge", "mean stretch",
           "worst stretch", "missing edges"});
  struct Cfg {
    UdgTileSpec spec;
    double lambda;
  };
  for (const Cfg& cfg : {Cfg{UdgTileSpec::strict(), 25.0}, Cfg{UdgTileSpec::paper(), 10.0},
                         Cfg{UdgTileSpec::paper(), 20.0}}) {
    const UdgSensResult r = build_udg_sens(cfg.spec, cfg.lambda, tiles, tiles, env.seed);
    const ClaimCheck check = check_adjacent_tile_paths(r.overlay);
    t.add_row({cfg.spec.name, Table::fmt(cfg.lambda, 3),
               Table::fmt_int(static_cast<long long>(check.adjacent_good_pairs)),
               Table::fmt(check.realized_fraction(), 4), Table::fmt(check.worst_edge_length, 4),
               Table::fmt(check.mean_stretch, 4), Table::fmt(check.worst_stretch, 4),
               Table::fmt_int(static_cast<long long>(r.overlay.edges_missing))});
  }
  env.emit("relay-path realization over adjacent good tile pairs", t);

  Table s({"quantity", "paper", "measured (strict spec)"});
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), 25.0, tiles, tiles, env.seed + 1);
  const ClaimCheck check = check_adjacent_tile_paths(r.overlay);
  s.add_row({"path realization", "always (Claim 2.1)", Table::fmt(check.realized_fraction(), 4)});
  s.add_row({"max edge length", "<= 1", Table::fmt(check.worst_edge_length, 4)});
  s.add_row({"c_u (path len / rep distance)", "<= 3", Table::fmt(check.worst_stretch, 4)});
  env.emit("claim vs measurement", s);

  env.footer();
  return 0;
}
