#!/usr/bin/env bash
# Docs check: every DESIGN.md section cited from the tree must exist.
#
# Sources cite sections as "DESIGN.md §1.1", "DESIGN.md 1.1" or
# "DESIGN.md §2"; this script extracts the cited numbers and requires a
# matching markdown heading ("## 2. ..." / "### 1.1 ...") in DESIGN.md.
# Run from anywhere; CI runs it in the docs-check job and ctest as
# `docs.design_refs`.
set -u
cd "$(dirname "$0")/.."

if [ ! -f DESIGN.md ]; then
  echo "::error::DESIGN.md does not exist but the tree cites it"
  exit 1
fi

refs=$(grep -rhoE "DESIGN\.md[^0-9]{0,3}§?[0-9]+(\.[0-9]+)*" \
         src tests bench examples tools 2>/dev/null |
       grep -oE "[0-9]+(\.[0-9]+)*" | sort -u)

fail=0
for sec in $refs; do
  esc=$(printf '%s' "$sec" | sed 's/\./\\./g')
  if ! grep -qE "^#+ +(§)?${esc}([^0-9.]|\.[^0-9]|\.?$)" DESIGN.md; then
    echo "::error file=DESIGN.md::cited section ${sec} has no heading in DESIGN.md"
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "check_design_refs: all cited DESIGN.md sections resolve ($(echo "$refs" | wc -w | tr -d ' ') sections)"
fi
exit $fail
