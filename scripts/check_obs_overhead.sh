#!/usr/bin/env bash
# Assert that the compiled-in obs instrumentation (DESIGN.md §2.10) costs
# less than 2% of hot-path wall clock versus a SENS_OBS=OFF build.
#
# Usage: check_obs_overhead.sh <bench_instrumented> <bench_compiled_out> [reps]
#
# Both binaries are run `reps` times, interleaved so drift (thermal, cache,
# noisy neighbors) hits both arms alike, at --threads 1 so the measurement is
# the kernel loops and not the pool scheduler. The minimum elapsed per arm is
# the estimate — min-of-N is the standard noise floor for wall-clock gates.
# A small absolute grace (50 ms) keeps sub-second jitter from failing runs
# where the relative bound is far below the timer noise.
set -euo pipefail

if [ "$#" -lt 2 ]; then
  echo "usage: $0 <bench_instrumented> <bench_compiled_out> [reps]" >&2
  exit 2
fi
on=$1
off=$2
reps=${3:-5}

elapsed() {
  # The uniform [obs] footer line: "[obs] elapsed: 2.06 s"
  "$1" --threads 1 | sed -n 's/^\[obs\] elapsed: \([0-9.]*\) s$/\1/p'
}

min_on=""
min_off=""
for _ in $(seq "$reps"); do
  t_on=$(elapsed "$on")
  t_off=$(elapsed "$off")
  if [ -z "$t_on" ] || [ -z "$t_off" ]; then
    echo "error: no '[obs] elapsed:' line in bench output" >&2
    exit 2
  fi
  min_on=$(awk -v a="${min_on:-$t_on}" -v b="$t_on" 'BEGIN { print (a < b) ? a : b }')
  min_off=$(awk -v a="${min_off:-$t_off}" -v b="$t_off" 'BEGIN { print (a < b) ? a : b }')
done

echo "instrumented (SENS_OBS=ON):  min ${min_on} s over ${reps} runs"
echo "compiled out (SENS_OBS=OFF): min ${min_off} s over ${reps} runs"
awk -v on="$min_on" -v off="$min_off" 'BEGIN {
  ratio = off > 0 ? on / off : 1
  printf "ratio: %.4f (bound 1.02)\n", ratio
  exit (on <= off * 1.02 + 0.05) ? 0 : 1
}' || {
  echo "error: instrumentation overhead exceeds 2% (DESIGN.md §2.10 bound)" >&2
  exit 1
}
