#!/usr/bin/env bash
# Docs check: every bench_* source must be named in EXPERIMENTS.md.
# Run from anywhere; CI runs it in the docs-check job and ctest as
# `docs.experiments_coverage`.
set -u
cd "$(dirname "$0")/.."

missing=0
for f in bench/bench_*.cpp; do
  name="$(basename "$f" .cpp)"
  [ "$name" = "bench_common" ] && continue
  if ! grep -q "\`$name\`" EXPERIMENTS.md; then
    echo "::error file=EXPERIMENTS.md::missing entry for $name"
    missing=1
  fi
done

if [ "$missing" -eq 0 ]; then
  echo "check_experiments_coverage: every bench binary is documented"
fi
exit $missing
