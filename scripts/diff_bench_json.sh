#!/usr/bin/env bash
# Diff two directories of bench --json artifacts (previous run vs current).
#
#   scripts/diff_bench_json.sh PREV_DIR CURR_DIR
#
# Prints a per-file report: files only in one directory are noted, common
# files are byte-compared (the JSON documents are deliberately
# timing-free, see bench/bench_common.hpp, so any diff is a result
# change). Exits 0 always — CI runs this as a non-blocking report step;
# the point is to make result drift visible, not to gate on it.
set -u

prev="${1:?usage: diff_bench_json.sh PREV_DIR CURR_DIR}"
curr="${2:?usage: diff_bench_json.sh PREV_DIR CURR_DIR}"

if [ ! -d "$prev" ] || [ -z "$(ls -A "$prev" 2>/dev/null)" ]; then
  echo "diff_bench_json: no previous artifacts ($prev empty or missing) — baseline run"
  exit 0
fi

changed=0
for f in "$curr"/*.json; do
  name="$(basename "$f")"
  if [ ! -f "$prev/$name" ]; then
    echo "NEW       $name (no previous artifact)"
    continue
  fi
  if cmp -s "$prev/$name" "$f"; then
    echo "identical $name"
  else
    echo "CHANGED   $name"
    diff -u "$prev/$name" "$f" | head -40
    changed=1
  fi
done
for f in "$prev"/*.json; do
  name="$(basename "$f")"
  [ -f "$curr/$name" ] || echo "REMOVED   $name (present in previous run only)"
done

if [ "$changed" -eq 1 ]; then
  echo
  echo "diff_bench_json: results changed vs the previous run. Expected for"
  echo "PRs that alter experiment math or seeds; NOT expected for pure"
  echo "refactors (the builders' contract is bit-identical results at any"
  echo "thread count, DESIGN.md §2.3)."
fi
exit 0
