// Wider property sweeps across parameter grids: overlay invariants as the
// density varies, adversarial mesh-router mazes, coupling monotonicity and
// metric consistency checks that complement the per-module suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sens/core/coverage.hpp"
#include "sens/core/metrics.hpp"
#include "sens/core/sens_router.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/perc/mesh_router.hpp"
#include "sens/tiles/good_prob.hpp"

namespace sens {
namespace {

// --- overlay invariants across the density grid (not just one lambda) ---

class UdgLambdaGridTest : public ::testing::TestWithParam<double> {};

TEST_P(UdgLambdaGridTest, InvariantsHoldAtEveryDensity) {
  const double lambda = GetParam();
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), lambda, 20, 20, 4242);
  // P1 regardless of sub/supercritical density.
  EXPECT_LE(overlay_degree_report(r.overlay).max_degree, 4u);
  // Strict geometry never produces unrealizable edges.
  EXPECT_EQ(r.overlay.edges_missing, 0u);
  // Every overlay node maps to a distinct base point.
  auto idx = r.overlay.base_index;
  std::sort(idx.begin(), idx.end());
  EXPECT_TRUE(std::adjacent_find(idx.begin(), idx.end()) == idx.end());
  // Rep nodes exist iff tiles are good.
  for (std::size_t i = 0; i < r.classification.good.size(); ++i)
    EXPECT_EQ(r.overlay.rep_node[i] != Overlay::no_node(), r.classification.good[i] == 1);
  // Exit chains of good tiles are populated with valid overlay nodes.
  for (std::size_t i = 0; i < r.classification.good.size(); ++i) {
    if (!r.classification.good[i]) continue;
    for (int d = 0; d < 4; ++d) {
      const auto& chain = r.overlay.exit_chain[i][static_cast<std::size_t>(d)];
      ASSERT_EQ(chain.size(), 1u);
      EXPECT_LT(chain[0], r.overlay.geo.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, UdgLambdaGridTest,
                         ::testing::Values(5.0, 12.0, 18.0, 22.0, 25.0, 32.0, 45.0));

// --- goodness probability: coupling monotonicity on a fine grid ---

TEST(GoodProbProperty, StrictCurveIsMonotoneAcrossGrid) {
  const UdgTileSpec spec = UdgTileSpec::strict();
  double prev = -1.0;
  for (const double lambda : {8.0, 12.0, 16.0, 20.0, 24.0, 28.0, 32.0}) {
    const double p = udg_good_probability(spec, lambda, 4000, 17).estimate();
    EXPECT_GE(p, prev - 0.02) << "at lambda " << lambda;  // MC slack
    prev = p;
  }
}

TEST(GoodProbProperty, NnCurveIndependentTrialsAgree) {
  // Two independent trial batches agree within combined Wilson intervals.
  const NnGoodCurve a(0.893, 3000, 1);
  const NnGoodCurve b(0.893, 3000, 2);
  const Proportion pa = a.probability_at(188);
  const Proportion pb = b.probability_at(188);
  EXPECT_LT(pa.wilson_low(), pb.wilson_high());
  EXPECT_LT(pb.wilson_low(), pa.wilson_high());
}

// --- mesh router on adversarial mazes ---

TEST(MeshRouterMaze, SerpentineCorridor) {
  // A serpentine with alternating walls forces maximal detours; the route
  // must still succeed and stay inside open sites.
  const std::int32_t n = 21;
  SiteGrid g(n, n, true);
  for (std::int32_t x = 2; x < n; x += 4) {
    for (std::int32_t y = 0; y < n - 2; ++y) g.set_open({x, y}, false);        // wall from bottom
    for (std::int32_t y = 2; y < n; ++y) g.set_open({x + 2 < n ? x + 2 : x, y}, false);
  }
  const MeshRouter router(g);
  ASSERT_TRUE(g.open({0, 0}));
  const Site dst{n - 1, 0};
  if (!g.open(dst)) GTEST_SKIP();
  const MeshRoute r = router.route({0, 0}, dst);
  if (!r.success) GTEST_SKIP() << "maze disconnected this pattern";
  for (const Site s : r.path) EXPECT_TRUE(g.open(s));
  EXPECT_GT(r.hops(), static_cast<std::size_t>(lattice_distance({0, 0}, dst)));
  EXPECT_GE(r.probes, r.hops());
}

TEST(MeshRouterMaze, SingleCellTargetBehindUTrap) {
  // U-shaped trap around the x-y path: the BFS must route around it.
  SiteGrid g(15, 15, true);
  for (std::int32_t y = 3; y <= 11; ++y) g.set_open({7, y}, false);
  for (std::int32_t x = 7; x <= 11; ++x) {
    g.set_open({x, 3}, false);
    g.set_open({x, 11}, false);
  }
  const MeshRouter router(g);
  const MeshRoute r = router.route({0, 7}, {14, 7});
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.bfs_invocations, 1u);
  for (std::size_t i = 1; i < r.path.size(); ++i)
    EXPECT_EQ(lattice_distance(r.path[i - 1], r.path[i]), 1);
}

TEST(MeshRouterMaze, RouteToSelfIsEmpty) {
  SiteGrid g(5, 5, true);
  const MeshRouter router(g);
  const MeshRoute r = router.route({2, 2}, {2, 2});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.hops(), 0u);
}

// --- metric consistency ---

TEST(MetricConsistency, RoutePowerMatchesPathPower) {
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), 25.0, 24, 24, 77);
  const auto reps = r.overlay.giant_rep_sites();
  ASSERT_GE(reps.size(), 2u);
  const SensRouter router(r.overlay);
  const SensRoute route = router.route(reps.front(), reps.back());
  ASSERT_TRUE(route.success);
  EXPECT_NEAR(route.power2, r.overlay.geo.path_power(route.node_path, 2.0), 1e-9);
  EXPECT_NEAR(route.euclid_length, r.overlay.geo.path_length(route.node_path), 1e-9);
}

TEST(MetricConsistency, PowerMonotoneInBetaForLongEdges) {
  GeoGraph g;
  g.points = {{0.0, 0.0}, {1.5, 0.0}, {3.0, 0.0}};
  g.graph = CsrGraph::from_edges(3, {{0, 1}, {1, 2}});
  const std::vector<std::uint32_t> path{0, 1, 2};
  // All edges longer than 1 => power grows with beta.
  double prev = g.path_power(path, 2.0);
  for (const double beta : {2.5, 3.0, 4.0, 5.0}) {
    const double p = g.path_power(path, beta);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(MetricConsistency, StretchSamplesAreWithinWindow) {
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), 25.0, 20, 20, 5);
  for (const auto& s : sample_overlay_stretch(r.overlay, 40, 6)) {
    EXPECT_GT(s.euclid, 0.0);
    EXPECT_LE(s.euclid, r.points.window.width() * std::sqrt(2.0));
    EXPECT_GE(s.lattice, 0);
    EXPECT_GE(s.path_length, s.euclid - 1e-9);
  }
}

// --- coverage estimators agree with each other ---

TEST(CoverageConsistency, BlockAndBoxEstimatorsOrdered) {
  // An empty m-tile block implies an empty box of side <= m*a placed on it;
  // statistically the box estimator at l = a must not exceed block m=1 by
  // much (boxes can straddle tiles, so exact equality is not expected).
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), 25.0, 40, 40, 8);
  const int one[] = {1};
  const double block1 = empty_block_probability(r.overlay, one)[0];
  const double box_small = empty_box_probability(r.overlay, 0.42, 4000, 9).estimate();
  // A half-tile box is easier to keep empty than a full tile block.
  EXPECT_GT(box_small, block1 * 0.5);
}

TEST(CoverageConsistency, SubcriticalWindowIsMostlyUncovered) {
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), 8.0, 24, 24, 3);
  const int sizes[] = {1};
  EXPECT_GT(empty_block_probability(r.overlay, sizes)[0], 0.85);
}

}  // namespace
}  // namespace sens
