// Tests for sens/geometry: vectors, boxes, circles, polygons, the exact
// circle-polygon clip and the disk-family regions that define the paper's
// relay geometry.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sens/geometry/box.hpp"
#include "sens/geometry/circle.hpp"
#include "sens/geometry/circle_clip.hpp"
#include "sens/geometry/disk_family.hpp"
#include "sens/geometry/polygon.hpp"
#include "sens/geometry/vec2.hpp"
#include "sens/rng/rng.hpp"

namespace sens {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
  EXPECT_DOUBLE_EQ(dist2(a, b), 13.0);
  EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).norm(), 5.0);
  EXPECT_EQ(a.perp(), Vec2(-2.0, 1.0));
  EXPECT_NEAR(unit_vec(kPi / 2).y, 1.0, 1e-15);
}

TEST(Vec2Test, Normalized) {
  EXPECT_NEAR(Vec2(3.0, 4.0).normalized().norm(), 1.0, 1e-15);
  EXPECT_EQ(Vec2(0.0, 0.0).normalized(), Vec2(0.0, 0.0));
}

TEST(BoxTest, ContainmentConventions) {
  const Box b = Box::square({0.0, 0.0}, 2.0);
  EXPECT_TRUE(b.contains({0.0, 0.0}));
  EXPECT_TRUE(b.contains({-1.0, -1.0}));   // low edge closed
  EXPECT_FALSE(b.contains({1.0, 0.0}));    // high edge open
  EXPECT_TRUE(b.contains_closed({1.0, 1.0}));
  EXPECT_DOUBLE_EQ(b.area(), 4.0);
  EXPECT_EQ(b.center(), Vec2(0.0, 0.0));
}

TEST(BoxTest, InscribedRadiusAndOps) {
  const Box b{{0.0, 0.0}, {4.0, 2.0}};
  EXPECT_DOUBLE_EQ(b.inscribed_radius({1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(b.inscribed_radius({2.0, 1.0}), 1.0);
  EXPECT_LT(b.inscribed_radius({-1.0, 1.0}), 0.0);
  const Box u = b.united({{3.0, 0.0}, {6.0, 2.0}});
  EXPECT_DOUBLE_EQ(u.width(), 6.0);
  EXPECT_TRUE(b.intersects({{3.9, 1.9}, {5.0, 5.0}}));
  EXPECT_FALSE(b.intersects({{4.0, 0.0}, {5.0, 1.0}}));
  EXPECT_DOUBLE_EQ(b.expanded(1.0).area(), 6.0 * 4.0);
}

TEST(CircleTest, ContainsAndArea) {
  const Circle c{{1.0, 1.0}, 2.0};
  EXPECT_TRUE(c.contains({2.0, 2.0}));
  EXPECT_FALSE(c.contains({4.0, 1.0}));
  EXPECT_TRUE(c.contains({3.0, 1.0}));  // boundary closed
  EXPECT_NEAR(c.area(), 4.0 * kPi, 1e-12);
}

TEST(LensArea, ClosedFormCases) {
  const Circle a{{0.0, 0.0}, 1.0};
  EXPECT_DOUBLE_EQ(lens_area(a, Circle{{3.0, 0.0}, 1.0}), 0.0);  // disjoint
  EXPECT_NEAR(lens_area(a, Circle{{0.0, 0.0}, 0.5}), kPi * 0.25, 1e-12);  // nested
  // Equal circles at distance d: 2 r^2 acos(d/2r) - (d/2) sqrt(4r^2 - d^2).
  const double d = 1.0;
  const double expect = 2.0 * std::acos(d / 2.0) - (d / 2.0) * std::sqrt(4.0 - d * d);
  EXPECT_NEAR(lens_area(a, Circle{{d, 0.0}, 1.0}), expect, 1e-12);
  // Symmetry.
  EXPECT_NEAR(lens_area(a, Circle{{d, 0.0}, 0.7}), lens_area(Circle{{d, 0.0}, 0.7}, a), 1e-12);
}

TEST(PolygonTest, AreaCentroidConvexity) {
  const ConvexPolygon square = box_polygon(Box{{0.0, 0.0}, {2.0, 2.0}});
  EXPECT_DOUBLE_EQ(square.area(), 4.0);
  EXPECT_EQ(square.centroid(), Vec2(1.0, 1.0));
  EXPECT_TRUE(square.is_convex());
  EXPECT_TRUE(square.contains({1.0, 1.0}));
  EXPECT_TRUE(square.contains({0.0, 0.0}));
  EXPECT_FALSE(square.contains({2.5, 1.0}));
  EXPECT_FALSE(square.contains({-0.1, 1.0}));
}

TEST(PolygonTest, CirclePolygonApproximatesDisk) {
  const ConvexPolygon poly = circle_polygon({1.0, -2.0}, 3.0, 512);
  EXPECT_TRUE(poly.is_convex());
  EXPECT_NEAR(poly.area(), kPi * 9.0, kPi * 9.0 * 1e-3);
  EXPECT_TRUE(poly.contains({1.0, -2.0}));
  EXPECT_FALSE(poly.contains({4.5, -2.0}));
}

TEST(PolygonTest, ContainsMatchesBruteForce) {
  const ConvexPolygon poly = circle_polygon({0.0, 0.0}, 1.0, 64);
  Rng rng(21);
  for (int i = 0; i < 2000; ++i) {
    const Vec2 p{rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5)};
    // Brute force: inside all edge half-planes.
    bool inside = true;
    const auto& v = poly.vertices();
    for (std::size_t e = 0; e < v.size(); ++e) {
      const Vec2 a = v[e], b = v[(e + 1) % v.size()];
      if ((b - a).cross(p - a) < -1e-12) inside = false;
    }
    EXPECT_EQ(poly.contains(p), inside) << "p=(" << p.x << "," << p.y << ")";
  }
}

TEST(PolygonTest, HalfplaneAndBoxClip) {
  const ConvexPolygon square = box_polygon(Box{{0.0, 0.0}, {2.0, 2.0}});
  const ConvexPolygon half = square.clip_halfplane({1.0, 0.0}, 1.0);  // x <= 1
  EXPECT_NEAR(half.area(), 2.0, 1e-12);
  const ConvexPolygon clipped = square.clip_box(Box{{0.5, 0.5}, {1.5, 1.5}});
  EXPECT_NEAR(clipped.area(), 1.0, 1e-12);
  // Clip to a disjoint box -> empty.
  EXPECT_TRUE(square.clip_box(Box{{5.0, 5.0}, {6.0, 6.0}}).empty());
}

TEST(PolygonTest, BoundingBox) {
  const ConvexPolygon tri({{0.0, 0.0}, {2.0, 0.0}, {1.0, 3.0}});
  const Box bb = tri.bounding_box();
  EXPECT_EQ(bb.lo, Vec2(0.0, 0.0));
  EXPECT_EQ(bb.hi, Vec2(2.0, 3.0));
}

// --- circle-polygon clip ---

TEST(DiskPolygonArea, PolygonInsideDisk) {
  const ConvexPolygon square = box_polygon(Box::square({0.0, 0.0}, 1.0));
  EXPECT_NEAR(disk_polygon_area(Circle{{0.0, 0.0}, 10.0}, square), 1.0, 1e-12);
}

TEST(DiskPolygonArea, DiskInsidePolygon) {
  const ConvexPolygon square = box_polygon(Box::square({0.0, 0.0}, 10.0));
  EXPECT_NEAR(disk_polygon_area(Circle{{1.0, 1.0}, 1.5}, square), kPi * 2.25, 1e-9);
}

TEST(DiskPolygonArea, Disjoint) {
  const ConvexPolygon square = box_polygon(Box::square({0.0, 0.0}, 1.0));
  EXPECT_NEAR(disk_polygon_area(Circle{{10.0, 0.0}, 1.0}, square), 0.0, 1e-12);
}

TEST(DiskPolygonArea, HalfDisk) {
  // Disk centered on the edge of a huge half-plane-like box: half its area.
  const ConvexPolygon right = box_polygon(Box{{0.0, -50.0}, {100.0, 50.0}});
  EXPECT_NEAR(disk_polygon_area(Circle{{0.0, 0.0}, 2.0}, right), kPi * 4.0 / 2.0, 1e-9);
}

TEST(DiskPolygonArea, MatchesLensClosedForm) {
  // Disk vs a fine polygon of another disk = lens area.
  const Circle a{{0.0, 0.0}, 1.0};
  const Circle b{{1.2, 0.3}, 0.8};
  const ConvexPolygon pb = circle_polygon(b.center, b.radius, 2048);
  EXPECT_NEAR(disk_polygon_area(a, pb), lens_area(a, b), 2e-4);
}

TEST(DiskPolygonArea, MonteCarloCrossCheck) {
  const Circle c{{0.3, -0.2}, 0.9};
  const ConvexPolygon tri({{-1.0, -1.0}, {1.5, -0.5}, {0.0, 1.4}});
  const double exact = disk_polygon_area(c, tri);
  Rng rng(77);
  int hits = 0;
  const int n = 200000;
  const Box bb = tri.bounding_box();
  for (int i = 0; i < n; ++i) {
    const Vec2 p{rng.uniform(bb.lo.x, bb.hi.x), rng.uniform(bb.lo.y, bb.hi.y)};
    if (tri.contains(p) && c.contains(p)) ++hits;
  }
  const double mc = bb.area() * hits / n;
  EXPECT_NEAR(exact, mc, 0.02);
}

// --- disk-family regions ---

TEST(DiskFamily, ConstantGeneratorIsErodedDisk) {
  // All q in disk(c, r0) constrain d(p, q) <= R  =>  region = disk(c, R - r0).
  DiskFamilyRegion region({DiskFamilyGenerator::constant(Circle{{0.0, 0.0}, 0.5}, 1.0)});
  EXPECT_TRUE(region.contains({0.49, 0.0}));
  EXPECT_TRUE(region.contains({0.0, -0.499}));
  EXPECT_FALSE(region.contains({0.51, 0.0}));
  EXPECT_NEAR(region.margin({0.0, 0.0}), 0.5, 1e-6);
}

TEST(DiskFamily, PolygonizeMatchesClosedForm) {
  DiskFamilyRegion region({DiskFamilyGenerator::constant(Circle{{0.0, 0.0}, 0.5}, 1.0)});
  const ConvexPolygon poly = region.polygonize({0.0, 0.0}, 2.0, 256);
  EXPECT_TRUE(poly.is_convex());
  EXPECT_NEAR(poly.area(), kPi * 0.25, kPi * 0.25 * 5e-3);
}

TEST(DiskFamily, EmptyAtOutsideSeedGivesEmptyPolygon) {
  DiskFamilyRegion region({DiskFamilyGenerator::constant(Circle{{0.0, 0.0}, 0.5}, 1.0)});
  EXPECT_TRUE(region.polygonize({5.0, 0.0}, 2.0, 64).empty());
}

TEST(DiskFamily, InscribedGeneratorRespectsDomain) {
  // Generator disk near the left wall of the domain: R(q) small there.
  const Box domain{{0.0, 0.0}, {10.0, 10.0}};
  DiskFamilyRegion region(
      {DiskFamilyGenerator::inscribed(Circle{{2.0, 5.0}, 1.0}, domain)});
  // q = (1, 5) has R = 1: points further than 1 from it are out.
  EXPECT_FALSE(region.contains({4.5, 5.0}));
  EXPECT_TRUE(region.contains({2.0, 5.0}));
}

class DiskFamilyConvexityTest : public ::testing::TestWithParam<int> {};

TEST_P(DiskFamilyConvexityTest, MidpointsOfMembersAreMembers) {
  const int seed = GetParam();
  const Box domain{{-5.0, -5.0}, {15.0, 5.0}};
  DiskFamilyRegion region({
      DiskFamilyGenerator::inscribed(Circle{{0.0, 0.0}, 1.0}, domain),
      DiskFamilyGenerator::inscribed(Circle{{4.0, 0.0}, 1.0}, domain),
  });
  Rng rng(static_cast<std::uint64_t>(seed) + 1000);
  int found = 0;
  for (int i = 0; i < 400 && found < 60; ++i) {
    const Vec2 p{rng.uniform(-1.0, 5.0), rng.uniform(-4.0, 4.0)};
    const Vec2 q{rng.uniform(-1.0, 5.0), rng.uniform(-4.0, 4.0)};
    if (region.contains(p, -1e-9) && region.contains(q, -1e-9)) {
      ++found;
      EXPECT_TRUE(region.contains((p + q) * 0.5, 1e-6));
    }
  }
  EXPECT_GT(found, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiskFamilyConvexityTest, ::testing::Range(0, 6));

TEST(DiskFamily, BoundaryMinimizerOnCircleMatchesInteriorScan) {
  // Concavity argument: the margin minimum over the generator disk is on
  // its boundary. Compare against scanning interior points.
  const Box domain{{-5.0, -5.0}, {15.0, 5.0}};
  DiskFamilyRegion region({DiskFamilyGenerator::inscribed(Circle{{0.0, 0.0}, 1.0}, domain)});
  const Vec2 p{2.5, 1.0};
  const double boundary_margin = region.margin(p);
  double interior_min = 1e18;
  // Integer-stepped loops so the rr = 1.0 boundary ring (where the concave
  // margin attains its minimum) is sampled exactly.
  for (int ir = 0; ir <= 20; ++ir) {
    const double rr = ir * 0.05;
    for (int it = 0; it < 640; ++it) {
      const Vec2 q = rr * unit_vec(it * 0.01);
      interior_min = std::min(interior_min, domain.inscribed_radius(q) - dist(p, q));
    }
  }
  // The interior scan is a coarse grid (steps of 0.05), so agreement is
  // within the grid's Lipschitz error; the refined boundary minimum must
  // never exceed the scanned minimum.
  EXPECT_NEAR(boundary_margin, interior_min, 0.05);
  EXPECT_LE(boundary_margin, interior_min + 1e-6);
}

}  // namespace
}  // namespace sens
