// Tests for sens/perc: site grids, cluster labeling, crossing probabilities,
// chemical distance, and the Angel et al. mesh router.
#include <gtest/gtest.h>

#include <algorithm>

#include "sens/perc/chemical.hpp"
#include "sens/perc/clusters.hpp"
#include "sens/perc/crossing.hpp"
#include "sens/perc/mesh_router.hpp"
#include "sens/perc/site_grid.hpp"

namespace sens {
namespace {

TEST(SiteGridTest, BasicsAndBounds) {
  SiteGrid g(4, 3);
  EXPECT_EQ(g.num_sites(), 12u);
  EXPECT_TRUE(g.in_bounds({0, 0}));
  EXPECT_TRUE(g.in_bounds({3, 2}));
  EXPECT_FALSE(g.in_bounds({4, 0}));
  EXPECT_FALSE(g.in_bounds({0, -1}));
  EXPECT_FALSE(g.open({1, 1}));
  g.set_open({1, 1}, true);
  EXPECT_TRUE(g.open({1, 1}));
  EXPECT_EQ(g.open_count(), 1u);
  const Site s = g.site_at(g.index({2, 1}));
  EXPECT_EQ(s, (Site{2, 1}));
  EXPECT_THROW(SiteGrid(0, 4), std::invalid_argument);
}

TEST(SiteGridTest, NeighborEnumeration) {
  SiteGrid g(3, 3);
  int corner = 0, center = 0;
  g.for_each_neighbor({0, 0}, [&](Site) { ++corner; });
  g.for_each_neighbor({1, 1}, [&](Site) { ++center; });
  EXPECT_EQ(corner, 2);
  EXPECT_EQ(center, 4);
}

TEST(SiteGridTest, RandomFractionNearP) {
  const SiteGrid g = SiteGrid::random(200, 200, 0.6, 9);
  EXPECT_NEAR(g.open_fraction(), 0.6, 0.02);
  // Deterministic per seed.
  const SiteGrid h = SiteGrid::random(200, 200, 0.6, 9);
  EXPECT_EQ(g.open_count(), h.open_count());
}

TEST(LatticeDistance, IsL1) {
  EXPECT_EQ(lattice_distance({0, 0}, {3, -4}), 7);
  EXPECT_EQ(lattice_distance({2, 2}, {2, 2}), 0);
}

TEST(Clusters, FullAndEmptyGrids) {
  const SiteGrid full(10, 10, true);
  const ClusterLabels cl(full);
  EXPECT_EQ(cl.cluster_count(), 1u);
  EXPECT_EQ(cl.largest_cluster_size(), 100u);
  EXPECT_DOUBLE_EQ(cl.theta_estimate(), 1.0);

  const SiteGrid empty(10, 10, false);
  const ClusterLabels ce(empty);
  EXPECT_EQ(ce.cluster_count(), 0u);
  EXPECT_EQ(ce.largest_cluster_size(), 0u);
}

TEST(Clusters, KnownConfiguration) {
  SiteGrid g(5, 1);
  g.set_open({0, 0}, true);
  g.set_open({1, 0}, true);
  g.set_open({3, 0}, true);
  const ClusterLabels cl(g);
  EXPECT_EQ(cl.cluster_count(), 2u);
  EXPECT_TRUE(cl.same_cluster({0, 0}, {1, 0}));
  EXPECT_FALSE(cl.same_cluster({1, 0}, {3, 0}));
  EXPECT_EQ(cl.label({2, 0}), ClusterLabels::kClosed);
  EXPECT_EQ(cl.largest_cluster_size(), 2u);
}

TEST(Clusters, ThetaSupercriticalRange) {
  // At p = 0.7 (supercritical), theta is known to be roughly 0.65-0.75.
  const SiteGrid g = SiteGrid::random(256, 256, 0.7, 3);
  const ClusterLabels cl(g);
  EXPECT_GT(cl.theta_estimate(), 0.55);
  EXPECT_LT(cl.theta_estimate(), 0.8);
}

TEST(Crossing, ExtremesAndMonotonicity) {
  SiteGrid full(12, 12, true);
  EXPECT_TRUE(has_lr_crossing(full));
  SiteGrid empty(12, 12, false);
  EXPECT_FALSE(has_lr_crossing(empty));
  // Single open row crosses.
  SiteGrid row(8, 8, false);
  for (std::int32_t x = 0; x < 8; ++x) row.set_open({x, 3}, true);
  EXPECT_TRUE(has_lr_crossing(row));
  // Column does not connect left to right unless it spans.
  SiteGrid col(8, 8, false);
  for (std::int32_t y = 0; y < 8; ++y) col.set_open({3, y}, true);
  EXPECT_FALSE(has_lr_crossing(col));

  const double lo = crossing_probability(24, 0.45, 200, 4);
  const double hi = crossing_probability(24, 0.75, 200, 4);
  EXPECT_LT(lo, 0.35);
  EXPECT_GT(hi, 0.8);
}

TEST(Crossing, HalfCrossingPointNearPc) {
  // Finite-size estimate at n = 48 should land near the site threshold
  // 0.5927 (generous tolerance for MC noise and finite-size shift).
  const double pc = estimate_half_crossing_point(48, 300, 5);
  EXPECT_NEAR(pc, 0.5927, 0.05);
}

TEST(Chemical, DistancesAtPOne) {
  const SiteGrid g(20, 20, true);
  const auto dist = chemical_distances(g, {0, 0});
  EXPECT_EQ(dist[g.index({5, 7})], 12u);  // equals L1 on the full lattice
  EXPECT_EQ(dist[g.index({19, 19})], 38u);
}

TEST(Chemical, ClosedSourceYieldsNothing) {
  SiteGrid g(5, 5, false);
  const auto dist = chemical_distances(g, {2, 2});
  for (const auto d : dist) EXPECT_EQ(d, 0xffffffffu);
}

TEST(Chemical, SamplesRespectLowerBound) {
  const SiteGrid g = SiteGrid::random(128, 128, 0.75, 8);
  const ClusterLabels cl(g);
  const auto samples = sample_chemical_distances(g, cl, 30, 60, 17);
  EXPECT_GT(samples.size(), 10u);
  for (const auto& s : samples) {
    EXPECT_GE(s.chemical, static_cast<std::uint32_t>(s.lattice));  // D_p >= D
    EXPECT_GE(s.ratio(), 1.0);
    EXPECT_LT(s.ratio(), 3.0);  // Antal-Pisztora: bounded overhead at p = 0.75
  }
}

TEST(Chemical, IntoMatchesAllocatingWrapperAcrossSources) {
  // One scratch + buffer reused across sources (including a closed one)
  // must match fresh allocating runs exactly (DESIGN.md §2.4).
  SiteGrid g = SiteGrid::random(32, 32, 0.7, 12);
  g.set_open({3, 3}, false);
  ChemicalScratch scratch;
  std::vector<std::uint32_t> dist(g.num_sites());
  for (const Site s : {Site{0, 0}, Site{3, 3}, Site{31, 31}, Site{16, 5}}) {
    chemical_distances_into(g, s, scratch, dist);
    EXPECT_EQ(dist, chemical_distances(g, s));
  }
}

TEST(MeshRouterTest, ScratchRouteMatchesAllocatingWrapper) {
  // Scratch reuse across routes (and across the BFS invocations inside one
  // route) must not change paths or probe accounting.
  const SiteGrid g = SiteGrid::random(48, 48, 0.68, 5);
  const ClusterLabels cl(g);
  const MeshRouter router(g);
  std::vector<Site> giant;
  for (std::size_t i = 0; i < g.num_sites(); i += 5) {
    const Site s = g.site_at(i);
    if (cl.in_largest(s)) giant.push_back(s);
  }
  ASSERT_GE(giant.size(), 4u);
  MeshRouteScratch scratch;
  for (std::size_t i = 0; i + 1 < giant.size(); i += giant.size() / 4) {
    const MeshRoute with_scratch = router.route(giant[i], giant[giant.size() - 1 - i], scratch);
    const MeshRoute fresh = router.route(giant[i], giant[giant.size() - 1 - i]);
    EXPECT_EQ(with_scratch.success, fresh.success);
    EXPECT_EQ(with_scratch.probes, fresh.probes);
    EXPECT_EQ(with_scratch.bfs_invocations, fresh.bfs_invocations);
    ASSERT_EQ(with_scratch.path.size(), fresh.path.size());
    for (std::size_t p = 0; p < fresh.path.size(); ++p)
      EXPECT_EQ(with_scratch.path[p], fresh.path[p]);
  }
}

TEST(MeshRouterTest, FullLatticeFollowsXyPath) {
  const SiteGrid g(16, 16, true);
  const MeshRouter router(g);
  const MeshRoute r = router.route({2, 3}, {10, 9});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.hops(), static_cast<std::size_t>(lattice_distance({2, 3}, {10, 9})));
  EXPECT_EQ(r.bfs_invocations, 0u);
  // Path consists of unit steps and starts/ends correctly.
  EXPECT_EQ(r.path.front(), (Site{2, 3}));
  EXPECT_EQ(r.path.back(), (Site{10, 9}));
  for (std::size_t i = 1; i < r.path.size(); ++i)
    EXPECT_EQ(lattice_distance(r.path[i - 1], r.path[i]), 1);
}

TEST(MeshRouterTest, DetoursAroundHole) {
  SiteGrid g(9, 9, true);
  // Wall at x = 4 with a gap at y = 8.
  for (std::int32_t y = 0; y < 8; ++y) g.set_open({4, y}, true ? false : true);
  for (std::int32_t y = 0; y < 8; ++y) g.set_open({4, y}, false);
  const MeshRouter router(g);
  const MeshRoute r = router.route({0, 0}, {8, 0});
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.hops(), 8u);  // forced detour
  EXPECT_GE(r.bfs_invocations, 1u);
  for (const Site s : r.path) EXPECT_TRUE(g.open(s));
  for (std::size_t i = 1; i < r.path.size(); ++i)
    EXPECT_EQ(lattice_distance(r.path[i - 1], r.path[i]), 1);
}

TEST(MeshRouterTest, FailsAcrossDisconnection) {
  SiteGrid g(9, 3, true);
  for (std::int32_t y = 0; y < 3; ++y) g.set_open({4, y}, false);  // full wall
  const MeshRouter router(g);
  const MeshRoute r = router.route({0, 1}, {8, 1});
  EXPECT_FALSE(r.success);
}

class MeshRouterRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MeshRouterRandomTest, SucceedsWithinGiantCluster) {
  const SiteGrid g = SiteGrid::random(64, 64, 0.72, GetParam());
  const ClusterLabels cl(g);
  const MeshRouter router(g);
  // Pick spread-out giant-cluster sites deterministically.
  std::vector<Site> giant;
  for (std::size_t i = 0; i < g.num_sites(); i += 7) {
    const Site s = g.site_at(i);
    if (cl.in_largest(s)) giant.push_back(s);
  }
  ASSERT_GE(giant.size(), 2u);
  const Site a = giant.front();
  const Site b = giant.back();
  const MeshRoute r = router.route(a, b);
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.hops(), static_cast<std::size_t>(lattice_distance(a, b)));
  EXPECT_GE(r.probes, r.hops());  // at least one probe per successful step
  for (const Site s : r.path) EXPECT_TRUE(g.open(s));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeshRouterRandomTest, ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace sens
