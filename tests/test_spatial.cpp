// Tests for sens/spatial: grid index, kd-tree and grid k-NN against
// brute-force oracles and against each other (the engines must agree
// bit-for-bit, including (distance, index) tie-breaks).
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "sens/geometry/vec2.hpp"
#include "sens/rng/rng.hpp"
#include "sens/spatial/grid_index.hpp"
#include "sens/spatial/grid_knn.hpp"
#include "sens/spatial/grid_knn_pyramid.hpp"
#include "sens/spatial/kdtree.hpp"

namespace sens {
namespace {

std::vector<Vec2> random_points(std::size_t n, std::uint64_t seed, double extent = 10.0) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, extent), rng.uniform(0.0, extent)});
  return pts;
}

std::vector<std::uint32_t> brute_radius(const std::vector<Vec2>& pts, Vec2 q, double r) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < pts.size(); ++i)
    if (dist2(pts[i], q) <= r * r) out.push_back(i);
  return out;
}

class GridIndexParamTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridIndexParamTest, RadiusQueryMatchesBruteForce) {
  const auto pts = random_points(400, GetParam());
  const Box bounds{{0.0, 0.0}, {10.0, 10.0}};
  const GridIndex index(pts, bounds, 1.0);
  Rng rng(GetParam() + 999);
  for (int t = 0; t < 50; ++t) {
    const Vec2 q{rng.uniform(-1.0, 11.0), rng.uniform(-1.0, 11.0)};
    const double r = rng.uniform(0.1, 1.0);
    auto got = index.query_radius(q, r);
    auto want = brute_radius(pts, q, r);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridIndexParamTest, ::testing::Range<std::uint64_t>(1, 9));

TEST(GridIndex, LargerRadiusThanCellStillExact) {
  const auto pts = random_points(300, 42);
  const GridIndex index(pts, Box{{0.0, 0.0}, {10.0, 10.0}}, 0.5);
  auto got = index.query_radius({5.0, 5.0}, 3.0);
  auto want = brute_radius(pts, {5.0, 5.0}, 3.0);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
}

// The scan widens to ceil(radius / cell_size) rings, so any radius is
// exhaustive — including one covering the whole grid from a corner.
TEST(GridIndex, RadiusSweepsBeyondCellAreExhaustive) {
  const auto pts = random_points(250, 77);
  const GridIndex index(pts, Box{{0.0, 0.0}, {10.0, 10.0}}, 1.0);
  Rng rng(770);
  for (int t = 0; t < 40; ++t) {
    const Vec2 q{rng.uniform(-2.0, 12.0), rng.uniform(-2.0, 12.0)};
    const double r = rng.uniform(1.0, 6.0);  // always > cell_size
    auto got = index.query_radius(q, r);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, brute_radius(pts, q, r));
  }
  auto all = index.query_radius({0.0, 0.0}, 20.0);
  EXPECT_EQ(all.size(), pts.size());
}

TEST(GridIndex, QueryRadiusIntoReusesBuffer) {
  const auto pts = random_points(200, 13);
  const GridIndex index(pts, Box{{0.0, 0.0}, {10.0, 10.0}}, 1.0);
  std::vector<std::uint32_t> out{99, 99, 99};  // stale contents must vanish
  const std::size_t n1 = index.query_radius_into({5.0, 5.0}, 1.5, out);
  EXPECT_EQ(n1, out.size());
  std::vector<std::uint32_t> sorted = out;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, brute_radius(pts, {5.0, 5.0}, 1.5));
  // Second query with the same buffer: result identical to a fresh call.
  index.query_radius_into({2.0, 8.0}, 0.7, out);
  EXPECT_EQ(out, index.query_radius({2.0, 8.0}, 0.7));
}

TEST(GridIndex, ForEachUntilStopsEarly) {
  const auto pts = random_points(300, 5);
  const GridIndex index(pts, Box{{0.0, 0.0}, {10.0, 10.0}}, 1.0);
  int visits = 0;
  const bool hit = index.for_each_in_radius_until({5.0, 5.0}, 4.0, [&](std::uint32_t) {
    ++visits;
    return true;  // stop at the first point
  });
  EXPECT_TRUE(hit);
  EXPECT_EQ(visits, 1);
  const bool none = index.for_each_in_radius_until({5.0, 5.0}, 4.0,
                                                   [](std::uint32_t) { return false; });
  EXPECT_FALSE(none);
}

TEST(GridIndex, PointsOutsideBoundsAreClamped) {
  std::vector<Vec2> pts{{-5.0, -5.0}, {15.0, 15.0}, {5.0, 5.0}};
  const GridIndex index(pts, Box{{0.0, 0.0}, {10.0, 10.0}}, 1.0);
  EXPECT_EQ(index.query_radius({-5.0, -5.0}, 0.5), std::vector<std::uint32_t>{0});
  EXPECT_EQ(index.size(), 3u);
}

TEST(GridIndex, InvalidCellSizeThrows) {
  std::vector<Vec2> pts{{0.0, 0.0}};
  EXPECT_THROW(GridIndex(pts, Box{{0.0, 0.0}, {1.0, 1.0}}, 0.0), std::invalid_argument);
}

TEST(GridIndex, EmptyInput) {
  std::vector<Vec2> pts;
  const GridIndex index(pts, Box{{0.0, 0.0}, {1.0, 1.0}}, 1.0);
  EXPECT_TRUE(index.query_radius({0.5, 0.5}, 10.0).empty());
}

class KdTreeParamTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KdTreeParamTest, NearestMatchesBruteForce) {
  const auto pts = random_points(350, GetParam() * 31 + 5);
  const KdTree tree(pts);
  Rng rng(GetParam() + 12345);
  for (int t = 0; t < 30; ++t) {
    const Vec2 q{rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)};
    const std::size_t k = 1 + rng.uniform_index(20);
    const auto got = tree.nearest(q, k);
    // Oracle: sort all points by (distance, index).
    std::vector<std::uint32_t> want(pts.size());
    for (std::uint32_t i = 0; i < pts.size(); ++i) want[i] = i;
    std::sort(want.begin(), want.end(), [&](std::uint32_t a, std::uint32_t b) {
      const double da = dist2(pts[a], q), db = dist2(pts[b], q);
      return da != db ? da < db : a < b;
    });
    want.resize(std::min(k, want.size()));
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KdTreeParamTest, ::testing::Range<std::uint64_t>(1, 9));

TEST(KdTree, ExcludeSelf) {
  const auto pts = random_points(100, 3);
  const KdTree tree(pts);
  const auto got = tree.nearest(pts[17], 5, 17);
  for (const auto idx : got) EXPECT_NE(idx, 17u);
  // Without exclusion, the point itself comes first (distance 0).
  EXPECT_EQ(tree.nearest(pts[17], 1).front(), 17u);
}

TEST(KdTree, KLargerThanN) {
  const auto pts = random_points(10, 8);
  const KdTree tree(pts);
  EXPECT_EQ(tree.nearest({5.0, 5.0}, 50).size(), 10u);
  EXPECT_EQ(tree.nearest({5.0, 5.0}, 50, 3).size(), 9u);
}

TEST(KdTree, DuplicatePointsTieBreakByIndex) {
  std::vector<Vec2> pts{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}};
  const KdTree tree(pts);
  const auto got = tree.nearest({1.0, 1.0}, 3);
  EXPECT_EQ(got, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(KdTree, RadiusQueryMatchesBruteForce) {
  const auto pts = random_points(500, 5);
  const KdTree tree(pts);
  Rng rng(55);
  for (int t = 0; t < 25; ++t) {
    const Vec2 q{rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)};
    const double r = rng.uniform(0.2, 2.5);
    EXPECT_EQ(tree.query_radius(q, r), brute_radius(pts, q, r));
  }
}

TEST(KdTree, EmptyAndZeroK) {
  std::vector<Vec2> none;
  const KdTree tree(none);
  EXPECT_TRUE(tree.nearest({0.0, 0.0}, 3).empty());
  const auto pts = random_points(5, 1);
  const KdTree t2(pts);
  EXPECT_TRUE(t2.nearest({0.0, 0.0}, 0).empty());
}

// --- scratch-buffer overloads --------------------------------------------

// `nearest_into` must equal `nearest` with one scratch reused across
// adversarial queries: duplicates, k >= n, exclusion, mixed k sizes (the
// sorted-array and heap candidate strategies share one scratch).
TEST(KdTree, NearestIntoMatchesNearestOnAdversarialInputs) {
  std::vector<Vec2> pts{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}, {1.0, 1.0}};
  const KdTree tree(pts);
  KdTree::QueryScratch scratch;
  std::vector<std::uint32_t> out;
  tree.nearest_into({1.0, 1.0}, 3, KdTree::npos, scratch, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1, 2}));
  tree.nearest_into({1.0, 1.0}, 3, 1, scratch, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 2, 4}));
  // k >= n, with and without exclusion.
  EXPECT_EQ(tree.nearest_into({0.0, 0.0}, 50, KdTree::npos, scratch, out), 5u);
  EXPECT_EQ(out, tree.nearest({0.0, 0.0}, 50));
  EXPECT_EQ(tree.nearest_into({0.0, 0.0}, 50, 3, scratch, out), 4u);
  EXPECT_EQ(out, tree.nearest({0.0, 0.0}, 50, 3));
  // Alternating k across the sorted-array / heap strategy threshold with
  // the same scratch.
  const auto big = random_points(400, 99);
  const KdTree btree(big);
  Rng rng(424);
  for (int t = 0; t < 20; ++t) {
    const Vec2 q{rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)};
    for (const std::size_t k : {3ul, 60ul, 17ul, 200ul}) {
      btree.nearest_into(q, k, KdTree::npos, scratch, out);
      EXPECT_EQ(out, btree.nearest(q, k));
    }
  }
}

TEST(KdTree, QueryRadiusIntoMatchesQueryRadius) {
  const auto pts = random_points(300, 21);
  const KdTree tree(pts);
  KdTree::QueryScratch scratch;
  std::vector<std::uint32_t> out;
  Rng rng(212);
  for (int t = 0; t < 20; ++t) {
    const Vec2 q{rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)};
    const double r = rng.uniform(0.2, 2.0);
    tree.query_radius_into(q, r, scratch, out);
    EXPECT_EQ(out, brute_radius(pts, q, r));
  }
}

// --- GridKnn: the batched k-NN engine ------------------------------------

class GridKnnParamTest : public ::testing::TestWithParam<std::uint64_t> {};

// GridKnn must agree with the kd-tree bit for bit — same neighbors, same
// order, same (distance, index) tie-breaks — across the streaming (small k)
// and selection (large k) paths.
TEST_P(GridKnnParamTest, MatchesKdTreeOracle) {
  const auto pts = random_points(350, GetParam() * 17 + 3);
  const KdTree tree(pts);
  for (const std::size_t k : {1ul, 8ul, 48ul, 49ul, 120ul, 400ul}) {
    const GridKnn grid(pts, k);
    GridKnn::QueryScratch scratch;
    std::vector<std::uint32_t> got;
    Rng rng(GetParam() + 5000);
    for (int t = 0; t < 15; ++t) {
      const Vec2 q{rng.uniform(-1.0, 11.0), rng.uniform(-1.0, 11.0)};
      grid.nearest_into(q, k, GridKnn::npos, scratch, got);
      EXPECT_EQ(got, tree.nearest(q, k)) << "k=" << k;
    }
    // Self-queries with exclusion — the batched builder's workload.
    for (std::uint32_t i = 0; i < 25; ++i) {
      grid.nearest_into(pts[i], k, i, scratch, got);
      EXPECT_EQ(got, tree.nearest(pts[i], k, i)) << "k=" << k << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridKnnParamTest, ::testing::Range<std::uint64_t>(1, 7));

TEST(GridKnn, DuplicatePointsAndDegenerateInputs) {
  std::vector<Vec2> same(6, Vec2{3.0, 3.0});
  const GridKnn grid(same, 4);
  GridKnn::QueryScratch scratch;
  std::vector<std::uint32_t> out;
  grid.nearest_into({3.0, 3.0}, 4, 2, scratch, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1, 3, 4}));
  std::vector<Vec2> none;
  const GridKnn empty(none, 4);
  EXPECT_EQ(empty.nearest_into({0.0, 0.0}, 4, GridKnn::npos, scratch, out), 0u);
  const GridKnn one(std::vector<Vec2>{{1.0, 2.0}}, 1);
  EXPECT_EQ(one.nearest_into({0.0, 0.0}, 0, GridKnn::npos, scratch, out), 0u);
  EXPECT_EQ(one.nearest_into({0.0, 0.0}, 3, GridKnn::npos, scratch, out), 1u);
  EXPECT_EQ(out, std::vector<std::uint32_t>{0});
}

// --- GridKnnPyramid: per-level subset views over one shared store --------

class GridKnnPyramidParamTest : public ::testing::TestWithParam<std::uint64_t> {};

// Every pyramid level must agree bit-for-bit with a *fresh* single-level
// GridKnn built over the compacted subset coordinates (local ids mapped
// back through the member list) — same neighbors, same order, same
// (distance, index) tie-breaks. Member lists are ascending, so local-id
// tie-break order equals global-id tie-break order. Mirrors
// GridKnnParamTest.MatchesKdTreeOracle for the multi-resolution engine.
TEST_P(GridKnnPyramidParamTest, LevelsMatchFreshGridKnnOracle) {
  const auto pts = random_points(420, GetParam() * 23 + 1);
  // Nested thinned subsets (keep every 2nd/4th/8th point), one grid each,
  // tuned for very different k — the HNG workload shape.
  std::vector<GridKnnPyramid::LevelSpec> specs;
  const std::size_t ks[] = {4, 48, 120};
  for (std::size_t l = 0; l < 3; ++l) {
    GridKnnPyramid::LevelSpec spec;
    for (std::uint32_t i = 0; i < pts.size(); i += (1u << (l + 1))) spec.members.push_back(i);
    spec.expected_k = ks[l];
    specs.push_back(std::move(spec));
  }
  const GridKnnPyramid pyramid(pts, specs);
  ASSERT_EQ(pyramid.num_levels(), 3u);

  GridKnn::QueryScratch scratch;
  GridKnn::QueryScratch oracle_scratch;
  std::vector<std::uint32_t> got;
  std::vector<std::uint32_t> oracle_local;
  for (std::size_t l = 0; l < 3; ++l) {
    const auto& members = specs[l].members;
    std::vector<Vec2> subset;
    subset.reserve(members.size());
    for (const std::uint32_t m : members) subset.push_back(pts[m]);
    const GridKnn fresh(subset, ks[l]);
    EXPECT_EQ(pyramid.level(l).size(), members.size());

    Rng rng(GetParam() + 31 * l);
    for (int t = 0; t < 20; ++t) {
      const Vec2 q{rng.uniform(-1.0, 11.0), rng.uniform(-1.0, 11.0)};
      // Query both off-tune (k != expected_k) and on-tune to cross the
      // streaming/selection strategy threshold on shared scratches.
      for (const std::size_t k : {std::size_t{1}, ks[l], std::size_t{200}}) {
        pyramid.level(l).nearest_into(q, k, GridKnn::npos, scratch, got);
        fresh.nearest_into(q, k, GridKnn::npos, oracle_scratch, oracle_local);
        std::vector<std::uint32_t> want(oracle_local.size());
        for (std::size_t i = 0; i < oracle_local.size(); ++i) want[i] = members[oracle_local[i]];
        EXPECT_EQ(got, want) << "level " << l << " k " << k;
      }
    }
    // Member self-queries with exclusion — the HNG linking workload.
    for (std::size_t i = 0; i < members.size(); i += 7) {
      const std::uint32_t m = members[i];
      pyramid.level(l).nearest_into(pts[m], ks[l], m, scratch, got);
      fresh.nearest_into(pts[m], ks[l], static_cast<std::uint32_t>(i), oracle_scratch,
                         oracle_local);
      std::vector<std::uint32_t> want(oracle_local.size());
      for (std::size_t j = 0; j < oracle_local.size(); ++j) want[j] = members[oracle_local[j]];
      EXPECT_EQ(got, want) << "level " << l << " member " << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridKnnPyramidParamTest, ::testing::Range<std::uint64_t>(1, 7));

TEST(GridKnnPyramid, DuplicatePointsTieBreakByGlobalIndex) {
  // Six coincident points; the level indexes the odd-id half. Ties must
  // resolve by ascending *global* id within the membership.
  std::vector<Vec2> pts(6, Vec2{3.0, 3.0});
  std::vector<GridKnnPyramid::LevelSpec> specs(1);
  specs[0].members = {1, 3, 5};
  specs[0].expected_k = 2;
  const GridKnnPyramid pyramid(pts, specs);
  GridKnn::QueryScratch scratch;
  std::vector<std::uint32_t> out;
  pyramid.level(0).nearest_into({3.0, 3.0}, 2, GridKnn::npos, scratch, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 3}));
  pyramid.level(0).nearest_into({3.0, 3.0}, 2, 3, scratch, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 5}));
}

TEST(GridKnnPyramid, KAtLeastLevelSizeAndEmptyLevels) {
  const auto pts = random_points(60, 12);
  std::vector<GridKnnPyramid::LevelSpec> specs(2);
  specs[0].members = {2, 11, 29, 47};
  specs[0].expected_k = 9;  // > |members|
  specs[1].members = {};    // empty level: queries must return 0
  specs[1].expected_k = 3;
  const GridKnnPyramid pyramid(pts, specs);
  GridKnn::QueryScratch scratch;
  std::vector<std::uint32_t> out;
  // k >= n collects the whole membership, sorted by (distance, id).
  EXPECT_EQ(pyramid.level(0).nearest_into({5.0, 5.0}, 9, GridKnn::npos, scratch, out), 4u);
  std::vector<std::uint32_t> sorted = out;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, specs[0].members);
  EXPECT_EQ(pyramid.level(0).nearest_into({5.0, 5.0}, 9, 29, scratch, out), 3u);
  EXPECT_EQ(pyramid.level(1).nearest_into({5.0, 5.0}, 3, GridKnn::npos, scratch, out), 0u);
  EXPECT_EQ(pyramid.level(1).size(), 0u);
}

TEST(GridKnnPyramid, RejectsOutOfRangeMembers) {
  const auto pts = random_points(10, 4);
  std::vector<GridKnnPyramid::LevelSpec> specs(1);
  specs[0].members = {3, 10};
  EXPECT_THROW(GridKnnPyramid(pts, specs), std::out_of_range);
}

// --- mutable membership: the churn substrate of sens/dynamic -------------

/// The mutation oracle: a mutated grid must answer every query identically
/// to a *fresh* subset view over its current live member set — spill
/// entries, tombstones, and compactions must all be invisible.
void expect_matches_fresh(const GridKnn& grid, std::span<const Vec2> store,
                          std::size_t expected_k, std::uint64_t seed) {
  const std::vector<std::uint32_t> members = grid.live_members();
  const GridKnn fresh(store, members, expected_k);
  ASSERT_EQ(grid.size(), members.size());
  GridKnn::QueryScratch scratch, fresh_scratch;
  std::vector<std::uint32_t> got, want;
  Rng rng(seed);
  for (int t = 0; t < 10; ++t) {
    const Vec2 q{rng.uniform(-1.0, 11.0), rng.uniform(-1.0, 11.0)};
    for (const std::size_t k : {std::size_t{1}, std::size_t{4}, std::size_t{70}}) {
      grid.nearest_into(q, k, GridKnn::npos, scratch, got);
      fresh.nearest_into(q, k, GridKnn::npos, fresh_scratch, want);
      EXPECT_EQ(got, want) << "k=" << k << " t=" << t;
    }
  }
  for (const std::uint32_t m : members) {
    grid.nearest_into(store[m], 4, m, scratch, got);
    fresh.nearest_into(store[m], 4, m, fresh_scratch, want);
    EXPECT_EQ(got, want) << "self-query of member " << m;
  }
}

TEST(GridKnnMutation, RandomChurnMatchesFreshGrid) {
  const auto pts = random_points(260, 77);
  std::vector<std::uint32_t> members;
  for (std::uint32_t i = 0; i < pts.size(); i += 2) members.push_back(i);
  GridKnn grid(pts, members, 4);
  std::vector<std::uint8_t> in(pts.size(), 0);
  for (const std::uint32_t m : members) in[m] = 1;
  Rng rng(0x6A1D);
  for (int op = 0; op < 300; ++op) {
    const auto id = static_cast<std::uint32_t>(rng.uniform_index(pts.size()));
    if (in[id]) {
      grid.erase_member(id);
    } else {
      grid.insert_member(id);
    }
    in[id] ^= 1;
    if (op % 25 == 24) expect_matches_fresh(grid, pts, 4, 0x6A1D + static_cast<unsigned>(op));
  }
  expect_matches_fresh(grid, pts, 4, 0x6A1D);
}

// A level drained to empty must answer nothing (not stale members), then
// accept a full repopulation — the dynamic layer's top-level collapse and
// regrowth path.
TEST(GridKnnMutation, EmptiedThenRepopulated) {
  const auto pts = random_points(50, 9);
  std::vector<std::uint32_t> members{3, 11, 24, 40};
  GridKnn grid(pts, members, 3);
  for (const std::uint32_t m : members) grid.erase_member(m);
  EXPECT_EQ(grid.size(), 0u);
  GridKnn::QueryScratch scratch;
  std::vector<std::uint32_t> out;
  EXPECT_EQ(grid.nearest_into({5.0, 5.0}, 3, GridKnn::npos, scratch, out), 0u);
  for (std::uint32_t i = 0; i < pts.size(); i += 3) grid.insert_member(i);
  expect_matches_fresh(grid, pts, 3, 0xE2E2);
}

// k >= |membership| must re-saturate exactly as membership shrinks and
// regrows through the spill/tombstone path.
TEST(GridKnnMutation, KAtLeastMembershipResaturates) {
  const auto pts = random_points(30, 5);
  std::vector<std::uint32_t> members{0, 7, 14, 21, 28};
  GridKnn grid(pts, members, 9);
  GridKnn::QueryScratch scratch;
  std::vector<std::uint32_t> out;
  grid.erase_member(14);
  grid.erase_member(0);
  grid.insert_member(1);
  EXPECT_EQ(grid.nearest_into({5.0, 5.0}, 9, GridKnn::npos, scratch, out), 4u);
  std::vector<std::uint32_t> sorted = out;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::uint32_t>{1, 7, 21, 28}));
  expect_matches_fresh(grid, pts, 9, 0x5A7);
}

// Forcing compaction must be observable only through pending(): queries
// before and after are bit-identical to the fresh-grid oracle.
TEST(GridKnnMutation, ForcedCompactionIsInvisible) {
  const auto pts = random_points(120, 31);
  std::vector<std::uint32_t> members;
  for (std::uint32_t i = 0; i < 60; ++i) members.push_back(i);
  GridKnn grid(pts, members, 4);
  for (std::uint32_t i = 0; i < 6; ++i) grid.erase_member(i * 7);
  for (std::uint32_t i = 60; i < 66; ++i) grid.insert_member(i);
  ASSERT_GT(grid.pending(), 0u);
  expect_matches_fresh(grid, pts, 4, 0xC0A);
  grid.compact();
  EXPECT_EQ(grid.pending(), 0u);
  expect_matches_fresh(grid, pts, 4, 0xC0B);
}

TEST(GridKnnMutation, EraseNonMemberThrowsInsertOutOfRangeThrows) {
  const auto pts = random_points(20, 3);
  GridKnn grid(pts, std::vector<std::uint32_t>{1, 2, 3}, 2);
  EXPECT_THROW(grid.erase_member(5), std::invalid_argument);
  grid.erase_member(2);
  EXPECT_THROW(grid.erase_member(2), std::invalid_argument);
  EXPECT_THROW(grid.insert_member(20), std::out_of_range);
}

// Pyramid mutation: grow the store, append levels, drain and repopulate a
// level, recycle a vacated slot with new coordinates — after all of it,
// every level must match a fresh pyramid built from the current state.
TEST(GridKnnPyramidMutation, GrowDrainRepopulateMatchesFreshPyramid) {
  const auto pts = random_points(40, 21);
  std::vector<GridKnnPyramid::LevelSpec> specs(1);
  for (std::uint32_t i = 1; i < pts.size(); i += 2) specs[0].members.push_back(i);
  specs[0].expected_k = 3;
  GridKnnPyramid pyramid(pts, specs);

  // Store growth (with reallocation) + admissions of brand-new ids.
  Rng rng(0x9E4);
  for (int i = 0; i < 20; ++i) {
    const auto id = pyramid.append_point({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
    if (i % 2 == 0) pyramid.insert(0, id);
  }
  pyramid.push_level(2);
  ASSERT_EQ(pyramid.num_levels(), 2u);
  for (const std::uint32_t id : {41u, 45u, 49u}) pyramid.insert(1, id);

  // Drain level 1 to empty, then repopulate it differently.
  for (const std::uint32_t id : {41u, 45u, 49u}) pyramid.erase(1, id);
  GridKnn::QueryScratch scratch;
  std::vector<std::uint32_t> out;
  EXPECT_EQ(pyramid.level(1).nearest_into({5.0, 5.0}, 2, GridKnn::npos, scratch, out), 0u);
  for (const std::uint32_t id : {2u, 40u, 58u}) pyramid.insert(1, id);

  // Recycle a vacated slot at new coordinates.
  pyramid.erase(0, 1);
  pyramid.set_point(1, {9.5, 0.25});
  pyramid.insert(0, 1);

  const std::span<const Vec2> store = pyramid.points();
  EXPECT_EQ(store.size(), 60u);
  const std::size_t ks[] = {3, 2};
  for (std::size_t l = 0; l < 2; ++l) {
    expect_matches_fresh(pyramid.level(l), store, ks[l], 0x9E5 + l);
  }
  EXPECT_THROW(pyramid.set_point(60, {0.0, 0.0}), std::out_of_range);
  EXPECT_THROW(pyramid.insert(2, 0), std::out_of_range);
  EXPECT_THROW(pyramid.erase(0, 60), std::out_of_range);
}

// Collinear points: a degenerate (zero-height) bounding box must not break
// the ring bounds.
TEST(GridKnn, CollinearPoints) {
  std::vector<Vec2> pts;
  for (int i = 0; i < 40; ++i) pts.push_back({0.25 * i, 2.0});
  const KdTree tree(pts);
  const GridKnn grid(pts, 5);
  GridKnn::QueryScratch scratch;
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    grid.nearest_into(pts[i], 5, i, scratch, out);
    EXPECT_EQ(out, tree.nearest(pts[i], 5, i));
  }
}

}  // namespace
}  // namespace sens
