// Tests for sens/spatial: grid index and kd-tree against brute-force oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sens/geometry/vec2.hpp"
#include "sens/rng/rng.hpp"
#include "sens/spatial/grid_index.hpp"
#include "sens/spatial/kdtree.hpp"

namespace sens {
namespace {

std::vector<Vec2> random_points(std::size_t n, std::uint64_t seed, double extent = 10.0) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, extent), rng.uniform(0.0, extent)});
  return pts;
}

std::vector<std::uint32_t> brute_radius(const std::vector<Vec2>& pts, Vec2 q, double r) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < pts.size(); ++i)
    if (dist2(pts[i], q) <= r * r) out.push_back(i);
  return out;
}

class GridIndexParamTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridIndexParamTest, RadiusQueryMatchesBruteForce) {
  const auto pts = random_points(400, GetParam());
  const Box bounds{{0.0, 0.0}, {10.0, 10.0}};
  const GridIndex index(pts, bounds, 1.0);
  Rng rng(GetParam() + 999);
  for (int t = 0; t < 50; ++t) {
    const Vec2 q{rng.uniform(-1.0, 11.0), rng.uniform(-1.0, 11.0)};
    const double r = rng.uniform(0.1, 1.0);
    auto got = index.query_radius(q, r);
    auto want = brute_radius(pts, q, r);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridIndexParamTest, ::testing::Range<std::uint64_t>(1, 9));

TEST(GridIndex, LargerRadiusThanCellStillExact) {
  const auto pts = random_points(300, 42);
  const GridIndex index(pts, Box{{0.0, 0.0}, {10.0, 10.0}}, 0.5);
  auto got = index.query_radius({5.0, 5.0}, 3.0);
  auto want = brute_radius(pts, {5.0, 5.0}, 3.0);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
}

TEST(GridIndex, PointsOutsideBoundsAreClamped) {
  std::vector<Vec2> pts{{-5.0, -5.0}, {15.0, 15.0}, {5.0, 5.0}};
  const GridIndex index(pts, Box{{0.0, 0.0}, {10.0, 10.0}}, 1.0);
  EXPECT_EQ(index.query_radius({-5.0, -5.0}, 0.5), std::vector<std::uint32_t>{0});
  EXPECT_EQ(index.size(), 3u);
}

TEST(GridIndex, InvalidCellSizeThrows) {
  std::vector<Vec2> pts{{0.0, 0.0}};
  EXPECT_THROW(GridIndex(pts, Box{{0.0, 0.0}, {1.0, 1.0}}, 0.0), std::invalid_argument);
}

TEST(GridIndex, EmptyInput) {
  std::vector<Vec2> pts;
  const GridIndex index(pts, Box{{0.0, 0.0}, {1.0, 1.0}}, 1.0);
  EXPECT_TRUE(index.query_radius({0.5, 0.5}, 10.0).empty());
}

class KdTreeParamTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KdTreeParamTest, NearestMatchesBruteForce) {
  const auto pts = random_points(350, GetParam() * 31 + 5);
  const KdTree tree(pts);
  Rng rng(GetParam() + 12345);
  for (int t = 0; t < 30; ++t) {
    const Vec2 q{rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)};
    const std::size_t k = 1 + rng.uniform_index(20);
    const auto got = tree.nearest(q, k);
    // Oracle: sort all points by (distance, index).
    std::vector<std::uint32_t> want(pts.size());
    for (std::uint32_t i = 0; i < pts.size(); ++i) want[i] = i;
    std::sort(want.begin(), want.end(), [&](std::uint32_t a, std::uint32_t b) {
      const double da = dist2(pts[a], q), db = dist2(pts[b], q);
      return da != db ? da < db : a < b;
    });
    want.resize(std::min(k, want.size()));
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KdTreeParamTest, ::testing::Range<std::uint64_t>(1, 9));

TEST(KdTree, ExcludeSelf) {
  const auto pts = random_points(100, 3);
  const KdTree tree(pts);
  const auto got = tree.nearest(pts[17], 5, 17);
  for (const auto idx : got) EXPECT_NE(idx, 17u);
  // Without exclusion, the point itself comes first (distance 0).
  EXPECT_EQ(tree.nearest(pts[17], 1).front(), 17u);
}

TEST(KdTree, KLargerThanN) {
  const auto pts = random_points(10, 8);
  const KdTree tree(pts);
  EXPECT_EQ(tree.nearest({5.0, 5.0}, 50).size(), 10u);
  EXPECT_EQ(tree.nearest({5.0, 5.0}, 50, 3).size(), 9u);
}

TEST(KdTree, DuplicatePointsTieBreakByIndex) {
  std::vector<Vec2> pts{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}};
  const KdTree tree(pts);
  const auto got = tree.nearest({1.0, 1.0}, 3);
  EXPECT_EQ(got, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(KdTree, RadiusQueryMatchesBruteForce) {
  const auto pts = random_points(500, 5);
  const KdTree tree(pts);
  Rng rng(55);
  for (int t = 0; t < 25; ++t) {
    const Vec2 q{rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)};
    const double r = rng.uniform(0.2, 2.5);
    EXPECT_EQ(tree.query_radius(q, r), brute_radius(pts, q, r));
  }
}

TEST(KdTree, EmptyAndZeroK) {
  std::vector<Vec2> none;
  const KdTree tree(none);
  EXPECT_TRUE(tree.nearest({0.0, 0.0}, 3).empty());
  const auto pts = random_points(5, 1);
  const KdTree t2(pts);
  EXPECT_TRUE(t2.nearest({0.0, 0.0}, 0).empty());
}

}  // namespace
}  // namespace sens
