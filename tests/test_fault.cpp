// Tests for sens/fault and the epoch serving path (DESIGN.md §2.9): pure
// per-entity fault draws, the full-rebuild oracle over survivors, replay
// bit-identity across thread counts, apply_edge_delta drain/regrow edge
// cases, the degradation audit, and the EpochQueryEngine's
// zero-uncertified-wrong verdict contract under churn. The FaultInjector /
// FaultOracle / FaultDelta / FaultThreads / Degradation / EpochEngine
// suites are the `fault` ctest tier (ASan CI job, `ctest --preset
// asan-fault`).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sens/dynamic/dynamic_hng.hpp"
#include "sens/fault/degradation.hpp"
#include "sens/fault/fault_plan.hpp"
#include "sens/geograph/point_set.hpp"
#include "sens/geograph/udg.hpp"
#include "sens/graph/bfs.hpp"
#include "sens/graph/components.hpp"
#include "sens/graph/dijkstra.hpp"
#include "sens/rng/rng.hpp"
#include "sens/serve/epoch_engine.hpp"
#include "sens/serve/query_engine.hpp"
#include "sens/support/parallel.hpp"

namespace sens {
namespace {

constexpr std::uint64_t kSeed = 0xfa177e57ULL;

/// Shared workload: a Poisson UDG dense enough to be connected.
GeoGraph make_udg(double side = 14.0, double lambda = 4.0, std::uint64_t seed = kSeed) {
  const Box window{{0.0, 0.0}, {side, side}};
  const PointSet ps = poisson_point_set(window, lambda, seed);
  return build_udg(ps.points, window, 1.0);
}

/// The full-rebuild oracle: filter the original edge list down to the
/// survivors minus the failed links, relabel with the injector's monotone
/// survivor map, rebuild from scratch.
CsrGraph rebuild_over_survivors(const GeoGraph& geo, const FaultInjector& inj,
                                const FaultedGraph& faulted) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (const auto& [u, v] : geo.graph.edge_list()) {
    if (faulted.new_id[u] == FaultedGraph::kDead) continue;
    if (faulted.new_id[v] == FaultedGraph::kDead) continue;
    if (inj.link_fails(u, v)) continue;
    edges.emplace_back(faulted.new_id[u], faulted.new_id[v]);
  }
  return CsrGraph::from_edges(faulted.survivor.size(), std::move(edges));
}

TEST(FaultInjector, EmptyPlanKillsNothing) {
  const GeoGraph geo = make_udg(8.0);
  const FaultInjector inj{FaultPlan{}};
  const FaultedGraph faulted = apply_faults(geo, inj);
  EXPECT_EQ(faulted.nodes_failed, 0u);
  EXPECT_EQ(faulted.edges_lost_endpoint, 0u);
  EXPECT_EQ(faulted.edges_lost_link, 0u);
  ASSERT_EQ(faulted.survivor.size(), geo.size());
  EXPECT_EQ(faulted.geo.graph.edge_list(), geo.graph.edge_list());
  for (std::size_t i = 0; i < geo.size(); ++i) {
    EXPECT_EQ(faulted.survivor[i], i);
    EXPECT_EQ(faulted.new_id[i], i);
  }
}

TEST(FaultInjector, DrawsArePureAndSymmetric) {
  FaultPlan plan;
  plan.node_crash = 0.3;
  plan.link_failure = 0.25;
  plan.seed = 77;
  const FaultInjector a{plan};
  const FaultInjector b{plan};
  // Evaluate b in reverse order first: per-entity streams mean the order
  // of draws cannot matter.
  std::vector<bool> reversed(500);
  for (std::uint32_t id = 500; id-- > 0;) reversed[id] = b.node_crashes(id);
  std::size_t crashed = 0;
  for (std::uint32_t id = 0; id < 500; ++id) {
    EXPECT_EQ(a.node_crashes(id), reversed[id]);
    if (a.node_crashes(id)) ++crashed;
  }
  EXPECT_GT(crashed, 100u);  // ~150 expected at p = 0.3
  EXPECT_LT(crashed, 200u);
  for (std::uint32_t u = 0; u < 40; ++u) {
    for (std::uint32_t v = u + 1; v < 40; ++v) {
      EXPECT_EQ(a.link_fails(u, v), a.link_fails(v, u));
    }
  }
}

TEST(FaultInjector, BlackoutKillsExactlyTheContainedNodes) {
  const GeoGraph geo = make_udg(10.0);
  FaultPlan plan;
  plan.blackouts.push_back(Box{{2.0, 2.0}, {6.0, 5.0}});
  plan.blackouts.push_back(Box{{7.5, 7.5}, {9.0, 9.5}});
  const FaultInjector inj{plan};
  const FaultedGraph faulted = apply_faults(geo, inj);
  std::size_t inside = 0;
  for (std::size_t i = 0; i < geo.size(); ++i) {
    const bool dead = faulted.new_id[i] == FaultedGraph::kDead;
    EXPECT_EQ(dead, inj.node_blacked_out(geo.points[i])) << "node " << i;
    if (dead) ++inside;
  }
  EXPECT_GT(inside, 0u);
  EXPECT_EQ(faulted.nodes_failed, inside);
}

TEST(FaultInjector, TotalCrashLeavesNothing) {
  const GeoGraph geo = make_udg(6.0);
  FaultPlan plan;
  plan.node_crash = 1.0;
  const FaultedGraph faulted = apply_faults(geo, FaultInjector{plan});
  EXPECT_EQ(faulted.survivor.size(), 0u);
  EXPECT_EQ(faulted.geo.graph.num_vertices(), 0u);
  EXPECT_EQ(faulted.nodes_failed, geo.size());
  EXPECT_EQ(faulted.edges_lost_endpoint, geo.graph.num_edges());
}

TEST(FaultOracle, MatchesFreshRebuildOverSurvivors) {
  const GeoGraph geo = make_udg();
  for (const double crash : {0.0, 0.1, 0.35}) {
    for (const double link : {0.0, 0.2}) {
      FaultPlan plan;
      plan.node_crash = crash;
      plan.link_failure = link;
      plan.blackouts.push_back(Box{{1.0, 1.0}, {4.0, 4.0}});
      plan.seed = 0xabcdULL + static_cast<std::uint64_t>(crash * 100 + link * 10);
      const FaultInjector inj{plan};
      const FaultedGraph faulted = apply_faults(geo, inj);
      const CsrGraph rebuilt = rebuild_over_survivors(geo, inj, faulted);
      EXPECT_EQ(faulted.geo.graph.edge_list(), rebuilt.edge_list())
          << "crash=" << crash << " link=" << link;
      // Loss accounting is exact: survivors' edges + losses = original edges.
      EXPECT_EQ(faulted.geo.graph.num_edges() + faulted.edges_lost_endpoint +
                    faulted.edges_lost_link,
                geo.graph.num_edges());
      // The relabel is the monotone survivor map.
      for (std::size_t i = 0; i < faulted.survivor.size(); ++i) {
        EXPECT_EQ(faulted.geo.points[i], geo.points[faulted.survivor[i]]);
        EXPECT_EQ(faulted.new_id[faulted.survivor[i]], i);
      }
    }
  }
}

TEST(FaultOracle, UdgCrashEqualsGeometricRebuild) {
  // Node failures only: the induced UDG subgraph on the survivors IS the
  // UDG of the surviving points (the disk predicate is pairwise), so the
  // fault path must agree with the geometric builder edge-for-edge.
  const Box window{{0.0, 0.0}, {12.0, 12.0}};
  const PointSet ps = poisson_point_set(window, 4.0, kSeed);
  const GeoGraph udg = build_udg(ps.points, window, 1.0);
  FaultPlan plan;
  plan.node_crash = 0.3;
  const FaultedGraph faulted = apply_faults(udg, FaultInjector{plan});
  const GeoGraph fresh = build_udg(faulted.geo.points, window, 1.0);
  EXPECT_EQ(faulted.geo.graph.edge_list(), fresh.graph.edge_list());
}

TEST(FaultDelta, DrainToEmptyAndGrowBack) {
  const GeoGraph geo = make_udg(8.0);
  const std::size_t n = geo.graph.num_vertices();
  const auto edges = geo.graph.edge_list();  // sorted (u < v) ascending
  // Drain: remove every edge and every vertex in one delta.
  const CsrGraph empty = CsrGraph::apply_edge_delta(geo.graph, 0, edges, {});
  EXPECT_EQ(empty.num_vertices(), 0u);
  EXPECT_EQ(empty.num_edges(), 0u);
  // Regrow: add everything back onto the empty graph.
  const CsrGraph regrown = CsrGraph::apply_edge_delta(empty, n, {}, edges);
  EXPECT_EQ(regrown.edge_list(), edges);
  // Edges-only drain keeps the vertices as isolated slots.
  const CsrGraph hollow = CsrGraph::apply_edge_delta(geo.graph, n, edges, {});
  EXPECT_EQ(hollow.num_vertices(), n);
  EXPECT_EQ(hollow.num_edges(), 0u);
  const CsrGraph refilled = CsrGraph::apply_edge_delta(hollow, n, {}, edges);
  EXPECT_EQ(refilled.edge_list(), edges);
}

TEST(FaultDelta, DroppedVertexMustShedItsEdges) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}});
  // Shrinking to 2 vertices without removing {1, 2} must throw.
  EXPECT_THROW(
      (void)CsrGraph::apply_edge_delta(g, 2, std::vector<std::pair<std::uint32_t, std::uint32_t>>{},
                                       {}),
      std::invalid_argument);
}

TEST(FaultThreads, ReplayBitIdenticalAcrossThreadCounts) {
  const GeoGraph geo = make_udg();
  FaultPlan plan;
  plan.node_crash = 0.25;
  plan.link_failure = 0.15;
  plan.blackouts.push_back(Box{{3.0, 3.0}, {7.0, 9.0}});
  const FaultInjector inj{plan};

  set_thread_count(1);
  const FaultedGraph base = apply_faults(geo, inj);
  const DegradationParams audit_params{.sample_pairs = 128, .seed = kSeed};
  const Box window{{0.0, 0.0}, {14.0, 14.0}};
  const DegradationReport base_report = audit_degradation(base.geo, window, audit_params);
  for (const unsigned threads : {2u, 8u}) {
    set_thread_count(threads);
    const FaultedGraph got = apply_faults(geo, inj);
    EXPECT_EQ(got.geo.graph.edge_list(), base.geo.graph.edge_list()) << threads << " threads";
    EXPECT_EQ(got.survivor, base.survivor);
    EXPECT_EQ(got.new_id, base.new_id);
    EXPECT_EQ(got.nodes_failed, base.nodes_failed);
    EXPECT_EQ(got.edges_lost_endpoint, base.edges_lost_endpoint);
    EXPECT_EQ(got.edges_lost_link, base.edges_lost_link);
    const DegradationReport report = audit_degradation(got.geo, window, audit_params);
    EXPECT_EQ(report.giant_fraction, base_report.giant_fraction);
    EXPECT_EQ(report.coverage_fraction, base_report.coverage_fraction);
    EXPECT_EQ(report.mean_stretch, base_report.mean_stretch);
    EXPECT_EQ(report.certified_rate, base_report.certified_rate);
    EXPECT_EQ(report.disconnected_rate, base_report.disconnected_rate);
  }
  set_thread_count(0);
}

TEST(Degradation, IntactConnectedGraphBaseline) {
  const GeoGraph geo = make_udg();
  const Box window{{0.0, 0.0}, {14.0, 14.0}};
  const DegradationReport rep =
      audit_degradation(geo, window, DegradationParams{.sample_pairs = 128, .seed = kSeed});
  EXPECT_EQ(rep.nodes, geo.size());
  EXPECT_EQ(rep.edges, geo.graph.num_edges());
  // lambda = 4 per unit cell: the UDG covers the window and is connected up
  // to the odd isolated straggler, so the giant holds essentially all mass
  // and sampled pairs (drawn over ALL nodes) almost never miss.
  EXPECT_GT(rep.giant_fraction, 0.99);
  EXPECT_LE(rep.giant_fraction, 1.0);
  EXPECT_GT(rep.coverage_fraction, 0.9);
  EXPECT_GE(rep.mean_stretch, 1.0);
  EXPECT_GT(rep.stretch_pairs, 0u);
  EXPECT_LT(rep.disconnected_rate, 0.05);
  EXPECT_GT(rep.certified_rate, 0.5);
}

TEST(Degradation, MassFailureDegradesTheCurves) {
  const GeoGraph geo = make_udg();
  const Box window{{0.0, 0.0}, {14.0, 14.0}};
  const DegradationParams p{.sample_pairs = 128, .seed = kSeed};
  const DegradationReport before = audit_degradation(geo, window, p);
  FaultPlan plan;
  plan.node_crash = 0.5;
  const FaultedGraph faulted = apply_faults(geo, FaultInjector{plan});
  const DegradationReport after = audit_degradation(faulted.geo, window, p);
  EXPECT_LT(after.nodes, before.nodes);
  EXPECT_LE(after.coverage_fraction, before.coverage_fraction);
  EXPECT_LT(after.coverage_fraction, 1.0);
  EXPECT_LE(after.giant_fraction, 1.0);
}

TEST(Degradation, EmptyAndTinyGraphs) {
  const Box window{{0.0, 0.0}, {4.0, 4.0}};
  const GeoGraph empty;
  const DegradationReport rep0 = audit_degradation(empty, window, {});
  EXPECT_EQ(rep0.nodes, 0u);
  EXPECT_EQ(rep0.giant_fraction, 0.0);
  GeoGraph one;
  one.points = {Vec2{1.0, 1.0}};
  one.graph = CsrGraph::from_edges(1, {});
  const DegradationReport rep1 = audit_degradation(one, window, {});
  EXPECT_EQ(rep1.giant_fraction, 1.0);
  EXPECT_EQ(rep1.mean_stretch, 0.0);  // no pair to sample
}

// --- epoch serving under churn ---------------------------------------------

/// A DynamicHng over a Poisson workload (the E16/E19 shape).
DynamicHng make_dyn(std::size_t n = 220, std::uint64_t seed = kSeed) {
  const Box window{{0.0, 0.0}, {9.0, 9.0}};
  const PointSet ps = poisson_point_set(window, 4.0, seed);
  std::vector<Vec2> pts(ps.points.begin(),
                        ps.points.begin() + static_cast<std::ptrdiff_t>(
                                                std::min(n, ps.points.size())));
  return DynamicHng(pts, HngParams{.promote_p = 0.25, .k = 3, .max_level = 48}, seed);
}

TEST(EpochEngine, JournalReplayMatchesMaintainerBitForBit) {
  DynamicHng dyn = make_dyn();
  EpochQueryEngine engine(dyn, EpochEngineParams{.num_landmarks = 8, .seed = kSeed});
  EXPECT_EQ(engine.generation(), dyn.overlay_generation());

  Rng rng = Rng::stream(kSeed, 0xc4u);
  for (int round = 0; round < 4; ++round) {
    for (int ev = 0; ev < 15; ++ev) {
      if (dyn.size() > 40 && rng.bernoulli(0.5)) {
        dyn.remove(static_cast<std::uint32_t>(rng.uniform_index(dyn.size())));
      } else {
        dyn.insert(Vec2{rng.uniform(0.0, 9.0), rng.uniform(0.0, 9.0)});
      }
    }
    const EpochRefreshStats stats = engine.refresh();
    EXPECT_FALSE(stats.resynced);
    EXPECT_GT(stats.deltas_applied, 0u);
    EXPECT_EQ(engine.generation(), dyn.overlay_generation());
    // The epoch snapshot is the maintainer's overlay, bit for bit — via
    // delta replay, never a rebuild.
    EXPECT_EQ(engine.graph().edge_list(), dyn.overlay().edge_list()) << "round " << round;
    ASSERT_EQ(engine.points().size(), dyn.points().size());
    for (std::size_t i = 0; i < dyn.points().size(); ++i) {
      EXPECT_EQ(engine.points()[i], dyn.points()[i]);
    }
  }
}

TEST(EpochEngine, ResyncsPastATrimmedJournal) {
  DynamicHng dyn = make_dyn(120);
  EpochQueryEngine engine(dyn, EpochEngineParams{.num_landmarks = 6, .seed = kSeed});
  Rng rng = Rng::stream(kSeed, 0xc5u);
  for (int ev = 0; ev < 10; ++ev) {
    dyn.insert(Vec2{rng.uniform(0.0, 9.0), rng.uniform(0.0, 9.0)});
  }
  dyn.trim_overlay_journal(dyn.overlay_generation());
  const EpochRefreshStats stats = engine.refresh();
  EXPECT_TRUE(stats.resynced);
  EXPECT_EQ(stats.deltas_applied, 0u);
  EXPECT_EQ(engine.graph().edge_list(), dyn.overlay().edge_list());
}

/// Assert the §2.9 verdict contract of one served batch against exact
/// Dijkstra on the engine's own epoch snapshot.
void expect_verdicts_sound(const EpochQueryEngine& engine, std::span<const Query> queries,
                           std::span<const double> out, std::span<const Verdict> verdicts) {
  const std::size_t n = engine.graph().num_vertices();
  DijkstraScratch scratch;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Query q = queries[i];
    if (verdicts[i] == Verdict::kStale) {
      EXPECT_TRUE(q.src >= n || q.dst >= n) << "query " << i;
      EXPECT_EQ(out[i], kInfCost);
      continue;
    }
    ASSERT_TRUE(q.src < n && q.dst < n) << "query " << i;
    const double exact =
        dijkstra_cost(engine.graph(), q.src, q.dst, engine.arc_weights(), scratch);
    switch (verdicts[i]) {
      case Verdict::kExact:
        // Bracket-exact answers (landmark == endpoint) may differ from the
        // fallback Dijkstra by summation order, hence NEAR not EQ.
        EXPECT_NEAR(out[i], exact, 1e-9 * (1.0 + exact)) << "query " << i;
        EXPECT_LT(out[i], kInfCost);
        break;
      case Verdict::kCertified:
        EXPECT_GE(out[i], exact - 1e-9) << "query " << i;
        EXPECT_LE(out[i], engine.max_stretch() * exact + 1e-9) << "query " << i;
        break;
      case Verdict::kDisconnected:
        EXPECT_EQ(exact, kInfCost) << "query " << i;
        EXPECT_EQ(out[i], kInfCost);
        break;
      case Verdict::kStale:
        break;
    }
  }
}

TEST(EpochEngine, ZeroUncertifiedWrongAnswersUnderChurn) {
  DynamicHng dyn = make_dyn();
  const std::size_t n_pre = dyn.size();
  EpochQueryEngine engine(
      dyn, EpochEngineParams{.num_landmarks = 8,
                             .max_stretch = 1.25,
                             .seed = kSeed,
                             .selection = LandmarkSelection::kFarthestPoint});
  // Heavy churn: remove a third of the slots (descending, so planned slots
  // stay valid), then refresh.
  Rng rng = Rng::stream(kSeed, 0xc6u);
  for (std::uint32_t slot = static_cast<std::uint32_t>(n_pre); slot-- > 0;) {
    if (slot % 3 == 0) dyn.remove(slot);
  }
  const EpochRefreshStats stats = engine.refresh();
  EXPECT_GT(stats.landmarks_demoted + stats.landmarks_recruited, 0u);

  // Queries drawn over the PRE-churn id space: a third of the ids are now
  // out of range and must come back stale, not resolved to other nodes.
  std::vector<Query> queries(300);
  for (auto& q : queries) {
    q.src = static_cast<std::uint32_t>(rng.uniform_index(n_pre));
    q.dst = static_cast<std::uint32_t>(rng.uniform_index(n_pre));
  }
  std::vector<double> out(queries.size());
  std::vector<Verdict> verdicts(queries.size());
  const EpochServeStats served = engine.serve(queries, out, verdicts);
  EXPECT_EQ(served.queries, queries.size());
  EXPECT_EQ(served.exact + served.certified + served.disconnected + served.stale,
            served.queries);
  EXPECT_GT(served.stale, 0u);
  EXPECT_EQ(served.generation, engine.generation());
  expect_verdicts_sound(engine, queries, out, verdicts);
}

TEST(EpochEngine, ServeBitIdenticalAcrossThreadCounts) {
  DynamicHng dyn = make_dyn(150);
  EpochQueryEngine engine(dyn, EpochEngineParams{.num_landmarks = 6, .seed = kSeed});
  Rng rng = Rng::stream(kSeed, 0xc7u);
  std::vector<Query> queries(200);
  for (auto& q : queries) {
    q.src = static_cast<std::uint32_t>(rng.uniform_index(dyn.size() + 5));  // a few stale
    q.dst = static_cast<std::uint32_t>(rng.uniform_index(dyn.size() + 5));
  }
  set_thread_count(1);
  std::vector<double> base(queries.size());
  std::vector<Verdict> base_v(queries.size());
  engine.serve(queries, base, base_v);
  for (const unsigned threads : {2u, 8u}) {
    set_thread_count(threads);
    std::vector<double> got(queries.size());
    std::vector<Verdict> got_v(queries.size());
    engine.serve(queries, got, got_v);
    EXPECT_EQ(got, base) << threads << " threads";
    EXPECT_TRUE(std::equal(got_v.begin(), got_v.end(), base_v.begin())) << threads << " threads";
  }
  set_thread_count(0);
}

TEST(EpochEngine, DrainedToEmptyEveryAnswerIsStale) {
  DynamicHng dyn = make_dyn(60);
  EpochQueryEngine engine(dyn, EpochEngineParams{.num_landmarks = 4, .seed = kSeed});
  const std::size_t n_pre = dyn.size();
  while (dyn.size() > 0) dyn.remove(static_cast<std::uint32_t>(dyn.size() - 1));
  const EpochRefreshStats stats = engine.refresh();
  EXPECT_EQ(engine.graph().num_vertices(), 0u);
  EXPECT_EQ(stats.landmarks_recruited, 0u);
  std::vector<Query> queries(20);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries[i] = Query{static_cast<std::uint32_t>(i % n_pre),
                       static_cast<std::uint32_t>((i * 7) % n_pre)};
  }
  std::vector<double> out(queries.size());
  std::vector<Verdict> verdicts(queries.size());
  const EpochServeStats served = engine.serve(queries, out, verdicts);
  EXPECT_EQ(served.stale, queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(verdicts[i], Verdict::kStale);
    EXPECT_EQ(out[i], kInfCost);
  }
}

TEST(EpochEngine, AllDisconnectedBatchIsExplicit) {
  // A blackout that severs the deployment into two far-apart UDG clusters:
  // every cross-cluster query must come back as an infinite distance —
  // explicitly, never as some certified finite guess. The plain
  // QueryEngine certifies the disconnection from the oracle bracket alone
  // ({inf, inf} bounds); the same batch through `hop_distances` agrees.
  const GeoGraph geo = make_udg(12.0);
  FaultPlan plan;
  plan.blackouts.push_back(Box{{5.0, -1.0}, {7.0, 13.0}});  // vertical cut
  const FaultedGraph faulted = apply_faults(geo, FaultInjector{plan});
  const Components comps = connected_components(faulted.geo.graph);
  ASSERT_GT(comps.count(), 1u);

  // Queries crossing the two largest components only (landmarks land in
  // them, so the bracket proves every disconnection).
  std::uint32_t second = comps.largest == 0 ? 1 : 0;
  for (std::uint32_t c = 0; c < comps.count(); ++c) {
    if (c != comps.largest && comps.size[c] > comps.size[second]) second = c;
  }
  std::vector<std::uint32_t> left;
  std::vector<std::uint32_t> right;
  for (std::uint32_t v = 0; v < faulted.geo.graph.num_vertices(); ++v) {
    if (comps.label[v] == comps.largest) left.push_back(v);
    if (comps.label[v] == second) right.push_back(v);
  }
  ASSERT_FALSE(left.empty());
  ASSERT_FALSE(right.empty());
  std::vector<Query> queries;
  for (std::size_t i = 0; i < 40; ++i) {
    queries.push_back(Query{left[(i * 13) % left.size()], right[(i * 7) % right.size()]});
  }
  QueryEngine plain(faulted.geo.graph, faulted.geo.length_arc_weights(),
                    QueryEngineParams{.num_landmarks = 6, .seed = kSeed});
  std::vector<double> out(queries.size());
  const ServeStats stats = plain.estimate_distances(queries, out);
  EXPECT_EQ(stats.certified, queries.size());  // disconnection certifies exactly
  EXPECT_EQ(stats.exact, 0u);
  for (std::size_t i = 0; i < queries.size(); ++i) EXPECT_EQ(out[i], kInfCost);
  std::vector<std::uint32_t> hops(queries.size());
  plain.hop_distances(queries, hops);
  for (std::size_t i = 0; i < queries.size(); ++i) EXPECT_EQ(hops[i], kUnreachable);
}

}  // namespace
}  // namespace sens
