// Tests for sens/tiles: tiling/coupling map, the two tile specs, goodness
// predicates, and the P(good) estimators behind Theorems 2.2 / 2.4.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "sens/rng/rng.hpp"
#include "sens/tiles/classify.hpp"
#include "sens/tiles/good_prob.hpp"
#include "sens/tiles/nn_tile.hpp"
#include "sens/tiles/tiling.hpp"
#include "sens/tiles/udg_tile.hpp"

namespace sens {
namespace {

TEST(TilingTest, TileOfAndBox) {
  const Tiling t(2.0);
  EXPECT_EQ(t.tile_of({0.5, 0.5}), (TileCoord{0, 0}));
  EXPECT_EQ(t.tile_of({-0.5, 3.9}), (TileCoord{-1, 1}));
  const Box b = t.tile_box({1, -1});
  EXPECT_EQ(b.lo, Vec2(2.0, -2.0));
  EXPECT_EQ(b.hi, Vec2(4.0, 0.0));
  EXPECT_EQ(t.tile_center({0, 0}), Vec2(1.0, 1.0));
  EXPECT_EQ(t.local({1.5, 0.5}, {0, 0}), Vec2(0.5, -0.5));
}

TEST(TileWindowTest, PhiRoundTrip) {
  const TileWindow w{-3, 2, 8, 6};
  EXPECT_TRUE(w.contains({-3, 2}));
  EXPECT_TRUE(w.contains({4, 7}));
  EXPECT_FALSE(w.contains({5, 2}));
  EXPECT_FALSE(w.contains({-4, 2}));
  const TileCoord t{1, 5};
  EXPECT_EQ(w.phi_inverse(w.phi(t)), t);
  EXPECT_EQ(w.phi(t), (Site{4, 3}));
  EXPECT_EQ(w.tile_count(), 48u);
  EXPECT_EQ(w.index({-3, 2}), 0u);
  const Box b = w.bounds(Tiling(1.5));
  EXPECT_DOUBLE_EQ(b.lo.x, -4.5);
  EXPECT_DOUBLE_EQ(b.width(), 12.0);
}

TEST(UdgSpec, PresetsAndGuarantees) {
  const UdgTileSpec paper = UdgTileSpec::paper();
  EXPECT_DOUBLE_EQ(paper.side, 4.0 / 3.0);
  EXPECT_FALSE(paper.guarantees_paths());  // DESIGN.md 1.1

  const UdgTileSpec strict = UdgTileSpec::strict();
  EXPECT_TRUE(strict.guarantees_paths());
  EXPECT_GT(strict.relay_region_area(), 0.0);
}

TEST(UdgSpec, RegionMembership) {
  const UdgTileSpec s = UdgTileSpec::strict();
  EXPECT_TRUE(s.in_rep_region({0.0, 0.0}));
  EXPECT_TRUE(s.in_rep_region({s.rep_radius, 0.0}));
  EXPECT_FALSE(s.in_rep_region({s.rep_radius + 0.01, 0.0}));
  // A point between C0 and the right edge, inside both reach disks.
  const Vec2 relay_pt{(s.side - s.reach + s.reach) / 2.0, 0.0};  // = side/2 area midpoint
  EXPECT_TRUE(s.in_relay_region({0.40, 0.0}, 0));
  EXPECT_FALSE(s.in_relay_region({0.40, 0.0}, 1));  // wrong direction
  EXPECT_FALSE(s.in_relay_region({0.0, 0.0}, 0));   // inside C0
  EXPECT_FALSE(s.in_relay_region({s.side, 0.0}, 0));  // outside tile
  (void)relay_pt;
}

TEST(UdgSpec, RegionMaskAndGoodness) {
  const UdgTileSpec s = UdgTileSpec::strict();
  EXPECT_EQ(udg_region_mask(s, {0.0, 0.0}), 1u);
  EXPECT_EQ(udg_region_mask(s, {0.40, 0.0}) & 0b10u, 0b10u);
  // One point per region makes the tile good.
  const std::vector<Vec2> pts{{0.0, 0.0}, {0.40, 0.0}, {-0.40, 0.0}, {0.0, 0.40}, {0.0, -0.40}};
  EXPECT_TRUE(udg_tile_good(s, pts));
  // Remove one relay -> bad.
  const std::vector<Vec2> missing{{0.0, 0.0}, {0.40, 0.0}, {-0.40, 0.0}, {0.0, 0.40}};
  EXPECT_FALSE(udg_tile_good(s, missing));
  EXPECT_FALSE(udg_tile_good(s, {}));
}

TEST(UdgSpec, CornerPointsServeTwoRelays) {
  const UdgTileSpec s = UdgTileSpec::strict();
  // A point in the overlap of the +x and +y lenses (DESIGN/paper remark).
  const Vec2 p{0.30, 0.30};
  if (s.in_relay_region(p, 0)) {
    EXPECT_TRUE(s.in_relay_region(p, 2));
  }
}

TEST(UdgSpec, AreasSumBelowTileArea) {
  for (const auto& s : {UdgTileSpec::paper(), UdgTileSpec::strict()}) {
    EXPECT_GT(s.rep_region_area(), 0.0);
    EXPECT_NEAR(s.rep_region_area(), std::numbers::pi * s.rep_radius * s.rep_radius, 1e-3);
    EXPECT_LT(s.rep_region_area() + 4.0 * s.relay_region_area(), s.side * s.side * 1.2);
  }
}

TEST(UdgSpec, StrictWorstCaseEdgeBound) {
  // Brute-force the Claim 2.1 guarantee: sampled rep/relay placements never
  // exceed the link radius for the strict spec.
  const UdgTileSpec s = UdgTileSpec::strict();
  Rng rng(41);
  for (int t = 0; t < 20000; ++t) {
    const Vec2 rep = Vec2{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)} * s.rep_radius;
    if (!s.in_rep_region(rep)) continue;
    const Vec2 relay{rng.uniform(0.0, s.side / 2.0), rng.uniform(-s.side / 2.0, s.side / 2.0)};
    if (!s.in_relay_region(relay, 0)) continue;
    EXPECT_LE(dist(rep, relay), s.link_radius + 1e-12);
    // Facing relay in the right neighbor (local coords of the neighbor tile).
    const Vec2 relay2{rng.uniform(-s.side / 2.0, 0.0), rng.uniform(-s.side / 2.0, s.side / 2.0)};
    if (!s.in_relay_region(relay2, 1)) continue;
    const Vec2 relay2_abs = relay2 + Vec2{s.side, 0.0};
    EXPECT_LE(dist(relay, relay2_abs), s.link_radius + 1e-12);
  }
}

TEST(NnSpec, GeometrySanity) {
  const NnTileSpec s = NnTileSpec::paper();
  EXPECT_DOUBLE_EQ(s.a(), 0.893);
  EXPECT_EQ(s.k(), 188u);
  EXPECT_EQ(s.max_occupancy(), 94u);
  EXPECT_DOUBLE_EQ(s.side(), 8.93);
  EXPECT_NEAR(s.c_region_area(), std::numbers::pi * 0.893 * 0.893, 1e-12);
  EXPECT_GT(s.e_region_area(), s.c_region_area());  // E regions are larger
  // E region lies strictly between C0 and the C disk, inside the tile.
  const Box bb = s.e_polygon(0).bounding_box();
  EXPECT_GT(bb.lo.x, 0.0);
  EXPECT_LT(bb.hi.x, s.side() / 2.0);
}

TEST(NnSpec, RegionMembershipAndMask) {
  const NnTileSpec s = NnTileSpec::paper();
  const double a = s.a();
  EXPECT_TRUE(s.in_c0({0.0, 0.0}));
  EXPECT_TRUE(s.in_c_region({4.0 * a, 0.0}, 0));
  EXPECT_TRUE(s.in_c_region({-4.0 * a, 0.5 * a}, 1));
  EXPECT_FALSE(s.in_c_region({4.0 * a, 0.0}, 2));
  EXPECT_TRUE(s.in_e_region({2.0 * a, 0.0}, 0));
  EXPECT_TRUE(s.in_e_region({0.0, 2.0 * a}, 2));
  EXPECT_FALSE(s.in_e_region({2.0 * a, 0.0}, 1));
  EXPECT_EQ(s.region_mask({0.0, 0.0}) & 1u, 1u);
  EXPECT_EQ(s.region_mask({2.0 * a, 0.0}) & (1u << 5), 1u << 5);
  EXPECT_EQ(s.region_mask({4.0 * a, 0.0}) & (1u << 1), 1u << 1);
}

TEST(NnSpec, PolygonAgreesWithExactOracle) {
  const NnTileSpec s = NnTileSpec::paper();
  Rng rng(71);
  int checked = 0, disagreements = 0;
  for (int t = 0; t < 800; ++t) {
    const Vec2 p{rng.uniform(-s.side() / 2, s.side() / 2),
                 rng.uniform(-s.side() / 2, s.side() / 2)};
    const bool poly = s.in_e_region(p, 0);
    const bool exact = s.in_e_region_exact(p, 0, 1e-6);
    // Points near the boundary may flip; count real disagreements away from it.
    if (poly != exact) ++disagreements;
    ++checked;
  }
  EXPECT_GT(checked, 0);
  EXPECT_LE(disagreements, checked / 50);  // <= 2% boundary flips
}

TEST(NnSpec, SymmetryUnderRotation) {
  const NnTileSpec s = NnTileSpec::paper();
  // E regions are 90-degree rotations of each other.
  const Vec2 p{1.8 * s.a(), 0.4 * s.a()};
  const Vec2 rot{-p.y, p.x};  // +90 degrees: +x direction -> +y direction
  EXPECT_EQ(s.in_e_region(p, 0), s.in_e_region(rot, 2));
  EXPECT_NEAR(s.e_polygon(0).area(), s.e_polygon(2).area(), 1e-3);
  EXPECT_NEAR(s.e_polygon(1).area(), s.e_polygon(3).area(), 1e-3);
}

TEST(NnSpec, GoodnessRequiresCapAndOccupancy) {
  const NnTileSpec s(0.9, 20);  // cap = 10
  const double a = 0.9;
  std::vector<Vec2> pts{
      {0.0, 0.0},                        // C0
      {4.0 * a, 0.0},  {-4.0 * a, 0.0},  // Cr, Cl
      {0.0, 4.0 * a},  {0.0, -4.0 * a},  // Ct, Cb
      {2.0 * a, 0.0},  {-2.0 * a, 0.0},  // Er, El
      {0.0, 2.0 * a},  {0.0, -2.0 * a},  // Et, Eb
  };
  EXPECT_TRUE(s.good(pts));
  EXPECT_TRUE(s.regions_occupied(pts));
  // Blow the cap with filler points in no particular region.
  std::vector<Vec2> crowded = pts;
  for (int i = 0; i < 3; ++i) crowded.push_back({3.3 * a, 3.3 * a});
  EXPECT_GT(crowded.size(), s.max_occupancy());
  EXPECT_FALSE(s.good(crowded));
  EXPECT_TRUE(s.regions_occupied(crowded));
  // Remove a required region -> bad even under the cap.
  std::vector<Vec2> missing(pts.begin(), pts.end() - 1);
  EXPECT_FALSE(s.good(missing));
}

TEST(NnSpec, InvalidParamsThrow) {
  EXPECT_THROW(NnTileSpec(0.0, 10), std::invalid_argument);
  EXPECT_THROW(NnTileSpec(1.0, 0), std::invalid_argument);
}

TEST(NnTilePolygonTable, BakedTableMatchesFreshComputation) {
  // The baked table in nn_tile_polygons.inc seeds the spec's polygon cache
  // so every fresh process skips ~0.7 s of ray casting. Recompute the paper
  // geometry from the disk-family oracle and require bit-identical vertices:
  // if the region geometry code changes, this fails and the table must be
  // regenerated (tools/gen_nn_polygons, see its header for the command).
  const NnTileSpec cached = NnTileSpec::paper();  // baked-table hit
  const auto fresh = compute_nn_e_polygons(cached.a());
  for (int dir = 0; dir < 4; ++dir) {
    const auto& got = cached.e_polygon(dir).vertices();
    const auto& want = fresh[static_cast<std::size_t>(dir)].vertices();
    ASSERT_EQ(got.size(), want.size()) << "dir " << dir;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].x, want[i].x) << "dir " << dir << " vertex " << i;
      ASSERT_EQ(got[i].y, want[i].y) << "dir " << dir << " vertex " << i;
    }
  }
}

// A larger region-disk radius relaxes every disk constraint, so the relay
// regions grow with `a`. 0.95 is served from the baked table like the other
// hot values — construction must be instant, not a 0.7 s polygonization.
TEST(NnSpec, ERegionGrowsWithDiskRadius) {
  const NnTileSpec narrow(0.893, 188);
  const NnTileSpec wide(0.95, 188);
  EXPECT_GT(wide.e_region_area(), narrow.e_region_area());
  EXPECT_GT(wide.c_region_area(), narrow.c_region_area());
  EXPECT_DOUBLE_EQ(wide.side(), 9.5);
}

TEST(NnTilePolygonTable, BakedTableCoversEveryTestedA) {
  // Every `a` the test suites construct repeatedly must be served from the
  // baked table (exact double match — the cache keys on the literal). When
  // this fails, add the new value to tools/gen_nn_polygons' default set and
  // regenerate nn_tile_polygons.inc (command in the tool's header).
  const std::vector<double> baked = baked_nn_polygon_a_values();
  for (const double a : {0.893, 0.9, 0.95}) {
    EXPECT_TRUE(std::find(baked.begin(), baked.end(), a) != baked.end())
        << "a = " << a << " is constructed by tests but not baked";
  }
}

TEST(GoodProb, UdgMonotoneInLambda) {
  const UdgTileSpec s = UdgTileSpec::paper();
  const double p1 = udg_good_probability(s, 4.0, 3000, 2).estimate();
  const double p2 = udg_good_probability(s, 8.0, 3000, 2).estimate();
  const double p3 = udg_good_probability(s, 16.0, 3000, 2).estimate();
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
}

TEST(GoodProb, UdgThresholdBracketsTarget) {
  const UdgTileSpec s = UdgTileSpec::paper();
  const double lambda_s = find_udg_lambda_threshold(s, 0.593, 2500, 7, 0.5, 64.0, 14);
  const double below = udg_good_probability(s, lambda_s * 0.8, 4000, 11).estimate();
  const double above = udg_good_probability(s, lambda_s * 1.2, 4000, 12).estimate();
  EXPECT_LT(below, 0.593);
  EXPECT_GT(above, 0.593);
}

TEST(GoodProb, NnCurveMonotoneInK) {
  const NnGoodCurve curve(0.893, 2500, 3);
  double prev = -1.0;
  for (std::size_t k = 80; k <= 280; k += 20) {
    const double p = curve.probability_at(k).estimate();
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_LE(prev, curve.occupancy_only().estimate() + 1e-12);
}

TEST(GoodProb, NnThresholdNearPaperValue) {
  // Theorem 2.4 reproduction: measured k_s at a = 0.893 should be in the
  // paper's neighborhood (paper: 188).
  const NnGoodCurve curve(0.893, 4000, 9);
  const std::size_t ks = curve.threshold_k(0.593);
  EXPECT_GT(ks, 150u);
  EXPECT_LT(ks, 215u);
}

TEST(GoodProb, NnThresholdZeroWhenUnreachable) {
  // Tiny tiles: regions occupied almost never -> no k reaches the target.
  const NnGoodCurve curve(0.15, 400, 5);
  EXPECT_EQ(curve.threshold_k(0.99), 0u);
}

TEST(ClassifyUdg, HandCraftedTile) {
  const UdgTileSpec s = UdgTileSpec::strict();
  const TileWindow w{0, 0, 2, 1};
  // Tile (0,0) center is (side/2, side/2); place the 5 region points there.
  const Vec2 c{s.side / 2.0, s.side / 2.0};
  std::vector<Vec2> pts{c,
                        c + Vec2{0.40, 0.0},
                        c + Vec2{-0.40, 0.0},
                        c + Vec2{0.0, 0.40},
                        c + Vec2{0.0, -0.40}};
  const UdgClassification cls = classify_udg(s, pts, w);
  EXPECT_EQ(cls.good[0], 1);
  EXPECT_EQ(cls.good[1], 0);
  EXPECT_EQ(cls.occupancy[0], 5u);
  EXPECT_EQ(cls.nodes[0].rep, 0u);
  EXPECT_EQ(cls.nodes[0].relay[0], 1u);
  EXPECT_EQ(cls.nodes[0].relay[1], 2u);
  EXPECT_EQ(cls.good_count(), 1u);
  const SiteGrid grid = cls.site_grid();
  EXPECT_TRUE(grid.open({0, 0}));
  EXPECT_FALSE(grid.open({1, 0}));
}

TEST(ClassifyUdg, ElectionPicksSmallestIndex) {
  const UdgTileSpec s = UdgTileSpec::strict();
  const TileWindow w{0, 0, 1, 1};
  const Vec2 c{s.side / 2.0, s.side / 2.0};
  // Two candidates in C0; the first index wins.
  std::vector<Vec2> pts{c + Vec2{0.05, 0.0}, c + Vec2{0.0, 0.05}};
  const UdgClassification cls = classify_udg(s, pts, w);
  EXPECT_EQ(cls.nodes[0].rep, 0u);
}

TEST(ClassifyNn, OccupancyCapEnforced) {
  const NnTileSpec s(0.9, 20);  // cap 10
  const TileWindow w{0, 0, 1, 1};
  const double a = 0.9;
  const Vec2 c{s.side() / 2.0, s.side() / 2.0};
  std::vector<Vec2> pts;
  for (const Vec2 local : {Vec2{0, 0}, Vec2{4 * a, 0}, Vec2{-4 * a, 0}, Vec2{0, 4 * a},
                           Vec2{0, -4 * a}, Vec2{2 * a, 0}, Vec2{-2 * a, 0}, Vec2{0, 2 * a},
                           Vec2{0, -2 * a}})
    pts.push_back(c + local);
  NnClassification cls = classify_nn(s, pts, w);
  EXPECT_EQ(cls.good[0], 1);
  EXPECT_EQ(cls.nodes[0].rep, 0u);
  // Exceed the cap.
  for (int i = 0; i < 4; ++i) pts.push_back(c + Vec2{3.4 * a, 3.4 * a});
  cls = classify_nn(s, pts, w);
  EXPECT_EQ(cls.good[0], 0);
  EXPECT_EQ(cls.occupancy[0], 13u);
}

TEST(ClassifyTiles, PointsOutsideWindowIgnored) {
  const UdgTileSpec s = UdgTileSpec::strict();
  const TileWindow w{0, 0, 1, 1};
  std::vector<Vec2> pts{{-0.1, 0.3}, {5.0, 5.0}};
  const UdgClassification cls = classify_udg(s, pts, w);
  EXPECT_EQ(cls.occupancy[0], 0u);
}

}  // namespace
}  // namespace sens
