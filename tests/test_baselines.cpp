// Tests for the topology-control baselines: Gabriel, RNG, Yao.
#include <gtest/gtest.h>

#include "sens/baselines/spanners.hpp"
#include "sens/geograph/point_set.hpp"
#include "sens/geograph/udg.hpp"
#include "sens/graph/components.hpp"
#include "sens/support/parallel.hpp"

namespace sens {
namespace {

GeoGraph dense_udg(std::uint64_t seed, double lambda = 6.0, double extent = 12.0) {
  const Box w{{0.0, 0.0}, {extent, extent}};
  const PointSet ps = poisson_point_set(w, lambda, seed);
  return build_udg(ps.points, w, 1.0);
}

class SpannerSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpannerSeedTest, SubgraphChainRngInGabrielInUdg) {
  const GeoGraph udg = dense_udg(GetParam());
  const GeoGraph gg = gabriel_graph(udg);
  const GeoGraph rng = relative_neighborhood_graph(udg);
  // Classic containment: RNG ⊆ GG ⊆ UDG.
  for (const auto& [u, v] : gg.graph.edge_list()) EXPECT_TRUE(udg.graph.has_edge(u, v));
  for (const auto& [u, v] : rng.graph.edge_list()) EXPECT_TRUE(gg.graph.has_edge(u, v));
  EXPECT_LE(rng.graph.num_edges(), gg.graph.num_edges());
  EXPECT_LE(gg.graph.num_edges(), udg.graph.num_edges());
  EXPECT_LT(gg.graph.num_edges(), udg.graph.num_edges());  // strictly sparser when dense
}

TEST_P(SpannerSeedTest, GabrielAndRngPreserveComponents) {
  const GeoGraph udg = dense_udg(GetParam());
  const Components cu = connected_components(udg.graph);
  const Components cg = connected_components(gabriel_graph(udg).graph);
  const Components cr = connected_components(relative_neighborhood_graph(udg).graph);
  // GG and RNG contain the (unit-capped) MST of each component.
  EXPECT_EQ(cg.count(), cu.count());
  EXPECT_EQ(cr.count(), cu.count());
  EXPECT_EQ(cg.largest_size(), cu.largest_size());
  EXPECT_EQ(cr.largest_size(), cu.largest_size());
}

TEST_P(SpannerSeedTest, YaoPreservesConnectivityWithSixCones) {
  const GeoGraph udg = dense_udg(GetParam());
  const GeoGraph yao = yao_graph(udg, 6);
  const Components cu = connected_components(udg.graph);
  const Components cy = connected_components(yao.graph);
  EXPECT_EQ(cy.count(), cu.count());
  for (const auto& [u, v] : yao.graph.edge_list()) EXPECT_TRUE(udg.graph.has_edge(u, v));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpannerSeedTest, ::testing::Range<std::uint64_t>(1, 7));

// The chunk-parallel edge filters (DESIGN.md §2.3) must produce the same
// spanner at every thread count.
TEST(Spanners, BitIdenticalAcrossThreadCounts) {
  const GeoGraph udg = dense_udg(99);
  set_thread_count(1);
  const auto gg1 = gabriel_graph(udg).graph.edge_list();
  const auto rng1 = relative_neighborhood_graph(udg).graph.edge_list();
  const auto yao1 = yao_graph(udg, 6).graph.edge_list();
  for (const unsigned threads : {2u, 8u}) {
    set_thread_count(threads);
    EXPECT_EQ(gabriel_graph(udg).graph.edge_list(), gg1) << threads << " threads";
    EXPECT_EQ(relative_neighborhood_graph(udg).graph.edge_list(), rng1) << threads << " threads";
    EXPECT_EQ(yao_graph(udg, 6).graph.edge_list(), yao1) << threads << " threads";
  }
  set_thread_count(0);
}

TEST(Gabriel, RejectsWitnessedEdge) {
  // Midpoint witness kills the long edge.
  std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}, {0.5, 0.01}};
  const GeoGraph udg = build_udg(pts, Box{{-1, -1}, {2, 1}}, 1.0);
  const GeoGraph gg = gabriel_graph(udg);
  EXPECT_FALSE(gg.graph.has_edge(0, 1));
  EXPECT_TRUE(gg.graph.has_edge(0, 2));
  EXPECT_TRUE(gg.graph.has_edge(2, 1));
}

TEST(Gabriel, KeepsUnwitnessedEdge) {
  std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}, {0.5, 0.9}};  // witness outside diameter disk
  const GeoGraph udg = build_udg(pts, Box{{-1, -1}, {2, 2}}, 1.0);
  EXPECT_TRUE(gabriel_graph(udg).graph.has_edge(0, 1));
}

TEST(Rng, LuneWitnessRemovesEdge) {
  // w = (0.5, 0.75) is in the lune of (u, v) (within d(u,v) = 1 of both)
  // but outside the diameter disk (0.75 > 0.5 from the midpoint), so RNG
  // drops the edge while Gabriel keeps it.
  std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}, {0.5, 0.75}};
  const GeoGraph udg = build_udg(pts, Box{{-1, -1}, {2, 1}}, 1.0);
  const GeoGraph rng = relative_neighborhood_graph(udg);
  EXPECT_FALSE(rng.graph.has_edge(0, 1));
  EXPECT_TRUE(gabriel_graph(udg).graph.has_edge(0, 1));
}

TEST(Yao, DegreeBoundAndNearestKept) {
  const GeoGraph udg = dense_udg(3);
  const GeoGraph yao = yao_graph(udg, 8);
  // Only the out-degree is bounded by the cone count (in-degree is not:
  // many nodes may pick the same target), so the checkable invariants are
  // the total edge budget n * cones and the resulting mean degree.
  EXPECT_LE(yao.graph.num_edges(), yao.graph.num_vertices() * 8u);
  EXPECT_LE(yao.graph.mean_degree(), 16.0);
  // The globally nearest UDG neighbor of each vertex always survives.
  for (std::uint32_t v = 0; v < udg.graph.num_vertices(); ++v) {
    const auto nbrs = udg.graph.neighbors(v);
    if (nbrs.empty()) continue;
    std::uint32_t best = nbrs.front();
    for (const auto u : nbrs)
      if (dist2(udg.points[v], udg.points[u]) < dist2(udg.points[v], udg.points[best])) best = u;
    EXPECT_TRUE(yao.graph.has_edge(v, best));
  }
  EXPECT_THROW((void)yao_graph(udg, 0), std::invalid_argument);
}

TEST(Spanners, SparsityOrdering) {
  const GeoGraph udg = dense_udg(9, 8.0);
  const double udg_deg = udg.graph.mean_degree();
  const double gg_deg = gabriel_graph(udg).graph.mean_degree();
  const double rng_deg = relative_neighborhood_graph(udg).graph.mean_degree();
  EXPECT_LT(gg_deg, udg_deg);
  EXPECT_LT(rng_deg, gg_deg);
  // Literature: E[deg_GG] = 4, E[deg_RNG] ~ 2.56 for Poisson inputs (the
  // unit cap only removes long edges). Loose brackets.
  EXPECT_NEAR(gg_deg, 4.0, 1.0);
  EXPECT_NEAR(rng_deg, 2.56, 0.8);
}

}  // namespace
}  // namespace sens
