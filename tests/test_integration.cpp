// Cross-module integration tests: the tile coupling feeding the percolation
// machinery, end-to-end consistency between the two SENS constructions and
// their analytics, and the router/mesh-router correspondence.
#include <gtest/gtest.h>

#include <cmath>

#include "sens/core/coverage.hpp"
#include "sens/core/metrics.hpp"
#include "sens/core/sens_router.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/perc/clusters.hpp"
#include "sens/perc/crossing.hpp"
#include "sens/perc/mesh_router.hpp"
#include "sens/tiles/good_prob.hpp"

namespace sens {
namespace {

TEST(Coupling, CoupledGridBehavesLikeBernoulliPercolation) {
  // The coupled goodness grid of a large window should cross left-right
  // when P(good) is well above p_c, and not when well below.
  const UdgTileSpec spec = UdgTileSpec::strict();
  const UdgSensResult super = build_udg_sens(spec, 30.0, 48, 48, 100);  // P(good) ~ 0.77
  EXPECT_TRUE(has_lr_crossing(super.overlay.sites));
  const UdgSensResult sub = build_udg_sens(spec, 12.0, 48, 48, 100);  // P(good) ~ 0.25
  EXPECT_FALSE(has_lr_crossing(sub.overlay.sites));
}

TEST(Coupling, OpenFractionTracksGoodProbability) {
  const UdgTileSpec spec = UdgTileSpec::strict();
  const double lambda = 22.0;
  const UdgSensResult r = build_udg_sens(spec, lambda, 40, 40, 55);
  const double frac = r.overlay.sites.open_fraction();
  const double mc = udg_good_probability(spec, lambda, 6000, 77).estimate();
  EXPECT_NEAR(frac, mc, 0.06);
}

TEST(Coupling, GiantClusterRepsBelongToOneOverlayComponent) {
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), 25.0, 40, 40, 4);
  const ClusterLabels labels(r.overlay.sites);
  std::uint32_t comp = 0xffffffffu;
  std::size_t checked = 0;
  for (std::size_t i = 0; i < r.overlay.sites.num_sites(); ++i) {
    const Site s = r.overlay.sites.site_at(i);
    if (!labels.in_largest(s)) continue;
    const std::uint32_t rep = r.overlay.rep_of(s);
    ASSERT_NE(rep, Overlay::no_node());
    if (comp == 0xffffffffu) comp = r.overlay.comps.label[rep];
    EXPECT_EQ(r.overlay.comps.label[rep], comp);
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

TEST(Coupling, GiantRepSitesEqualsCoupledGiantCluster) {
  // The overlay giant component contains exactly the reps of the coupled
  // giant cluster (plus their relays) when the spec guarantees edges.
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), 25.0, 32, 32, 8);
  const ClusterLabels labels(r.overlay.sites);
  const auto giant_sites = r.overlay.giant_rep_sites();
  std::size_t cluster_sites = 0;
  for (std::size_t i = 0; i < r.overlay.sites.num_sites(); ++i)
    if (labels.in_largest(r.overlay.sites.site_at(i))) ++cluster_sites;
  EXPECT_EQ(giant_sites.size(), cluster_sites);
}

TEST(RouterCorrespondence, SensRouteFollowsMeshRoute) {
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), 25.0, 32, 32, 15);
  const auto reps = r.overlay.giant_rep_sites();
  ASSERT_GE(reps.size(), 2u);
  const Site a = reps.front();
  const Site b = reps.back();
  const MeshRouter mesh(r.overlay.sites);
  const SensRouter sens(r.overlay);
  const MeshRoute mr = mesh.route(a, b);
  const SensRoute sr = sens.route(a, b);
  ASSERT_TRUE(mr.success);
  ASSERT_TRUE(sr.success);
  EXPECT_EQ(sr.tile_hops, mr.hops());
  EXPECT_EQ(sr.probes, mr.probes);
  // Node path visits the rep of every mesh-route tile, in order.
  std::size_t cursor = 0;
  for (const Site s : mr.path) {
    const std::uint32_t rep = r.overlay.rep_of(s);
    bool found = false;
    for (; cursor < sr.node_path.size(); ++cursor) {
      if (sr.node_path[cursor] == rep) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "rep of mesh tile not on node path in order";
  }
}

TEST(CoverageTheorem, DecayRateSharperAtHigherDensity) {
  // Section 3.2's monotonicity claim: larger lambda => sharper exponential
  // decay of the empty-block probability.
  const UdgTileSpec spec = UdgTileSpec::strict();
  const int sizes[] = {1, 2, 3, 4};
  const UdgSensResult lo = build_udg_sens(spec, 21.0, 56, 56, 31);
  const UdgSensResult hi = build_udg_sens(spec, 30.0, 56, 56, 31);
  const auto p_lo = empty_block_probability(lo.overlay, sizes);
  const auto p_hi = empty_block_probability(hi.overlay, sizes);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_LE(p_hi[i], p_lo[i] + 1e-12);
  EXPECT_LT(p_hi[1], p_lo[1]);
}

TEST(StretchTheorem, HopsScaleLinearlyWithLatticeDistance) {
  // Theorem 3.2: overlay distance is at most a constant times the lattice
  // distance, w.h.p. — the hop/lattice ratio should concentrate.
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), 25.0, 48, 48, 77);
  const auto samples = sample_overlay_stretch(r.overlay, 120, 9);
  ASSERT_GT(samples.size(), 50u);
  double worst = 0.0;
  for (const auto& s : samples) {
    if (s.lattice < 5) continue;  // skip short-range noise
    worst = std::max(worst, s.hop_per_lattice());
  }
  EXPECT_GT(worst, 0.0);
  // Each lattice step costs ~3 overlay hops (rep -> relay -> relay -> rep)
  // and BFS detours around bad tiles inflate the worst case further; a
  // small-constant ceiling of 15 is the qualitative claim under test.
  EXPECT_LT(worst, 15.0) << "hop stretch should be a small constant";
}

TEST(EndToEnd, RebuildIsDeterministic) {
  const UdgSensResult a = build_udg_sens(UdgTileSpec::strict(), 25.0, 16, 16, 123);
  const UdgSensResult b = build_udg_sens(UdgTileSpec::strict(), 25.0, 16, 16, 123);
  EXPECT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.classification.good, b.classification.good);
  EXPECT_EQ(a.overlay.geo.graph.num_edges(), b.overlay.geo.graph.num_edges());
  EXPECT_EQ(a.overlay.base_index, b.overlay.base_index);
}

}  // namespace
}  // namespace sens
