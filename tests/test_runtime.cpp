// Tests for the discrete-event runtime: simulator, radio, the Figure-7
// construction protocol (including bit-exact equivalence with the
// centralized builder under the strict spec) and the Figure-9 routing
// traffic accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sens/core/udg_sens.hpp"
#include "sens/core/nn_sens.hpp"
#include "sens/geograph/knn.hpp"
#include "sens/geograph/udg.hpp"
#include "sens/runtime/construct.hpp"
#include "sens/runtime/radio.hpp"
#include "sens/runtime/route_proto.hpp"
#include "sens/runtime/sim.hpp"

namespace sens {
namespace {

TEST(SimulatorTest, OrdersByTimeThenSequence) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(1.0, [&] { order.push_back(11); });  // same time: insertion order
  sim.schedule(0.5, [&] { order.push_back(0); });
  EXPECT_EQ(sim.run(), 4u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 11, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] {
    ++fired;
    sim.schedule(1.0, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_THROW(sim.schedule(-1.0, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, MaxEventsGuard) {
  Simulator sim;
  std::function<void()> loop = [&] { sim.schedule(1.0, loop); };
  sim.schedule(0.0, loop);
  EXPECT_EQ(sim.run(100), 100u);
}

GeoGraph line_graph() {
  GeoGraph g;
  g.points = {{0.0, 0.0}, {1.0, 0.0}, {1.0, 2.0}};
  g.graph = CsrGraph::from_edges(3, {{0, 1}, {1, 2}});
  return g;
}

TEST(RadioTest, UnicastDeliversAndCharges) {
  const GeoGraph net = line_graph();
  Simulator sim;
  Radio radio(net, sim, 2.0);
  std::vector<Message> inbox;
  radio.set_receiver([&](const Message& m) { inbox.push_back(m); });
  radio.unicast({0, 1, 42, 7, 0, 0, 0});
  sim.run();
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].kind, 42u);
  EXPECT_EQ(inbox[0].a, 7);
  EXPECT_EQ(radio.messages_sent(), 1u);
  EXPECT_DOUBLE_EQ(radio.node_energy(0), 1.0);  // d = 1, beta = 2
  EXPECT_DOUBLE_EQ(radio.node_energy(1), 0.0);
  EXPECT_DOUBLE_EQ(radio.total_energy(), 1.0);
}

TEST(RadioTest, UnicastRequiresLink) {
  const GeoGraph net = line_graph();
  Simulator sim;
  Radio radio(net, sim);
  EXPECT_THROW(radio.unicast({0, 2, 1, 0, 0, 0, 0}), std::logic_error);
}

TEST(RadioTest, BroadcastReachesAllNeighborsAtMaxRange) {
  const GeoGraph net = line_graph();
  Simulator sim;
  Radio radio(net, sim, 2.0);
  int received = 0;
  radio.set_receiver([&](const Message& m) {
    ++received;
    EXPECT_EQ(m.from, 1u);
  });
  radio.broadcast({1, 0, 5, 0, 0, 0, 0});
  sim.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(radio.messages_sent(), 1u);        // one transmission
  EXPECT_DOUBLE_EQ(radio.node_energy(1), 4.0); // farthest neighbor at d = 2
}

TEST(RadioTest, BetaExponentRespected) {
  const GeoGraph net = line_graph();
  Simulator sim;
  Radio radio(net, sim, 4.0);
  radio.unicast({1, 2, 1, 0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(radio.node_energy(1), 16.0);  // 2^4
}

// --- Figure 7 protocol ---

class ConstructEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConstructEquivalenceTest, UdgStrictProtocolMatchesCentralized) {
  const UdgTileSpec spec = UdgTileSpec::strict();
  const UdgSensResult central = build_udg_sens(spec, 25.0, 8, 8, GetParam());
  const GeoGraph udg =
      build_udg(central.points.points, central.points.window, spec.link_radius);
  const ConstructOutcome proto =
      run_udg_construction(udg, spec, central.classification.window);

  // Goodness decisions agree tile by tile (P4 holds for the strict spec).
  ASSERT_EQ(proto.tile_good.size(), central.classification.good.size());
  for (std::size_t i = 0; i < proto.tile_good.size(); ++i)
    EXPECT_EQ(proto.tile_good[i], central.classification.good[i]) << "tile " << i;

  // Elected leaders agree on good tiles (flood-min == min index).
  for (std::size_t i = 0; i < proto.tile_good.size(); ++i) {
    if (!proto.tile_good[i]) continue;
    EXPECT_EQ(proto.leaders[i][0], central.classification.nodes[i].rep);
    for (int dir = 0; dir < 4; ++dir)
      EXPECT_EQ(proto.leaders[i][static_cast<std::size_t>(dir) + 1],
                central.classification.nodes[i].relay[static_cast<std::size_t>(dir)]);
  }

  // Overlay edges agree exactly (compared in base-point ids).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> central_edges;
  for (const auto& [u, v] : central.overlay.geo.graph.edge_list()) {
    auto a = central.overlay.base_index[u];
    auto b = central.overlay.base_index[v];
    if (a > b) std::swap(a, b);
    central_edges.emplace_back(a, b);
  }
  std::sort(central_edges.begin(), central_edges.end());
  EXPECT_EQ(proto.edges, central_edges);
  EXPECT_EQ(proto.failed_connects, 0u);
  EXPECT_GT(proto.total_messages(), 0u);
  EXPECT_GT(proto.energy, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstructEquivalenceTest, ::testing::Range<std::uint64_t>(1, 6));

TEST(ConstructProtocol, MessageCostScalesWithNodes) {
  const UdgTileSpec spec = UdgTileSpec::strict();
  const UdgSensResult small = build_udg_sens(spec, 25.0, 5, 5, 3);
  const UdgSensResult large = build_udg_sens(spec, 25.0, 10, 10, 3);
  const GeoGraph udg_s = build_udg(small.points.points, small.points.window, 1.0);
  const GeoGraph udg_l = build_udg(large.points.points, large.points.window, 1.0);
  const auto proto_s = run_udg_construction(udg_s, spec, small.classification.window);
  const auto proto_l = run_udg_construction(udg_l, spec, large.classification.window);
  // Messages grow with network size but stay locally bounded: the per-node
  // budget is O(region size), not O(network size).
  const double per_node_s =
      static_cast<double>(proto_s.total_messages()) / static_cast<double>(udg_s.size());
  const double per_node_l =
      static_cast<double>(proto_l.total_messages()) / static_cast<double>(udg_l.size());
  EXPECT_GT(proto_l.total_messages(), proto_s.total_messages());
  EXPECT_LT(per_node_l, per_node_s * 2.5);
}

TEST(ConstructProtocol, NnProtocolAgreesOnMostTiles) {
  // The NN goodness rule needs an occupancy count, which the rep estimates
  // from 1-hop PRESENT messages; rare undercounts make this a measured
  // agreement, not an identity (see DESIGN.md).
  const NnTileSpec spec = NnTileSpec::paper();
  const NnSensResult central = build_nn_sens(spec, 6, 6, 11);
  const GeoGraph knn = build_knn_graph(central.points.points, spec.k());
  const ConstructOutcome proto = run_nn_construction(knn, spec, central.classification.window);
  ASSERT_EQ(proto.tile_good.size(), central.classification.good.size());
  std::size_t agree = 0;
  for (std::size_t i = 0; i < proto.tile_good.size(); ++i)
    agree += proto.tile_good[i] == central.classification.good[i];
  EXPECT_GE(static_cast<double>(agree) / static_cast<double>(proto.tile_good.size()), 0.9);
  EXPECT_GT(proto.good_count(), 0u);
}

// --- Figure 9 traffic ---

TEST(RoutingProtocolTest, AccountsTraffic) {
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), 25.0, 16, 16, 5);
  const auto reps = r.overlay.giant_rep_sites();
  ASSERT_GE(reps.size(), 2u);
  RoutingProtocol proto(r.overlay, 2.0);
  const RouteTrafficReport report = proto.send_packet(reps.front(), reps.back());
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.data_messages, report.node_hops);
  EXPECT_EQ(report.total_messages, report.data_messages + report.probe_messages);
  EXPECT_GT(report.energy, 0.0);
  EXPECT_GE(report.probes, report.tile_hops);
  EXPECT_DOUBLE_EQ(proto.total_energy(), report.energy);
}

TEST(RoutingProtocolTest, EnergyAccumulatesAcrossPackets) {
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), 25.0, 16, 16, 6);
  const auto reps = r.overlay.giant_rep_sites();
  ASSERT_GE(reps.size(), 3u);
  RoutingProtocol proto(r.overlay);
  const auto r1 = proto.send_packet(reps.front(), reps.back());
  const auto r2 = proto.send_packet(reps[1], reps.back());
  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success);
  EXPECT_NEAR(proto.total_energy(), r1.energy + r2.energy, 1e-9);
  EXPECT_EQ(proto.messages_sent(), r1.total_messages + r2.total_messages);
}

TEST(RoutingProtocolTest, SameTileRouteIsTrivial) {
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), 25.0, 12, 12, 7);
  const auto reps = r.overlay.giant_rep_sites();
  ASSERT_GE(reps.size(), 1u);
  RoutingProtocol proto(r.overlay);
  const auto report = proto.send_packet(reps.front(), reps.front());
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.node_hops, 0u);
  EXPECT_EQ(report.data_messages, 0u);
}

}  // namespace
}  // namespace sens
