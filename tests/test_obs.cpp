// Tests for the observability layer (DESIGN.md §2.10). The heart of the
// suite is the determinism contract: every *work counter* is a pure
// function of (seed, workload), so registry totals must be bit-identical at
// --threads 1/2/8 for the instrumented kernels (dijkstra_many / bfs_many,
// GridKnn batches, and an EpochQueryEngine churn replay). The timing
// classes (LatencyHistogram, TraceLog) are tested for shape only — their
// values are machine-dependent by design and banned from `--json`. The
// whole Obs* set is the `obs` ctest tier.
//
// Exact-count assertions are gated on SENS_OBS_ENABLED so this suite also
// passes in the compiled-out build (where the registry exists but no kernel
// flushes into it).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "sens/dynamic/dynamic_hng.hpp"
#include "sens/geograph/knn.hpp"
#include "sens/geograph/point_set.hpp"
#include "sens/geograph/udg.hpp"
#include "sens/graph/bfs.hpp"
#include "sens/graph/dijkstra.hpp"
#include "sens/obs/obs.hpp"
#include "sens/rng/rng.hpp"
#include "sens/serve/epoch_engine.hpp"
#include "sens/serve/query_engine.hpp"
#include "sens/support/parallel.hpp"
#include "sens/support/timer.hpp"

namespace sens {
namespace {

constexpr std::uint64_t kSeed = 0x0b5e55edULL;

// --- LatencyHistogram (timing class: shape only) ---------------------------

TEST(ObsHistogram, EmptyIsZero) {
  const obs::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.percentile_ns(0.5), 0u);
}

TEST(ObsHistogram, PercentilesBracketSamplesWithinBucketResolution) {
  obs::LatencyHistogram h;
  for (std::uint64_t ns : {100u, 200u, 400u, 800u, 1600u, 3200u, 6400u, 12800u}) {
    h.record(ns);
  }
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.min_ns(), 100u);
  EXPECT_EQ(h.max_ns(), 12800u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 25500.0 / 8.0);
  // Log2 buckets: each percentile is the upper edge of its bucket, so it
  // overshoots the true sample by at most 2x and never leaves [min, max].
  const std::uint64_t p50 = h.percentile_ns(0.50);
  const std::uint64_t p95 = h.percentile_ns(0.95);
  const std::uint64_t p99 = h.percentile_ns(0.99);
  EXPECT_GE(p50, 400u);
  EXPECT_LE(p50, 1023u);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max_ns());
  EXPECT_EQ(h.percentile_ns(1.0), h.max_ns());
}

TEST(ObsHistogram, ZeroSamplesLandInBucketZero) {
  obs::LatencyHistogram h;
  h.record(0);
  h.record(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.percentile_ns(0.5), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
}

TEST(ObsHistogram, MergeMatchesSequentialRecording) {
  obs::LatencyHistogram a;
  obs::LatencyHistogram b;
  obs::LatencyHistogram all;
  Rng rng = Rng::stream(kSeed, 0x41u);
  for (int i = 0; i < 500; ++i) {
    const auto ns = static_cast<std::uint64_t>(rng.uniform_index(1u << 20));
    (i % 2 == 0 ? a : b).record(ns);
    all.record(ns);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min_ns(), all.min_ns());
  EXPECT_EQ(a.max_ns(), all.max_ns());
  EXPECT_DOUBLE_EQ(a.mean_ns(), all.mean_ns());
  for (double p : {0.5, 0.9, 0.95, 0.99}) {
    EXPECT_EQ(a.percentile_ns(p), all.percentile_ns(p)) << "p=" << p;
  }
}

// --- CounterRegistry -------------------------------------------------------

TEST(ObsRegistry, AddSnapshotResetRoundTrip) {
  auto& reg = obs::CounterRegistry::global();
  reg.reset();
  reg.add(obs::Counter::kBfsRuns, 3);
  reg.add(obs::Counter::kBfsVisits, 41);
  reg.add(obs::Counter::kBfsVisits, 1);
  EXPECT_EQ(reg.value(obs::Counter::kBfsRuns), 3u);
  EXPECT_EQ(reg.value(obs::Counter::kBfsVisits), 42u);
  reg.reset();
  const obs::CounterSnapshot zero = reg.snapshot();
  for (const std::uint64_t v : zero) EXPECT_EQ(v, 0u);
}

TEST(ObsRegistry, SumsExactlyAcrossForeignThreads) {
  auto& reg = obs::CounterRegistry::global();
  reg.reset();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        reg.add(obs::Counter::kGridKnnCandidates, 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // uint64 sums commute: the total is exact no matter which thread's block
  // absorbed which increment.
  EXPECT_EQ(reg.value(obs::Counter::kGridKnnCandidates), kThreads * kPerThread);
}

TEST(ObsRegistry, CounterNamesAreUniqueAndStable) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    names.emplace_back(obs::counter_name(static_cast<obs::Counter>(i)));
  }
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "duplicate counter name";
  EXPECT_EQ(names.front(), "dijkstra_runs");
  for (const std::string& n : names) EXPECT_NE(n, "unknown");
}

// --- work-counter determinism across --threads (the §2.10 contract) --------

/// Reset the registry, run `workload` under `threads` workers, and return
/// the accumulated totals (thread count restored to serial afterwards).
template <typename Fn>
obs::CounterSnapshot counters_at_threads(unsigned threads, Fn&& workload) {
  set_thread_count(threads);
  obs::CounterRegistry::global().reset();
  workload();
  set_thread_count(1);
  return obs::CounterRegistry::global().snapshot();
}

template <typename Fn>
void expect_thread_invariant(Fn&& workload, bool expect_nonzero) {
  const obs::CounterSnapshot base = counters_at_threads(1, workload);
  for (unsigned threads : {2u, 8u}) {
    const obs::CounterSnapshot got = counters_at_threads(threads, workload);
    for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
      EXPECT_EQ(got[i], base[i]) << "counter "
                                 << obs::counter_name(static_cast<obs::Counter>(i))
                                 << " at --threads " << threads;
    }
  }
  if (expect_nonzero) {
    std::uint64_t total = 0;
    for (const std::uint64_t v : base) total += v;
#if SENS_OBS_ENABLED
    EXPECT_GT(total, 0u) << "instrumented workload tallied nothing";
#else
    EXPECT_EQ(total, 0u) << "compiled-out build must tally nothing";
#endif
  }
}

/// Shared workload: a connected-ish Poisson UDG (the E7/E17 shape).
GeoGraph make_udg(double side = 9.0, double lambda = 4.0) {
  const Box window{{0.0, 0.0}, {side, side}};
  const PointSet ps = poisson_point_set(window, lambda, kSeed);
  return build_udg(ps.points, window, 1.0);
}

TEST(ObsCounters, DijkstraManyIsThreadInvariant) {
  const GeoGraph geo = make_udg();
  const std::vector<double> w = geo.graph.arc_weights(
      [&](std::uint32_t u, std::uint32_t v) { return dist(geo.points[u], geo.points[v]); });
  std::vector<std::uint32_t> sources;
  for (std::uint32_t s = 0; s < geo.size(); s += 7) sources.push_back(s);
  std::vector<double> out(sources.size() * geo.size());
  expect_thread_invariant(
      [&] { dijkstra_many_into(geo.graph, sources, w, out); }, /*expect_nonzero=*/true);
}

TEST(ObsCounters, BfsManyIsThreadInvariant) {
  const GeoGraph geo = make_udg();
  std::vector<std::uint32_t> sources;
  for (std::uint32_t s = 0; s < geo.size(); s += 11) sources.push_back(s);
  std::vector<std::uint32_t> out(sources.size() * geo.size());
  expect_thread_invariant(
      [&] { bfs_many_into(geo.graph, sources, out); }, /*expect_nonzero=*/true);
}

TEST(ObsCounters, GridKnnBatchIsThreadInvariant) {
  const Box window{{0.0, 0.0}, {9.0, 9.0}};
  const PointSet ps = poisson_point_set(window, 5.0, kSeed);
  expect_thread_invariant(
      [&] { (void)knn_selections_flat(ps.points, 6); }, /*expect_nonzero=*/true);
}

TEST(ObsCounters, EpochChurnReplayIsThreadInvariant) {
  // The full churn-serving cycle: bulk build, churn events, journal replay,
  // then a served batch — every instrumented kernel fires (k-NN linking in
  // the maintainer, Dijkstra label sweeps in the oracle, verdict counts in
  // serve), and the whole composition must stay bit-identical.
  const Box window{{0.0, 0.0}, {7.0, 7.0}};
  const PointSet ps = poisson_point_set(window, 4.0, kSeed);
  const std::vector<Vec2> pts(ps.points.begin(),
                              ps.points.begin() +
                                  static_cast<std::ptrdiff_t>(std::min<std::size_t>(
                                      140, ps.points.size())));
  expect_thread_invariant(
      [&] {
        DynamicHng dyn(pts, HngParams{.promote_p = 0.25, .k = 3, .max_level = 48}, kSeed);
        EpochQueryEngine engine(dyn, EpochEngineParams{.num_landmarks = 6, .seed = kSeed});
        Rng rng = Rng::stream(kSeed, 0xc4u);
        for (int ev = 0; ev < 20; ++ev) {
          if (dyn.size() > 60 && rng.bernoulli(0.5)) {
            dyn.remove(static_cast<std::uint32_t>(rng.uniform_index(dyn.size())));
          } else {
            dyn.insert(Vec2{rng.uniform(0.0, 7.0), rng.uniform(0.0, 7.0)});
          }
        }
        (void)engine.refresh();
        std::vector<Query> queries;
        Rng qrng = Rng::stream(kSeed, 0x9eu);
        for (int i = 0; i < 256; ++i) {
          queries.push_back(Query{
              static_cast<std::uint32_t>(qrng.uniform_index(engine.graph().num_vertices())),
              static_cast<std::uint32_t>(qrng.uniform_index(engine.graph().num_vertices()))});
        }
        std::vector<double> out(queries.size());
        std::vector<Verdict> verdicts(queries.size());
        (void)engine.serve(queries, out, verdicts);
      },
      /*expect_nonzero=*/true);
}

#if SENS_OBS_ENABLED

// --- exact counts pin the counter semantics --------------------------------

TEST(ObsCounters, BfsCountsVisitsOnAPath) {
  // 0-1-2-3-4 path: a full BFS from 0 labels all 5 vertices.
  const CsrGraph g = CsrGraph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto& reg = obs::CounterRegistry::global();
  reg.reset();
  (void)bfs_distances(g, 0);
  EXPECT_EQ(reg.value(obs::Counter::kBfsRuns), 1u);
  EXPECT_EQ(reg.value(obs::Counter::kBfsVisits), 5u);
}

TEST(ObsCounters, DijkstraCountsPopsAndRelaxations) {
  // Same path graph, unit weights: a full run settles all 5 vertices and
  // examines every arc once per settle (8 directed arcs).
  const CsrGraph g = CsrGraph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const std::vector<double> w(g.num_arcs(), 1.0);
  auto& reg = obs::CounterRegistry::global();
  reg.reset();
  (void)dijkstra_costs(g, 0, w);
  EXPECT_EQ(reg.value(obs::Counter::kDijkstraRuns), 1u);
  EXPECT_EQ(reg.value(obs::Counter::kDijkstraHeapPops), 5u);
  EXPECT_EQ(reg.value(obs::Counter::kDijkstraRelaxedArcs), 8u);
}

TEST(ObsCounters, ServeVerdictsMatchServeStats) {
  const GeoGraph geo = make_udg();
  const std::vector<double> w = geo.graph.arc_weights(
      [&](std::uint32_t u, std::uint32_t v) { return dist(geo.points[u], geo.points[v]); });
  const QueryEngine engine(geo.graph, w,
                           QueryEngineParams{.num_landmarks = 8, .seed = kSeed});
  std::vector<Query> queries;
  Rng rng = Rng::stream(kSeed, 0x7au);
  for (int i = 0; i < 300; ++i) {
    queries.push_back(
        Query{static_cast<std::uint32_t>(rng.uniform_index(geo.size())),
              static_cast<std::uint32_t>(rng.uniform_index(geo.size()))});
  }
  std::vector<double> out(queries.size());
  auto& reg = obs::CounterRegistry::global();
  reg.reset();
  const ServeStats stats = engine.estimate_distances(queries, out);
  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_EQ(stats.certified + stats.exact, stats.queries);
  EXPECT_EQ(reg.value(obs::Counter::kOracleCertified), stats.certified);
  EXPECT_EQ(reg.value(obs::Counter::kOracleFallback), stats.exact);
  EXPECT_EQ(reg.value(obs::Counter::kOracleDisconnected), stats.disconnected);
  // ServeStats.disconnected flags inf answers, whichever path produced them.
  std::size_t inf = 0;
  for (const double d : out) inf += d >= kInfCost ? 1 : 0;
  EXPECT_EQ(stats.disconnected, inf);
}

#endif  // SENS_OBS_ENABLED

// --- spans + trace export (timing class: shape only) -----------------------

TEST(ObsTrace, ScopedSpanFeedsTotalsWhenEnabled) {
  auto& log = obs::TraceLog::global();
  log.clear();
  log.enable(/*keep_events=*/false);
  {
    const ScopedSpan outer("obs-test/outer");
    const ScopedSpan inner("obs-test/inner");
  }
  { const ScopedSpan outer("obs-test/outer"); }
  log.disable();
  { const ScopedSpan ignored("obs-test/after-disable"); }
  const auto totals = log.totals();
  ASSERT_EQ(totals.size(), 2u);
  // First-seen order; spans record at destruction, so inner lands first.
  EXPECT_EQ(totals[0].name, "obs-test/inner");
  EXPECT_EQ(totals[0].count, 1u);
  EXPECT_EQ(totals[1].name, "obs-test/outer");
  EXPECT_EQ(totals[1].count, 2u);
  EXPECT_EQ(log.event_count(), 0u) << "keep_events=false must not retain events";
  log.clear();
}

TEST(ObsTrace, ChromeTraceExportIsWellFormed) {
  auto& log = obs::TraceLog::global();
  log.clear();
  log.enable(/*keep_events=*/true);
  {
    const ScopedSpan a("phase-a");
    const ScopedSpan b("phase-b");
  }
  log.disable();
  EXPECT_EQ(log.event_count(), 2u);
  std::ostringstream out;
  log.write_chrome_trace(out);
  const std::string doc = out.str();
  EXPECT_NE(doc.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"phase-a\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"phase-b\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(doc.back(), '\n');
  log.clear();
}

TEST(ObsTrace, MonotonicClockNeverGoesBackwards) {
  std::uint64_t prev = monotonic_ns();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = monotonic_ns();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace sens
