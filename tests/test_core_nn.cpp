// Property and integration tests for the NN-SENS construction.
#include <gtest/gtest.h>

#include "sens/core/coverage.hpp"
#include "sens/core/metrics.hpp"
#include "sens/core/nn_sens.hpp"
#include "sens/core/sens_router.hpp"

namespace sens {
namespace {

// Paper parameters; 10x10 tile windows keep the k-NN graph small enough for
// unit tests while leaving dozens of good tiles.
NnSensResult small_build(std::uint64_t seed, int tiles = 10) {
  return build_nn_sens(NnTileSpec::paper(), tiles, tiles, seed);
}

class NnSensSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NnSensSeedTest, MaxDegreeFour) {
  const NnSensResult r = small_build(GetParam());
  const DegreeReport deg = overlay_degree_report(r.overlay);
  EXPECT_LE(deg.max_degree, 4u) << "P1 violated";
}

TEST_P(NnSensSeedTest, ClaimEdgesAllExistInKnnGraph) {
  // Claim 2.3: with both adjacent tiles good, all five prescribed edges are
  // genuine NN(2, k) edges — edges_missing must be zero.
  const NnSensResult r = small_build(GetParam());
  EXPECT_EQ(r.overlay.edges_missing, 0u);
  EXPECT_GT(r.overlay.edges_expected, 0u);
}

TEST_P(NnSensSeedTest, AdjacentGoodTilePathsRealized) {
  const NnSensResult r = small_build(GetParam());
  const ClaimCheck check = check_adjacent_tile_paths(r.overlay);
  if (check.adjacent_good_pairs == 0) GTEST_SKIP() << "no adjacent good pairs this seed";
  EXPECT_DOUBLE_EQ(check.realized_fraction(), 1.0);
  EXPECT_GT(check.worst_stretch, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NnSensSeedTest, ::testing::Range<std::uint64_t>(1, 7));

TEST(NnSens, GoodFractionPlausible) {
  const NnSensResult r = small_build(42, 12);
  const double frac = static_cast<double>(r.classification.good_count()) /
                      static_cast<double>(r.classification.good.size());
  // At the paper's (a, k) the good probability is ~0.62 (see E2).
  EXPECT_GT(frac, 0.35);
  EXPECT_LT(frac, 0.85);
}

TEST(NnSens, ExitChainsHaveTwoRelays) {
  const NnSensResult r = small_build(2);
  for (std::size_t idx = 0; idx < r.classification.good.size(); ++idx) {
    if (!r.classification.good[idx]) continue;
    for (int dir = 0; dir < 4; ++dir) {
      EXPECT_EQ(r.overlay.exit_chain[idx][static_cast<std::size_t>(dir)].size(), 2u)
          << "NN exit chain is E relay then C relay";
    }
  }
}

// Sharded over seeds: gtest_discover_tests registers each instantiation as
// its own ctest entry, so `ctest -j` runs the four builds on separate cores.
// The spec is hoisted out of the per-tile loop — before the polygon cache
// existed, constructing NnTileSpec::paper() per good tile made this single
// test dominate the suite (~77 s of a ~78 s serial run). Four seeds also
// strictly widen coverage over the original single-seed (seed 3) check.
class NnOccupancyShardTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NnOccupancyShardTest, OccupancyCapVisibleInClassification) {
  const NnTileSpec spec = NnTileSpec::paper();
  const NnSensResult r = small_build(GetParam());
  std::size_t good_tiles = 0;
  for (std::size_t idx = 0; idx < r.classification.good.size(); ++idx) {
    if (r.classification.good[idx]) {
      ++good_tiles;
      EXPECT_LE(r.classification.occupancy[idx], spec.max_occupancy());
    }
  }
  EXPECT_GT(good_tiles, 0u) << "degenerate shard: no good tiles at this seed";
}

INSTANTIATE_TEST_SUITE_P(Shards, NnOccupancyShardTest,
                         ::testing::Values<std::uint64_t>(3, 11, 17, 23));

TEST(NnSens, CoverageDecaysWithBlockSize) {
  const NnSensResult r = small_build(5, 14);
  const int sizes[] = {1, 2, 3};
  const auto probs = empty_block_probability(r.overlay, sizes);
  EXPECT_GE(probs[0], probs[1]);
  EXPECT_GE(probs[1], probs[2]);
}

TEST(NnSensRouter, RoutesAcrossTheWindow) {
  const NnSensResult r = small_build(7, 12);
  const auto reps = r.overlay.giant_rep_sites();
  if (reps.size() < 2) GTEST_SKIP() << "giant cluster too small this seed";
  const SensRouter router(r.overlay);
  const SensRoute route = router.route(reps.front(), reps.back());
  ASSERT_TRUE(route.success);
  for (std::size_t i = 1; i < route.node_path.size(); ++i) {
    EXPECT_TRUE(r.overlay.geo.graph.has_edge(route.node_path[i - 1], route.node_path[i]));
  }
  // NN tile hop realizes through 4 relays -> about 5 node hops per tile hop.
  EXPECT_GE(route.node_hops(), route.tile_hops);
  EXPECT_LE(route.node_hops(), 5 * route.tile_hops + 1);
}

TEST(NnSens, BufferIndependence) {
  // Interior goodness must not depend on the buffer width (cell-consistent
  // sampling + window-local classification).
  const NnSensResult narrow = build_nn_sens(NnTileSpec::paper(), 8, 8, 31, 1.0);
  const NnSensResult wide = build_nn_sens(NnTileSpec::paper(), 8, 8, 31, 2.0);
  ASSERT_EQ(narrow.classification.good.size(), wide.classification.good.size());
  for (std::size_t i = 0; i < narrow.classification.good.size(); ++i)
    EXPECT_EQ(narrow.classification.good[i], wide.classification.good[i]);
}

}  // namespace
}  // namespace sens
