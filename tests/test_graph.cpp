// Tests for sens/graph: CSR construction (builder, flat-adjacency and
// selection paths), BFS, Dijkstra (scratch reuse, arc weights, batched
// multi-source), components, union-find.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "sens/graph/bfs.hpp"
#include "sens/graph/components.hpp"
#include "sens/graph/csr.hpp"
#include "sens/graph/dijkstra.hpp"
#include "sens/graph/flat_adjacency.hpp"
#include "sens/graph/union_find.hpp"
#include "sens/rng/rng.hpp"
#include "sens/support/parallel.hpp"

namespace sens {
namespace {

/// Random multigraph edge list (duplicates and self loops included) for
/// adversarial normalization tests.
std::vector<std::pair<std::uint32_t, std::uint32_t>> random_edges(std::size_t n,
                                                                  std::size_t count,
                                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(count);
  for (std::size_t e = 0; e < count; ++e)
    edges.emplace_back(static_cast<std::uint32_t>(rng.uniform_index(n)),
                       static_cast<std::uint32_t>(rng.uniform_index(n)));
  return edges;
}

CsrGraph path_graph(std::size_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return CsrGraph::from_edges(n, std::move(edges));
}

TEST(Csr, BuildNormalizesEdges) {
  // Duplicates, reversed duplicates and self loops all collapse.
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 3}});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(2, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Csr, OutOfRangeThrows) {
  EXPECT_THROW((void)CsrGraph::from_edges(2, {{0, 5}}), std::out_of_range);
}

TEST(Csr, NeighborsSortedAndEdgeList) {
  const CsrGraph g = CsrGraph::from_edges(5, {{3, 1}, {3, 0}, {3, 4}, {2, 3}});
  const auto nbrs = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_DOUBLE_EQ(g.mean_degree(), 2.0 * 4.0 / 5.0);
  const auto edges = g.edge_list();
  EXPECT_EQ(edges.size(), 4u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(Bfs, DistancesOnPath) {
  const CsrGraph g = path_graph(6);
  const auto dist = bfs_distances(g, 0);
  for (std::uint32_t i = 0; i < 6; ++i) EXPECT_EQ(dist[i], i);
  EXPECT_EQ(bfs_distance(g, 0, 5), 5u);
  EXPECT_EQ(bfs_distance(g, 2, 2), 0u);
}

TEST(Bfs, Unreachable) {
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(bfs_distance(g, 0, 3), kUnreachable);
  EXPECT_EQ(bfs_distances(g, 0)[2], kUnreachable);
  EXPECT_TRUE(bfs_path(g, 0, 3).empty());
}

TEST(Bfs, PathValidAndShortest) {
  // Diamond with a long detour: 0-1-3, 0-2-3, 0-4-5-3.
  const CsrGraph g = CsrGraph::from_edges(6, {{0, 1}, {1, 3}, {0, 2}, {2, 3}, {0, 4}, {4, 5}, {5, 3}});
  const auto path = bfs_path(g, 0, 3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 3u);
  for (std::size_t i = 1; i < path.size(); ++i) EXPECT_TRUE(g.has_edge(path[i - 1], path[i]));
}

TEST(Bfs, PathSourceEqualsTarget) {
  const CsrGraph g = path_graph(3);
  const auto path = bfs_path(g, 1, 1);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 1u);
}

TEST(Dijkstra, MatchesBfsWithUnitWeights) {
  Rng rng(17);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  const std::size_t n = 80;
  for (int e = 0; e < 200; ++e)
    edges.emplace_back(static_cast<std::uint32_t>(rng.uniform_index(n)),
                       static_cast<std::uint32_t>(rng.uniform_index(n)));
  const CsrGraph g = CsrGraph::from_edges(n, std::move(edges));
  const auto hops = bfs_distances(g, 0);
  const auto costs = dijkstra_costs(g, 0, [](std::uint32_t, std::uint32_t) { return 1.0; });
  for (std::size_t v = 0; v < n; ++v) {
    if (hops[v] == kUnreachable) {
      EXPECT_EQ(costs[v], kInfCost);
    } else {
      EXPECT_DOUBLE_EQ(costs[v], static_cast<double>(hops[v]));
    }
  }
}

TEST(Dijkstra, WeightedShortcut) {
  // 0-1-2 cheap vs direct 0-2 expensive.
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  auto w = [](std::uint32_t a, std::uint32_t b) {
    return (a == 0 && b == 2) || (a == 2 && b == 0) ? 10.0 : 1.0;
  };
  EXPECT_DOUBLE_EQ(dijkstra_cost(g, 0, 2, w), 2.0);
  const auto path = dijkstra_path(g, 0, 2, w);
  EXPECT_EQ(path, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(Dijkstra, UnreachableIsInf) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}});
  EXPECT_EQ(dijkstra_cost(g, 0, 2, [](auto, auto) { return 1.0; }), kInfCost);
  EXPECT_TRUE(dijkstra_path(g, 0, 2, [](auto, auto) { return 1.0; }).empty());
}

TEST(Csr, BuilderMatchesFromEdges) {
  const auto edges = random_edges(50, 300, 23);  // dups + self loops likely
  CsrGraph::Builder b;
  b.reserve(edges.size());
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  EXPECT_EQ(b.edges_added(), edges.size());
  const CsrGraph built = std::move(b).build(50);
  const CsrGraph reference = CsrGraph::from_edges(50, edges);
  EXPECT_EQ(built.edge_list(), reference.edge_list());
  EXPECT_EQ(built.num_edges(), reference.num_edges());
}

TEST(Csr, BuilderOutOfRangeThrows) {
  CsrGraph::Builder b;
  b.add_edge(0, 7);
  EXPECT_THROW((void)std::move(b).build(3), std::out_of_range);
}

TEST(Csr, FromSymmetricAdjacencyAdoptsAndSorts) {
  // 0-1, 0-2, 1-2 with deliberately unsorted per-vertex lists.
  FlatAdjacency adj;
  adj.offsets = {0, 2, 4, 6};
  adj.neighbors = {2, 1, 2, 0, 1, 0};
  const CsrGraph g = CsrGraph::from_symmetric_adjacency(std::move(adj));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  const auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(Csr, FromSymmetricAdjacencyMismatchThrows) {
  FlatAdjacency adj;
  adj.offsets = {0, 2};
  adj.neighbors = {1};
  EXPECT_THROW((void)CsrGraph::from_symmetric_adjacency(std::move(adj)), std::invalid_argument);
}

TEST(Csr, FromSelectionsMatchesFromEdges) {
  // Directed selection lists with self entries and duplicate targets; the
  // union must equal the normalized from_edges graph.
  const std::size_t n = 40;
  Rng rng(7);
  FlatAdjacency sel;
  sel.offsets.assign(n + 1, 0);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (std::uint32_t u = 0; u < n; ++u) {
    const std::size_t deg = rng.uniform_index(6);
    for (std::size_t d = 0; d < deg; ++d) {
      const auto v = static_cast<std::uint32_t>(rng.uniform_index(n));  // may be u
      sel.neighbors.push_back(v);
      pairs.emplace_back(u, v);
    }
    sel.offsets[u + 1] = static_cast<std::uint32_t>(sel.neighbors.size());
  }
  // Duplicate an existing selection outright.
  if (!sel.neighbors.empty()) {
    const std::uint32_t u = 0;
    if (sel.degree(u) > 0) {
      pairs.emplace_back(u, sel[u][0]);
    }
  }
  const CsrGraph g = CsrGraph::from_selections(std::move(sel));
  const CsrGraph reference = CsrGraph::from_edges(n, std::move(pairs));
  EXPECT_EQ(g.edge_list(), reference.edge_list());
}

TEST(Csr, FromSelectionsOutOfRangeThrows) {
  FlatAdjacency sel;
  sel.offsets = {0, 1, 1};
  sel.neighbors = {5};
  EXPECT_THROW((void)CsrGraph::from_selections(std::move(sel)), std::out_of_range);
}

TEST(Csr, FromSelectionsMismatchThrows) {
  FlatAdjacency sel;
  sel.offsets = {0, 2, 2};  // claims two entries, provides one
  sel.neighbors = {1};
  EXPECT_THROW((void)CsrGraph::from_selections(std::move(sel)), std::invalid_argument);
}

TEST(Csr, HasEdgeScansEitherEndpoint) {
  // Star: hub 0 with high degree vs leaves with degree 1 — both lookup
  // directions must agree whichever endpoint is cheaper to scan.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t v = 1; v < 30; ++v) edges.emplace_back(0, v);
  edges.emplace_back(7, 9);
  const CsrGraph g = CsrGraph::from_edges(30, std::move(edges));
  EXPECT_TRUE(g.has_edge(0, 17));
  EXPECT_TRUE(g.has_edge(17, 0));
  EXPECT_TRUE(g.has_edge(7, 9));
  EXPECT_TRUE(g.has_edge(9, 7));
  EXPECT_FALSE(g.has_edge(7, 8));
  EXPECT_FALSE(g.has_edge(8, 7));
}

TEST(Csr, ArcViewConsistent) {
  const CsrGraph g = CsrGraph::from_edges(5, {{0, 1}, {0, 3}, {1, 3}, {2, 4}});
  EXPECT_EQ(g.num_arcs(), 8u);
  for (std::uint32_t u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    EXPECT_EQ(g.arc_end(u) - g.arc_begin(u), nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const std::size_t arc = g.arc_begin(u) + i;
      EXPECT_EQ(g.arc_target(arc), nbrs[i]);
      EXPECT_EQ(g.arc_index(u, nbrs[i]), arc);
    }
  }
}

TEST(Dijkstra, ArcWeightsMatchFunctorPath) {
  // The per-arc weight array and the functor must produce bitwise-equal
  // costs (DESIGN.md §2.4) — the arc array holds the same doubles and the
  // relaxations add the same operands.
  const std::size_t n = 60;
  const CsrGraph g = CsrGraph::from_edges(n, random_edges(n, 150, 31));
  auto weight = [](std::uint32_t u, std::uint32_t v) {
    return 1.0 + 0.25 * static_cast<double>((u * 31 + v * 17) % 13);
  };
  const std::vector<double> arcs = g.arc_weights(weight);
  ASSERT_EQ(arcs.size(), g.num_arcs());
  for (std::uint32_t s = 0; s < n; s += 7) {
    const auto by_fn = dijkstra_costs(g, s, weight);
    const auto by_arcs = dijkstra_costs(g, s, std::span<const double>(arcs));
    ASSERT_EQ(by_fn.size(), by_arcs.size());
    EXPECT_EQ(0, std::memcmp(by_fn.data(), by_arcs.data(), by_fn.size() * sizeof(double)));
  }
}

TEST(Dijkstra, ScratchReuseAcrossSourcesOnDisconnectedGraph) {
  // Two components; consecutive sources from different components through
  // one scratch must match fresh runs (the epoch bump must fully
  // invalidate the previous source's state).
  const CsrGraph g = CsrGraph::from_edges(7, {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 6}});
  const std::vector<double> w(g.num_arcs(), 1.0);
  DijkstraScratch scratch;
  std::vector<double> out(g.num_vertices());
  for (const std::uint32_t s : {0u, 3u, 6u, 0u}) {
    dijkstra_costs_into(g, s, w, scratch, out);
    const auto fresh = dijkstra_costs(g, s, std::span<const double>(w));
    for (std::size_t v = 0; v < fresh.size(); ++v) EXPECT_EQ(out[v], fresh[v]);
  }
  // Early-exit and path queries share the same scratch.
  EXPECT_EQ(dijkstra_cost(g, 0, 5, w, scratch), kInfCost);
  EXPECT_DOUBLE_EQ(dijkstra_cost(g, 3, 6, w, scratch), 3.0);
  std::vector<std::uint32_t> path;
  EXPECT_FALSE(dijkstra_path_into(g, 6, 1, w, scratch, path));
  EXPECT_TRUE(path.empty());
  EXPECT_TRUE(dijkstra_path_into(g, 3, 6, w, scratch, path));
  EXPECT_EQ(path, (std::vector<std::uint32_t>{3, 4, 5, 6}));
}

TEST(Dijkstra, ManyMatchesSerialAndBitIdenticalAcrossThreadCounts) {
  const std::size_t n = 200;
  const CsrGraph g = CsrGraph::from_edges(n, random_edges(n, 600, 41));
  const std::vector<double> w = g.arc_weights([](std::uint32_t u, std::uint32_t v) {
    return 0.5 + static_cast<double>((u ^ v) % 7);
  });
  std::vector<std::uint32_t> sources;
  for (std::uint32_t s = 0; s < n; s += 11) sources.push_back(s);

  std::vector<double> serial;
  serial.reserve(sources.size() * n);
  for (const std::uint32_t s : sources) {
    const auto row = dijkstra_costs(g, s, std::span<const double>(w));
    serial.insert(serial.end(), row.begin(), row.end());
  }
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_thread_count(threads);
    const std::vector<double> batched = dijkstra_many(g, sources, w);
    ASSERT_EQ(batched.size(), serial.size());
    EXPECT_EQ(0, std::memcmp(batched.data(), serial.data(), serial.size() * sizeof(double)));
  }
  set_thread_count(0);
}

TEST(Bfs, ScratchReuseAcrossSourcesOnDisconnectedGraph) {
  const CsrGraph g = CsrGraph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  BfsScratch scratch;
  std::vector<std::uint32_t> out(g.num_vertices());
  for (const std::uint32_t s : {0u, 3u, 5u, 2u}) {
    bfs_distances_into(g, s, scratch, out);
    const auto fresh = bfs_distances(g, s);
    EXPECT_EQ(out, fresh);
  }
  EXPECT_EQ(bfs_distance(g, 0, 4, scratch), kUnreachable);
  EXPECT_EQ(bfs_distance(g, 3, 4, scratch), 1u);
  std::vector<std::uint32_t> path;
  EXPECT_TRUE(bfs_path_into(g, 0, 2, scratch, path));
  EXPECT_EQ(path, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_FALSE(bfs_path_into(g, 2, 3, scratch, path));
  EXPECT_TRUE(path.empty());
}

TEST(Bfs, ManyMatchesSerialAndBitIdenticalAcrossThreadCounts) {
  const std::size_t n = 150;
  const CsrGraph g = CsrGraph::from_edges(n, random_edges(n, 350, 47));
  std::vector<std::uint32_t> sources;
  for (std::uint32_t s = 0; s < n; s += 13) sources.push_back(s);

  std::vector<std::uint32_t> serial;
  serial.reserve(sources.size() * n);
  for (const std::uint32_t s : sources) {
    const auto row = bfs_distances(g, s);
    serial.insert(serial.end(), row.begin(), row.end());
  }
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_thread_count(threads);
    const std::vector<std::uint32_t> batched = bfs_many(g, sources);
    ASSERT_EQ(batched.size(), serial.size());
    EXPECT_EQ(batched, serial);
  }
  set_thread_count(0);
}

TEST(Components, LabelsAndLargest) {
  const CsrGraph g = CsrGraph::from_edges(7, {{0, 1}, {1, 2}, {3, 4}, {5, 6}, {4, 5}});
  const Components c = connected_components(g);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.largest_size(), 4u);  // {3,4,5,6}
  EXPECT_TRUE(c.in_largest(3));
  EXPECT_FALSE(c.in_largest(0));
  EXPECT_EQ(c.label[0], c.label[2]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_EQ(c.largest_members(), (std::vector<std::uint32_t>{3, 4, 5, 6}));
}

TEST(Components, SingletonsCount) {
  const CsrGraph g = CsrGraph::from_edges(3, {});
  const Components c = connected_components(g);
  EXPECT_EQ(c.count(), 3u);
  EXPECT_EQ(c.largest_size(), 1u);
}

TEST(UnionFindTest, BasicInvariants) {
  UnionFind uf(10);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(0, 3));
  EXPECT_EQ(uf.set_size(1), 3u);
  EXPECT_EQ(uf.set_size(9), 1u);
}

// The precomputed reverse-arc permutation (the spanner filters' flat
// mirror lookup): on a pinned-seed random graph, through both the Builder
// and the selection construction paths, every arc round-trips.
TEST(Csr, ReverseArcRoundTripOnPinnedSeed) {
  const std::size_t n = 300;
  const CsrGraph g = CsrGraph::from_edges(n, random_edges(n, 1200, 0x5EB5));
  ASSERT_GT(g.num_edges(), 0u);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t a = g.arc_begin(u); a < g.arc_end(u); ++a) {
      const std::uint32_t v = g.arc_target(a);
      const std::uint32_t rev = g.reverse_arc(a);
      EXPECT_EQ(rev, g.arc_index(v, u));        // the binary search it replaces
      EXPECT_EQ(g.arc_target(rev), u);          // reverse arc points back
      EXPECT_EQ(g.reverse_arc(rev), a);         // involution
    }
  }
  // The selection path funnels through from_symmetric_adjacency; its
  // permutation must satisfy the same contract.
  FlatAdjacency sel;
  sel.offsets = {0, 2, 3, 4, 4};
  sel.neighbors = {1, 2, 3, 0};
  const CsrGraph s = CsrGraph::from_selections(std::move(sel));
  for (std::uint32_t u = 0; u < s.num_vertices(); ++u) {
    for (std::uint32_t a = s.arc_begin(u); a < s.arc_end(u); ++a) {
      EXPECT_EQ(s.reverse_arc(a), s.arc_index(s.arc_target(a), u));
      EXPECT_EQ(s.reverse_arc(s.reverse_arc(a)), a);
    }
  }
}

// --- CsrGraph::apply_edge_delta: the sens/dynamic overlay patcher --------

TEST(CsrEdgeDelta, RandomDeltasMatchFromEdgesOracle) {
  // Random base graph, then random removed/added splits; the patched graph
  // must be bit-identical (edge list AND adjacency order) to rebuilding
  // from the updated edge set.
  Rng rng(0xDE17A);
  for (std::uint64_t round = 0; round < 30; ++round) {
    const std::size_t n = 8 + rng.uniform_index(40);
    const CsrGraph g = CsrGraph::from_edges(n, random_edges(n, 3 * n, 0xDE17A + round));
    std::vector<std::pair<std::uint32_t, std::uint32_t>> removed, kept, added;
    for (const auto& e : g.edge_list()) {
      (rng.bernoulli(0.3) ? removed : kept).push_back(e);
    }
    // Candidate additions: sample absent pairs (sorted unique, u < v).
    for (std::size_t t = 0; t < n; ++t) {
      const auto u = static_cast<std::uint32_t>(rng.uniform_index(n));
      const auto v = static_cast<std::uint32_t>(rng.uniform_index(n));
      if (u == v || g.has_edge(u, v)) continue;
      added.emplace_back(std::min(u, v), std::max(u, v));
    }
    std::sort(added.begin(), added.end());
    added.erase(std::unique(added.begin(), added.end()), added.end());

    const CsrGraph patched = CsrGraph::apply_edge_delta(g, n, removed, added);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> want = kept;
    want.insert(want.end(), added.begin(), added.end());
    const CsrGraph oracle = CsrGraph::from_edges(n, want);
    ASSERT_EQ(patched.edge_list(), oracle.edge_list()) << "round " << round;
    for (std::uint32_t v = 0; v < n; ++v) {
      const auto a = patched.neighbors(v);
      const auto b = oracle.neighbors(v);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << "vertex " << v;
    }
    // Arc view must be rebuilt consistently (reverse arcs are involutions).
    for (std::size_t arc = 0; arc < patched.num_arcs(); ++arc) {
      ASSERT_EQ(patched.reverse_arc(patched.reverse_arc(arc)), arc);
    }
  }
}

TEST(CsrEdgeDelta, GrowsAndShrinksVertexSet) {
  using Delta = std::vector<std::pair<std::uint32_t, std::uint32_t>>;
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}});
  // Grow: new vertex 3 picks up an edge.
  const CsrGraph grown = CsrGraph::apply_edge_delta(g, 4, {}, Delta{{2, 3}});
  EXPECT_EQ(grown.num_vertices(), 4u);
  EXPECT_TRUE(grown.has_edge(2, 3));
  // Shrink: dropping vertex 3 requires removing its whole edge set.
  const CsrGraph back = CsrGraph::apply_edge_delta(grown, 3, Delta{{2, 3}}, {});
  EXPECT_EQ(back.edge_list(), g.edge_list());
  // Shrink to empty.
  const CsrGraph none = CsrGraph::apply_edge_delta(back, 0, Delta{{0, 1}, {1, 2}}, {});
  EXPECT_EQ(none.num_vertices(), 0u);
  EXPECT_EQ(none.num_edges(), 0u);
}

TEST(CsrEdgeDelta, ValidatesItsContract) {
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {1, 2}});
  using Delta = std::vector<std::pair<std::uint32_t, std::uint32_t>>;
  // Removing an absent edge / adding a present one.
  EXPECT_THROW((void)CsrGraph::apply_edge_delta(g, 4, Delta{{0, 2}}, {}),
               std::invalid_argument);
  EXPECT_THROW((void)CsrGraph::apply_edge_delta(g, 4, {}, Delta{{0, 1}}),
               std::invalid_argument);
  // Malformed pairs: u >= v, unsorted, out of range.
  EXPECT_THROW((void)CsrGraph::apply_edge_delta(g, 4, Delta{{1, 0}}, {}),
               std::invalid_argument);
  EXPECT_THROW((void)CsrGraph::apply_edge_delta(g, 4, Delta{{2, 2}}, {}),
               std::invalid_argument);
  EXPECT_THROW((void)CsrGraph::apply_edge_delta(g, 4, Delta{{1, 2}, {0, 1}}, {}),
               std::invalid_argument);
  EXPECT_THROW((void)CsrGraph::apply_edge_delta(g, 4, {}, Delta{{2, 9}}),
               std::out_of_range);
  // Dropping vertex 2 without removing its incident edge {1, 2}.
  EXPECT_THROW((void)CsrGraph::apply_edge_delta(g, 2, Delta{{0, 1}}, {}),
               std::invalid_argument);
}

TEST(UnionFindTest, AgreesWithComponents) {
  Rng rng(5);
  const std::size_t n = 200;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (int e = 0; e < 150; ++e)
    edges.emplace_back(static_cast<std::uint32_t>(rng.uniform_index(n)),
                       static_cast<std::uint32_t>(rng.uniform_index(n)));
  UnionFind uf(n);
  for (const auto& [u, v] : edges)
    if (u != v) uf.unite(u, v);
  const CsrGraph g = CsrGraph::from_edges(n, std::move(edges));
  const Components c = connected_components(g);
  for (std::uint32_t a = 0; a < n; ++a)
    for (std::uint32_t b = a + 1; b < n; b += 17)
      EXPECT_EQ(uf.connected(a, b), c.label[a] == c.label[b]);
}

}  // namespace
}  // namespace sens
