// Tests for sens/graph: CSR construction, BFS, Dijkstra, components,
// union-find.
#include <gtest/gtest.h>

#include <vector>

#include "sens/graph/bfs.hpp"
#include "sens/graph/components.hpp"
#include "sens/graph/csr.hpp"
#include "sens/graph/dijkstra.hpp"
#include "sens/graph/union_find.hpp"
#include "sens/rng/rng.hpp"

namespace sens {
namespace {

CsrGraph path_graph(std::size_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return CsrGraph::from_edges(n, std::move(edges));
}

TEST(Csr, BuildNormalizesEdges) {
  // Duplicates, reversed duplicates and self loops all collapse.
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 3}});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(2, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Csr, OutOfRangeThrows) {
  EXPECT_THROW((void)CsrGraph::from_edges(2, {{0, 5}}), std::out_of_range);
}

TEST(Csr, NeighborsSortedAndEdgeList) {
  const CsrGraph g = CsrGraph::from_edges(5, {{3, 1}, {3, 0}, {3, 4}, {2, 3}});
  const auto nbrs = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_DOUBLE_EQ(g.mean_degree(), 2.0 * 4.0 / 5.0);
  const auto edges = g.edge_list();
  EXPECT_EQ(edges.size(), 4u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(Bfs, DistancesOnPath) {
  const CsrGraph g = path_graph(6);
  const auto dist = bfs_distances(g, 0);
  for (std::uint32_t i = 0; i < 6; ++i) EXPECT_EQ(dist[i], i);
  EXPECT_EQ(bfs_distance(g, 0, 5), 5u);
  EXPECT_EQ(bfs_distance(g, 2, 2), 0u);
}

TEST(Bfs, Unreachable) {
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(bfs_distance(g, 0, 3), kUnreachable);
  EXPECT_EQ(bfs_distances(g, 0)[2], kUnreachable);
  EXPECT_TRUE(bfs_path(g, 0, 3).empty());
}

TEST(Bfs, PathValidAndShortest) {
  // Diamond with a long detour: 0-1-3, 0-2-3, 0-4-5-3.
  const CsrGraph g = CsrGraph::from_edges(6, {{0, 1}, {1, 3}, {0, 2}, {2, 3}, {0, 4}, {4, 5}, {5, 3}});
  const auto path = bfs_path(g, 0, 3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 3u);
  for (std::size_t i = 1; i < path.size(); ++i) EXPECT_TRUE(g.has_edge(path[i - 1], path[i]));
}

TEST(Bfs, PathSourceEqualsTarget) {
  const CsrGraph g = path_graph(3);
  const auto path = bfs_path(g, 1, 1);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 1u);
}

TEST(Dijkstra, MatchesBfsWithUnitWeights) {
  Rng rng(17);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  const std::size_t n = 80;
  for (int e = 0; e < 200; ++e)
    edges.emplace_back(static_cast<std::uint32_t>(rng.uniform_index(n)),
                       static_cast<std::uint32_t>(rng.uniform_index(n)));
  const CsrGraph g = CsrGraph::from_edges(n, std::move(edges));
  const auto hops = bfs_distances(g, 0);
  const auto costs = dijkstra_costs(g, 0, [](std::uint32_t, std::uint32_t) { return 1.0; });
  for (std::size_t v = 0; v < n; ++v) {
    if (hops[v] == kUnreachable) {
      EXPECT_EQ(costs[v], kInfCost);
    } else {
      EXPECT_DOUBLE_EQ(costs[v], static_cast<double>(hops[v]));
    }
  }
}

TEST(Dijkstra, WeightedShortcut) {
  // 0-1-2 cheap vs direct 0-2 expensive.
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  auto w = [](std::uint32_t a, std::uint32_t b) {
    return (a == 0 && b == 2) || (a == 2 && b == 0) ? 10.0 : 1.0;
  };
  EXPECT_DOUBLE_EQ(dijkstra_cost(g, 0, 2, w), 2.0);
  const auto path = dijkstra_path(g, 0, 2, w);
  EXPECT_EQ(path, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(Dijkstra, UnreachableIsInf) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}});
  EXPECT_EQ(dijkstra_cost(g, 0, 2, [](auto, auto) { return 1.0; }), kInfCost);
  EXPECT_TRUE(dijkstra_path(g, 0, 2, [](auto, auto) { return 1.0; }).empty());
}

TEST(Components, LabelsAndLargest) {
  const CsrGraph g = CsrGraph::from_edges(7, {{0, 1}, {1, 2}, {3, 4}, {5, 6}, {4, 5}});
  const Components c = connected_components(g);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.largest_size(), 4u);  // {3,4,5,6}
  EXPECT_TRUE(c.in_largest(3));
  EXPECT_FALSE(c.in_largest(0));
  EXPECT_EQ(c.label[0], c.label[2]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_EQ(c.largest_members(), (std::vector<std::uint32_t>{3, 4, 5, 6}));
}

TEST(Components, SingletonsCount) {
  const CsrGraph g = CsrGraph::from_edges(3, {});
  const Components c = connected_components(g);
  EXPECT_EQ(c.count(), 3u);
  EXPECT_EQ(c.largest_size(), 1u);
}

TEST(UnionFindTest, BasicInvariants) {
  UnionFind uf(10);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(0, 3));
  EXPECT_EQ(uf.set_size(1), 3u);
  EXPECT_EQ(uf.set_size(9), 1u);
}

TEST(UnionFindTest, AgreesWithComponents) {
  Rng rng(5);
  const std::size_t n = 200;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (int e = 0; e < 150; ++e)
    edges.emplace_back(static_cast<std::uint32_t>(rng.uniform_index(n)),
                       static_cast<std::uint32_t>(rng.uniform_index(n)));
  UnionFind uf(n);
  for (const auto& [u, v] : edges)
    if (u != v) uf.unite(u, v);
  const CsrGraph g = CsrGraph::from_edges(n, std::move(edges));
  const Components c = connected_components(g);
  for (std::uint32_t a = 0; a < n; ++a)
    for (std::uint32_t b = a + 1; b < n; b += 17)
      EXPECT_EQ(uf.connected(a, b), c.label[a] == c.label[b]);
}

}  // namespace
}  // namespace sens
