// Unit and property tests for sens/rng: engines, streams, distributions.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "sens/rng/rng.hpp"
#include "sens/support/stats.hpp"

namespace sens {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, StreamsAreIndependentAndStable) {
  Rng s0 = Rng::stream(9, 0);
  Rng s0again = Rng::stream(9, 0);
  Rng s1 = Rng::stream(9, 1);
  EXPECT_EQ(s0.next_u64(), s0again.next_u64());
  EXPECT_NE(Rng::stream(9, 0).next_u64(), s1.next_u64());
  // Multi-index streams are distinct from single-index streams.
  EXPECT_NE(Rng::stream(9, 1, 2).next_u64(), Rng::stream(9, 1).next_u64());
  EXPECT_NE(Rng::stream(9, 1, 2, 3).next_u64(), Rng::stream(9, 1, 2).next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeMeanCorrect) {
  Rng rng(7);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform(-2.0, 6.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
  EXPECT_GE(s.min(), -2.0);
  EXPECT_LT(s.max(), 6.0);
}

TEST(Rng, UniformIndexBoundsAndCoverage) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const long v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW((void)rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(static_cast<std::uint64_t>(mean * 1000) + 1);
  RunningStats s;
  const int n = 20000;
  for (int i = 0; i < n; ++i) s.add(static_cast<double>(rng.poisson(mean)));
  // Poisson: mean == variance. Allow ~5 sigma of MC noise.
  const double tol = 5.0 * std::sqrt(mean / n) + 0.01;
  EXPECT_NEAR(s.mean(), mean, tol);
  EXPECT_NEAR(s.variance(), mean, 12.0 * mean / std::sqrt(static_cast<double>(n)) + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.1, 0.5, 1.0, 3.0, 10.0, 40.0, 80.0, 200.0));

TEST(Rng, PoissonEdgeCases) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_THROW((void)rng.poisson(-1.0), std::invalid_argument);
}

TEST(Rng, MixSeedSpreadsBits) {
  // Nearby inputs should hash to very different values.
  const std::uint64_t a = mix_seed(1, 1);
  const std::uint64_t b = mix_seed(1, 2);
  const std::uint64_t c = mix_seed(2, 1);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  int diff = __builtin_popcountll(a ^ b);
  EXPECT_GT(diff, 10);
}

}  // namespace
}  // namespace sens
