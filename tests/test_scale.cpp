// Scale-tier contracts (DESIGN.md §2.8): the streaming Poisson generator is
// bit-identical to the serial path and really is grid-major; spatial
// relabeling is an exact isomorphism (building on permuted points equals
// permuting the build); and the 32-bit index-width guards throw instead of
// truncating. This is the `scale` ctest label — the guarantees bench_e18
// relies on at n = 10^6.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "sens/geograph/point_set.hpp"
#include "sens/geograph/udg.hpp"
#include "sens/geometry/box.hpp"
#include "sens/graph/csr.hpp"
#include "sens/graph/flat_adjacency.hpp"
#include "sens/rng/rng.hpp"
#include "sens/spatial/reorder.hpp"
#include "sens/support/checked.hpp"
#include "sens/support/parallel.hpp"

namespace sens {
namespace {

constexpr std::uint64_t kSeed = 0x5CA1E;

void expect_same_points(const std::vector<Vec2>& a, const std::vector<Vec2>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit-for-bit, not approximately: both paths must draw the exact same
    // doubles from the exact same per-cell streams.
    EXPECT_EQ(a[i].x, b[i].x) << "point " << i;
    EXPECT_EQ(a[i].y, b[i].y) << "point " << i;
  }
}

// --- streaming generation ---------------------------------------------------

TEST(OrderedPoisson, MatchesSerialPathBitForBit) {
  const Box windows[] = {
      {{0.0, 0.0}, {7.0, 5.0}},          // integral bounds
      {{-3.5, -2.25}, {4.75, 1.5}},      // negative, fractional bounds
      {{10.125, 20.0}, {11.0, 20.875}},  // sub-cell window
  };
  for (const Box& window : windows) {
    const PointSet serial = poisson_point_set(window, 4.0, kSeed);
    const PointSet ordered = poisson_point_set_ordered(window, 4.0, kSeed);
    EXPECT_EQ(serial.intensity, ordered.intensity);
    expect_same_points(serial.points, ordered.points);
  }
}

TEST(OrderedPoisson, SerialOrderIsAlreadyGridMajor) {
  // The equality above is only meaningful if "grid-major" is a real
  // invariant of both paths: stable-sorting the serial output by
  // (cell row, cell column) must be a no-op.
  const PointSet serial = poisson_point_set({{0.0, 0.0}, {9.0, 9.0}}, 3.0, kSeed);
  std::vector<Vec2> sorted = serial.points;
  std::stable_sort(sorted.begin(), sorted.end(), [](Vec2 a, Vec2 b) {
    const auto cell = [](Vec2 p) {
      return std::pair<long, long>{static_cast<long>(std::floor(p.y)),
                                   static_cast<long>(std::floor(p.x))};
    };
    return cell(a) < cell(b);
  });
  expect_same_points(serial.points, sorted);
}

TEST(OrderedPoisson, ThreadCountInvariance) {
  const Box window{{0.0, 0.0}, {12.0, 8.0}};
  const unsigned restore = thread_count();
  set_thread_count(1);
  const PointSet one = poisson_point_set_ordered(window, 5.0, kSeed);
  set_thread_count(3);
  const PointSet three = poisson_point_set_ordered(window, 5.0, kSeed);
  set_thread_count(restore);
  expect_same_points(one.points, three.points);
}

TEST(OrderedPoisson, DegenerateInputs) {
  EXPECT_TRUE(poisson_point_set_ordered({{0.0, 0.0}, {8.0, 8.0}}, 0.0, kSeed).points.empty());
  EXPECT_TRUE(poisson_point_set_ordered({{2.0, 2.0}, {2.0, 5.0}}, 4.0, kSeed).points.empty());
  EXPECT_THROW((void)poisson_point_set_ordered({{0.0, 0.0}, {1.0, 1.0}}, -1.0, kSeed),
               std::invalid_argument);
}

// --- relabeling -------------------------------------------------------------

std::vector<std::uint32_t> random_permutation(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  Rng rng = Rng::stream(seed, 0x5E0);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.uniform_index(i)]);
  }
  return perm;
}

TEST(Reorder, InvertRoundTrip) {
  const std::vector<std::uint32_t> perm = random_permutation(257, kSeed);
  const std::vector<std::uint32_t> inv = invert_permutation(perm);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inv[perm[i]], i);
    EXPECT_EQ(perm[inv[i]], i);
  }
  EXPECT_EQ(invert_permutation(inv), perm);  // inversion is an involution
}

TEST(Reorder, InvertRejectsNonPermutations) {
  EXPECT_THROW((void)invert_permutation(std::vector<std::uint32_t>{0, 2}),
               std::invalid_argument);  // out of range
  EXPECT_THROW((void)invert_permutation(std::vector<std::uint32_t>{0, 1, 1}),
               std::invalid_argument);  // duplicate
}

TEST(Reorder, ApplyPointsRoundTrip) {
  const PointSet ps = poisson_point_set({{0.0, 0.0}, {6.0, 6.0}}, 4.0, kSeed);
  const std::vector<std::uint32_t> perm = random_permutation(ps.size(), kSeed);
  const std::vector<std::uint32_t> inv = invert_permutation(perm);
  const PointSet shuffled = apply_permutation(ps, perm);
  EXPECT_EQ(shuffled.intensity, ps.intensity);
  const PointSet back = apply_permutation(shuffled, inv);
  expect_same_points(back.points, ps.points);
  EXPECT_THROW((void)apply_permutation(std::span<const Vec2>(ps.points),
                                       std::vector<std::uint32_t>{0}),
               std::invalid_argument);  // size mismatch
}

TEST(Reorder, HilbertIndexIsInjective) {
  std::set<std::uint64_t> seen;
  for (std::uint32_t x = 0; x < 32; ++x) {
    for (std::uint32_t y = 0; y < 32; ++y) {
      seen.insert(hilbert_index_16(x * 2047, y * 2047));
    }
  }
  EXPECT_EQ(seen.size(), 32u * 32u);
}

TEST(Reorder, SpatialPermutationIsDeterministicPermutation) {
  const PointSet ps = poisson_point_set({{0.0, 0.0}, {8.0, 8.0}}, 4.0, kSeed);
  for (const SpatialOrder order : {SpatialOrder::kHilbert, SpatialOrder::kGridMajor}) {
    const std::vector<std::uint32_t> perm = spatial_order_permutation(ps.points, order);
    (void)invert_permutation(perm);  // throws unless a genuine permutation
    EXPECT_EQ(perm, spatial_order_permutation(ps.points, order));
  }
  EXPECT_TRUE(spatial_order_permutation({}, SpatialOrder::kHilbert).empty());
}

TEST(Reorder, FlatAdjacencyRelabelPreservesListOrder) {
  // Lists are (distance, index)-ordered payloads; relabeling must map the
  // entries without re-sorting them.
  FlatAdjacency adj;
  adj.offsets = {0, 2, 3, 3};
  adj.neighbors = {2, 1, 0, /* vertex 2: empty */};
  const std::vector<std::uint32_t> perm{2, 0, 1};  // new 0 = old 2, ...
  const FlatAdjacency out = apply_permutation(adj, perm);
  // inv = {1, 2, 0}: old list of perm[new], entries mapped through inv.
  EXPECT_EQ(out.offsets, (std::vector<std::uint32_t>{0, 0, 2, 3}));
  EXPECT_EQ(out.neighbors, (std::vector<std::uint32_t>{0, 2, 1}));
}

TEST(Reorder, HilbertBuildMatchesRelabeledBuildOracle) {
  // The layout contract at the heart of E18: building the UDG on permuted
  // points is the *same graph* as permuting the built UDG — bit for bit,
  // edge lists and coordinates. (UDG only: HNG promotion levels are keyed
  // by node id, so relabeling resamples its hierarchy — DESIGN.md §2.8.)
  const Box window{{0.0, 0.0}, {12.0, 12.0}};
  const PointSet ps = poisson_point_set(window, 4.0, kSeed);
  const GeoGraph built = build_udg(ps.points, window, 1.0);

  const std::vector<std::uint32_t> perm =
      spatial_order_permutation(ps.points, SpatialOrder::kHilbert);
  const std::vector<Vec2> permuted = apply_permutation(std::span<const Vec2>(ps.points), perm);
  const GeoGraph rebuilt = build_udg(permuted, window, 1.0);
  const GeoGraph relabeled = apply_permutation(built, perm);

  expect_same_points(rebuilt.points, relabeled.points);
  EXPECT_EQ(rebuilt.graph.edge_list(), relabeled.graph.edge_list());
  EXPECT_EQ(rebuilt.graph.num_edges(), built.graph.num_edges());
}

// --- index-width guards -----------------------------------------------------

TEST(ScaleGuards, CheckedU32Boundary) {
  EXPECT_EQ(checked_u32(0xffffffffull, "test"), 0xffffffffu);
  EXPECT_THROW((void)checked_u32(0x100000000ull, "test"), std::overflow_error);
}

TEST(ScaleGuards, CsrBuilderRejectsHugeVertexCount) {
  CsrGraph::Builder b;
  b.add_edge(0, 1);
  // The guard fires at entry, before any offsets allocation — a 2^32 vertex
  // count must throw, not attempt a 16 GiB resize or wrap silently.
  EXPECT_THROW((void)std::move(b).build(std::size_t{1} << 32), std::overflow_error);
}

TEST(ScaleGuards, ApplyEdgeDeltaRejectsHugeVertexCount) {
  // The delta path (PR 7) predates the checked builders: a grow delta to a
  // 2^32 vertex count must throw at entry — before the counting sort would
  // attempt a 16 GiB offsets allocation or wrap a 32-bit prefix sum.
  const CsrGraph g = CsrGraph::from_edges(2, {{0, 1}});
  EXPECT_THROW((void)CsrGraph::apply_edge_delta(g, std::size_t{1} << 32, {}, {}),
               std::overflow_error);
}

TEST(ScaleGuards, FlatAdjacencyBuilderRejectsOffsetOverflow) {
  // Two vertices whose degrees each fit u32 but whose prefix sum does not:
  // the checked prefix must throw before the neighbors resize is attempted.
  EXPECT_THROW((void)build_flat_adjacency(
                   2, [](std::size_t) { return std::size_t{0x80000000}; },
                   [](std::size_t, std::uint32_t*) { FAIL() << "fill must never run"; }),
               std::overflow_error);
  EXPECT_THROW((void)build_flat_adjacency(
                   1, [](std::size_t) { return std::size_t{0x100000000}; },
                   [](std::size_t, std::uint32_t*) { FAIL() << "fill must never run"; }),
               std::overflow_error);
}

}  // namespace
}  // namespace sens
