// Unit tests for sens/support: statistics, tables, CLI, parallel utilities.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sens/support/cli.hpp"
#include "sens/support/parallel.hpp"
#include "sens/support/stats.hpp"
#include "sens/support/table.hpp"
#include "sens/support/timer.hpp"

namespace sens {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i * 0.7) * 10.0;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small, big;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) big.add(i % 2);
  EXPECT_GT(small.ci95_halfwidth(), big.ci95_halfwidth());
}

TEST(Proportion, WilsonIntervalBracketsEstimate) {
  const Proportion p{60, 100};
  EXPECT_DOUBLE_EQ(p.estimate(), 0.6);
  EXPECT_LT(p.wilson_low(), 0.6);
  EXPECT_GT(p.wilson_high(), 0.6);
  EXPECT_GT(p.wilson_low(), 0.49);
  EXPECT_LT(p.wilson_high(), 0.70);
}

TEST(Proportion, DegenerateCases) {
  EXPECT_DOUBLE_EQ((Proportion{0, 0}).estimate(), 0.0);
  EXPECT_DOUBLE_EQ((Proportion{0, 10}).wilson_low(), 0.0);
  EXPECT_DOUBLE_EQ((Proportion{10, 10}).wilson_high(), 1.0);
  EXPECT_GT((Proportion{10, 10}).wilson_low(), 0.6);
}

TEST(LineFit, RecoversExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double v : x) y.push_back(3.0 - 2.0 * v);
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, -2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LineFit, SizeMismatchThrows) {
  std::vector<double> x{1, 2};
  std::vector<double> y{1};
  EXPECT_THROW((void)fit_line(x, y), std::invalid_argument);
}

TEST(LineFit, ExponentialFitRecoversRate) {
  std::vector<double> x, y;
  for (int i = 1; i <= 12; ++i) {
    x.push_back(i);
    y.push_back(5.0 * std::exp(-0.8 * i));
  }
  const LineFit fit = fit_exponential(x, y);
  EXPECT_NEAR(fit.slope, -0.8, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 5.0, 1e-9);
}

TEST(LineFit, ExponentialSkipsNonPositive) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{std::exp(-1.0), 0.0, std::exp(-3.0), std::exp(-4.0)};
  const LineFit fit = fit_exponential(x, y);
  EXPECT_EQ(fit.n, 3u);
  EXPECT_NEAR(fit.slope, -1.0, 1e-9);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-3.0);   // clamps into bin 0
  h.add(25.0);   // clamps into bin 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(TableTest, MarkdownShape) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string md = t.markdown();
  EXPECT_NE(md.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(md.find("| 333 | 4  |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, CsvAndFormat) {
  Table t({"x", "y"});
  t.add_row({Table::fmt(3.14159, 3), Table::fmt_int(42)});
  EXPECT_EQ(t.csv(), "x,y\n3.14,42\n");
}

TEST(CliTest, ParsesForms) {
  // Note: a bare token after `--flag` would parse as its value (documented
  // greedy form), so the positional argument comes first.
  const char* argv[] = {"prog", "pos1", "--alpha=1.5", "--beta", "7", "--flag"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.get("alpha", 0.0), 1.5);
  EXPECT_EQ(cli.get("beta", 0L), 7L);
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_FALSE(cli.has("gamma"));
  EXPECT_EQ(cli.get("gamma", std::string("dft")), "dft");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(ParallelTest, CoversAllIndices) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, ChunksPartitionTheIndexRange) {
  // parallel_for_chunks hands out half-open, non-overlapping chunks that
  // cover [0, n) exactly once, with the deterministic layout reduce uses.
  constexpr std::size_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  set_thread_count(4);
  parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end, n);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  set_thread_count(0);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, ChunkLayoutMatchesDispatchedChunks) {
  // The public chunk_layout(n) describes exactly the chunks that
  // parallel_for_chunks hands out: index_of(begin) hits every chunk index
  // [0, count) exactly once (the contract per-chunk collectors rely on,
  // DESIGN.md §2.3).
  for (const std::size_t n : {1ul, 7ul, 1024ul, 1025ul, 5000ul}) {
    const ChunkLayout layout = chunk_layout(n);
    std::vector<std::atomic<int>> seen(layout.count);
    std::atomic<std::size_t> calls{0};
    parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
      ASSERT_EQ(end - begin, std::min(layout.size, n - begin));
      seen[layout.index_of(begin)].fetch_add(1);
      calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), layout.count) << "n=" << n;
    for (const auto& s : seen) EXPECT_EQ(s.load(), 1) << "n=" << n;
  }
  EXPECT_EQ(chunk_layout(0).count, 0u);
}

TEST(ParallelTest, CollectChunkOrderedEqualsSerialScan) {
  // The chunk-ordered collector must equal one serial left-to-right scan at
  // any thread count (DESIGN.md §2.3) — the contract future variable-output
  // sweeps rely on even though the graph builders moved to the two-pass
  // count-then-write shape.
  auto scan = [](std::size_t begin, std::size_t end, auto& sink) {
    for (std::size_t i = begin; i < end; ++i) {
      if (i % 3 == 0) sink.push_back(i);
      if (i % 7 == 0) sink.push_back(10 * i);
    }
  };
  set_thread_count(1);
  const auto serial = collect_chunk_ordered<std::size_t>(4000, scan);
  for (const unsigned threads : {2u, 8u}) {
    set_thread_count(threads);
    EXPECT_EQ(serial, collect_chunk_ordered<std::size_t>(4000, scan)) << "threads=" << threads;
  }
  set_thread_count(0);
}

TEST(ParallelTest, SumBitIdenticalAcrossThreadCounts) {
  // Floating-point addition is not associative, so bit-identical sums prove
  // the reduction really combines per-chunk partials in a thread-count-
  // independent order. EXPECT_EQ on doubles is an exact (bitwise) compare.
  auto task = [](std::size_t i) { return std::sin(static_cast<double>(i)) * 1e-3; };
  set_thread_count(1);
  const double serial = parallel_sum(5000, task);
  for (const unsigned threads : {2u, 3u, 5u, 8u}) {
    set_thread_count(threads);
    EXPECT_EQ(serial, parallel_sum(5000, task)) << "threads=" << threads;
  }
  set_thread_count(0);
  EXPECT_EQ(serial, parallel_sum(5000, task)) << "default thread count";
}

TEST(ParallelTest, ReduceRespectsChunkOrderWithNonCommutativeCombine) {
  // String concatenation is non-commutative: any out-of-order combine of the
  // per-chunk partials would scramble the digits.
  auto digits = [](std::size_t n) {
    std::string serial;
    for (std::size_t i = 0; i < n; ++i) serial += static_cast<char>('0' + i % 10);
    return serial;
  };
  auto map = [](std::size_t i) { return std::string(1, static_cast<char>('0' + i % 10)); };
  auto combine = [](std::string a, std::string b) { return a + b; };
  set_thread_count(4);
  EXPECT_EQ(parallel_reduce(3000, std::string{}, map, combine), digits(3000));
  set_thread_count(0);
}

TEST(ParallelTest, ReduceDegenerateSizes) {
  auto map = [](std::size_t i) { return static_cast<double>(i) + 1.0; };
  auto add = [](double a, double b) { return a + b; };
  EXPECT_DOUBLE_EQ(parallel_reduce(0, 42.0, map, add), 42.0);  // init passes through
  EXPECT_DOUBLE_EQ(parallel_reduce(1, 0.5, map, add), 1.5);
}

TEST(ParallelTest, PropagatesException) {
  EXPECT_THROW(parallel_for(100,
                            [](std::size_t i) {
                              if (i == 31) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelTest, PropagatesExceptionFromWorkerChunks) {
  // Force real pool threads and make every chunk throw: the first exception
  // must drain the cursor and surface in the caller.
  set_thread_count(4);
  EXPECT_THROW(parallel_for(20000,
                            [](std::size_t i) {
                              if (i % 7 == 3) throw std::runtime_error("chunked boom");
                            }),
               std::runtime_error);
  EXPECT_THROW(
      (void)parallel_reduce(
          20000, 0.0,
          [](std::size_t i) {
            if (i == 19999) throw std::logic_error("last index");
            return 0.0;
          },
          [](double a, double b) { return a + b; }),
      std::logic_error);
  set_thread_count(0);
  // The pool must stay usable after an exceptional job.
  EXPECT_DOUBLE_EQ(parallel_sum(10, [](std::size_t) { return 1.0; }), 10.0);
}

TEST(ParallelTest, NestedCallsRunInlineAndStayDeterministic) {
  auto inner_task = [](std::size_t i) { return std::sin(static_cast<double>(i)) * 1e-3; };
  set_thread_count(1);
  const double expected = parallel_sum(2000, inner_task);
  set_thread_count(4);
  std::vector<double> inner(8, 0.0);
  std::atomic<int> visits{0};
  parallel_for(inner.size(), [&](std::size_t i) {
    inner[i] = parallel_sum(2000, inner_task);  // nested: must not deadlock
    visits.fetch_add(1);
  });
  set_thread_count(0);
  EXPECT_EQ(visits.load(), 8);
  for (const double v : inner) EXPECT_EQ(v, expected);  // bitwise, nested == serial
}

TEST(ParallelTest, MapPlacesResults) {
  const auto out = parallel_map<int>(64, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 64u);
  EXPECT_EQ(out[7], 49);
  EXPECT_EQ(out[63], 63 * 63);
}

TEST(ParallelTest, ThreadCountOverrideRoundTrip) {
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(0);
  EXPECT_EQ(thread_count(), default_thread_count());
}

// --- reentrancy contract (DESIGN.md §2.6): top-level parallel calls issued
// concurrently from distinct user threads share the pool without
// serializing, without deadlock, and with bit-identical results. These run
// under -fsanitize=thread in the `concurrency` ctest tier.

TEST(ParallelReentrancy, ConcurrentTopLevelCallsBitIdentical) {
  auto task = [](std::size_t i) { return std::sin(static_cast<double>(i)) * 1e-3; };
  set_thread_count(1);
  const double expected = parallel_sum(5000, task);
  set_thread_count(4);
  constexpr std::size_t kCallers = 6;
  std::vector<double> results(kCallers, 0.0);
  {
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (std::size_t c = 0; c < kCallers; ++c) {
      callers.emplace_back([&results, &task, c] {
        // Several rounds per caller so job submissions overlap in time.
        for (int round = 0; round < 4; ++round) results[c] = parallel_sum(5000, task);
      });
    }
    for (auto& t : callers) t.join();
  }
  set_thread_count(0);
  for (const double r : results) EXPECT_EQ(r, expected);  // bitwise
}

TEST(ParallelReentrancy, ConcurrentCallersWithNestedCalls) {
  auto inner_task = [](std::size_t i) { return std::sin(static_cast<double>(i)) * 1e-3; };
  set_thread_count(1);
  const double expected = parallel_sum(1500, inner_task);
  set_thread_count(4);
  constexpr std::size_t kCallers = 4;
  std::vector<double> results(kCallers, 0.0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      // Each caller's job itself issues nested parallel calls: the nested
      // ones must run inline on whichever thread executes the chunk.
      std::vector<double> inner(6, 0.0);
      parallel_for(inner.size(), [&](std::size_t i) { inner[i] = parallel_sum(1500, inner_task); });
      results[c] = inner[0];
      for (const double v : inner) EXPECT_EQ(v, inner[0]);
    });
  }
  for (auto& t : callers) t.join();
  set_thread_count(0);
  for (const double r : results) EXPECT_EQ(r, expected);
}

TEST(ParallelReentrancy, ExceptionInOneCallerLeavesOthersAndPoolIntact) {
  set_thread_count(4);
  std::atomic<int> ok_callers{0};
  std::atomic<int> caught{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&, c] {
      if (c == 0) {
        try {
          parallel_for(20000, [](std::size_t i) {
            if (i % 11 == 5) throw std::runtime_error("caller 0 boom");
          });
        } catch (const std::runtime_error&) {
          caught.fetch_add(1);
        }
      } else {
        const double sum = parallel_sum(20000, [](std::size_t) { return 1.0; });
        if (sum == 20000.0) ok_callers.fetch_add(1);
      }
    });
  }
  for (auto& t : callers) t.join();
  set_thread_count(0);
  EXPECT_EQ(caught.load(), 1);
  EXPECT_EQ(ok_callers.load(), 3);
  // The pool must stay usable after the exceptional job retired.
  EXPECT_DOUBLE_EQ(parallel_sum(10, [](std::size_t) { return 1.0; }), 10.0);
}

TEST(ParallelReentrancy, ManyCallersManyRoundsNoDeadlock) {
  // Saturate the pool: more caller threads than helpers, many short jobs.
  // Every caller participates in its own job, so all must finish even when
  // no helper ever picks their tickets up.
  set_thread_count(3);
  constexpr std::size_t kCallers = 8;
  std::atomic<std::size_t> completed{0};
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 16; ++round) {
        std::atomic<std::size_t> hits{0};
        parallel_for(2048, [&](std::size_t) { hits.fetch_add(1, std::memory_order_relaxed); });
        if (hits.load() == 2048) completed.fetch_add(1);
      }
    });
  }
  for (auto& t : callers) t.join();
  set_thread_count(0);
  EXPECT_EQ(completed.load(), kCallers * 16);
}

TEST(TimerTest, MeasuresSomething) {
  Timer t;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), 0.0);
}

}  // namespace
}  // namespace sens
