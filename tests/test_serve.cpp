// Tests for sens/serve: the landmark distance oracle, the batched
// QueryEngine (exact, estimated and route serving), and the §2.6 serving
// contract — one shared engine, many concurrent callers, bit-identical
// answers. The ServeConcurrency suite is the TSan-backed `concurrency`
// ctest tier together with ParallelReentrancy in test_support.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "sens/core/sens_router.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/graph/bfs.hpp"
#include "sens/graph/csr.hpp"
#include "sens/graph/dijkstra.hpp"
#include "sens/rng/rng.hpp"
#include "sens/serve/landmark_oracle.hpp"
#include "sens/serve/query_engine.hpp"
#include "sens/support/parallel.hpp"

namespace sens {
namespace {

/// Deterministic symmetric weight for edge {u, v} — irregular enough that
/// shortest paths are not hop counts.
double edge_weight(std::uint32_t u, std::uint32_t v) {
  const std::uint32_t lo = std::min(u, v);
  const std::uint32_t hi = std::max(u, v);
  return 1.0 + static_cast<double>((lo * 2654435761u + hi * 40503u) % 97) / 97.0;
}

struct TestGraph {
  CsrGraph graph;
  std::vector<double> weights;
};

/// Random sparse graph: a Hamiltonian-ish backbone keeping one big
/// component plus random chords, and `island` extra vertices forming a
/// separate small component (adversarial disconnected pairs).
TestGraph make_graph(std::size_t n, std::size_t chords, std::uint64_t seed,
                     std::size_t island = 0) {
  Rng rng = Rng::stream(seed, 0x57a9, 0);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  for (std::size_t c = 0; c < chords; ++c)
    edges.emplace_back(static_cast<std::uint32_t>(rng.uniform_index(n)),
                       static_cast<std::uint32_t>(rng.uniform_index(n)));
  const std::size_t total = n + island;
  for (std::uint32_t i = static_cast<std::uint32_t>(n); i + 1 < total; ++i)
    edges.emplace_back(i, i + 1);
  TestGraph tg;
  tg.graph = CsrGraph::from_edges(total, std::move(edges));
  tg.weights = tg.graph.arc_weights(edge_weight);
  return tg;
}

/// Deterministic query batch over [0, n) vertex ids.
std::vector<Query> make_queries(std::size_t count, std::size_t n, std::uint64_t seed) {
  Rng rng = Rng::stream(seed, 0x57a9, 1);
  std::vector<Query> qs(count);
  for (auto& q : qs) {
    q.src = static_cast<std::uint32_t>(rng.uniform_index(n));
    q.dst = static_cast<std::uint32_t>(rng.uniform_index(n));
  }
  return qs;
}

TEST(ServeSmoke, ExactMatchesDijkstra) {
  const TestGraph tg = make_graph(120, 60, 7);
  const QueryEngine engine(tg.graph, tg.weights);
  const auto qs = make_queries(50, tg.graph.num_vertices(), 7);
  std::vector<double> got(qs.size());
  engine.exact_distances(qs, got);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(got[i], dijkstra_cost(tg.graph, qs[i].src, qs[i].dst, tg.weights))
        << "query " << i;
  }
}

TEST(ServeOracle, BoundsBracketExactDistance) {
  const TestGraph tg = make_graph(90, 45, 11);
  const LandmarkOracle oracle =
      LandmarkOracle::build(tg.graph, tg.weights, {.num_landmarks = 8, .seed = 11});
  DijkstraScratch scratch;
  const std::size_t n = tg.graph.num_vertices();
  for (std::uint32_t s = 0; s < n; s += 7) {
    for (std::uint32_t t = 0; t < n; t += 5) {
      const double exact = dijkstra_cost(tg.graph, s, t, tg.weights, scratch);
      const LandmarkOracle::Bounds b = oracle.bounds(s, t);
      // FP tolerance: the label sums/differences and the Dijkstra
      // accumulation round differently.
      const double eps = 1e-9 * (1.0 + std::abs(exact));
      EXPECT_LE(b.lower, exact + eps) << s << "->" << t;
      if (exact < kInfCost) {
        EXPECT_GE(b.upper + eps, exact) << s << "->" << t;
      }
    }
  }
}

TEST(ServeOracle, LandmarksClampedAndDistinct) {
  const TestGraph tg = make_graph(20, 10, 3);
  // k >= n: every vertex becomes a landmark, exactly once.
  const LandmarkOracle oracle =
      LandmarkOracle::build(tg.graph, tg.weights, {.num_landmarks = 500, .seed = 3});
  EXPECT_EQ(oracle.num_landmarks(), tg.graph.num_vertices());
  std::vector<std::uint32_t> ids(oracle.landmarks().begin(), oracle.landmarks().end());
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  // With every vertex a landmark, the bracket collapses to the exact
  // distance for every pair (landmark == s gives |0 - d| = d both ways).
  DijkstraScratch scratch;
  for (std::uint32_t s = 0; s < 20; s += 3) {
    for (std::uint32_t t = 0; t < 20; t += 4) {
      const double exact = dijkstra_cost(tg.graph, s, t, tg.weights, scratch);
      const LandmarkOracle::Bounds b = oracle.bounds(s, t);
      const double eps = 1e-9 * (1.0 + std::abs(exact));
      EXPECT_NEAR(b.lower, exact, eps);
      EXPECT_NEAR(b.upper, exact, eps);
    }
  }
}

TEST(ServeOracle, FarthestPointPicksAreDistinctAndDeterministic) {
  const TestGraph tg = make_graph(160, 80, 11);
  const LandmarkOracleParams params{.num_landmarks = 12,
                                    .seed = 11,
                                    .selection = LandmarkSelection::kFarthestPoint};
  const LandmarkOracle a = LandmarkOracle::build(tg.graph, tg.weights, params);
  const LandmarkOracle b = LandmarkOracle::build(tg.graph, tg.weights, params);
  ASSERT_EQ(a.num_landmarks(), 12u);
  EXPECT_TRUE(std::equal(a.landmarks().begin(), a.landmarks().end(), b.landmarks().begin()));
  std::vector<std::uint32_t> ids(a.landmarks().begin(), a.landmarks().end());
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  // The max-min pick is thread-count-invariant (it is serial by design).
  set_thread_count(1);
  const LandmarkOracle serial = LandmarkOracle::build(tg.graph, tg.weights, params);
  set_thread_count(8);
  const LandmarkOracle wide = LandmarkOracle::build(tg.graph, tg.weights, params);
  set_thread_count(0);
  EXPECT_TRUE(
      std::equal(serial.landmarks().begin(), serial.landmarks().end(), wide.landmarks().begin()));
}

TEST(ServeOracle, FarthestPointCoversEveryComponentFirst) {
  // 50-vertex backbone plus a 6-vertex island: unreached counts as
  // infinitely far, so the island must receive a pivot by the second pick.
  const TestGraph tg = make_graph(50, 20, 13, /*island=*/6);
  const LandmarkOracle oracle = LandmarkOracle::build(
      tg.graph, tg.weights,
      {.num_landmarks = 2, .seed = 13, .selection = LandmarkSelection::kFarthestPoint});
  ASSERT_EQ(oracle.num_landmarks(), 2u);
  const auto lm = oracle.landmarks();
  const bool first_in_island = lm[0] >= 50;
  const bool second_in_island = lm[1] >= 50;
  EXPECT_NE(first_in_island, second_in_island)
      << "one pivot per component before any component gets two";
}

TEST(ServeOracle, FarthestPointCertificationIsSound) {
  // Spread pivots keep the bracket useful (a healthy certified share on
  // the E17-style workload — which pivot set certifies *more* is workload-
  // and seed-dependent, so no cross-policy comparison here) and, above
  // all, sound: a certified answer never undershoots the exact distance
  // and never overshoots the stretch budget.
  const TestGraph tg = make_graph(400, 240, 21);
  const auto qs = make_queries(300, 400, 21);
  std::vector<double> est(qs.size());
  const QueryEngine farthest(tg.graph, tg.weights,
                             {.num_landmarks = 16,
                              .max_stretch = 1.2,
                              .seed = 21,
                              .selection = LandmarkSelection::kFarthestPoint});
  const ServeStats sf = farthest.estimate_distances(qs, est);
  EXPECT_GT(sf.certified, qs.size() / 20) << "the fast path barely fires";
  std::vector<double> exact(qs.size());
  farthest.exact_distances(qs, exact);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_GE(est[i], exact[i] - 1e-9);
    if (est[i] < kInfCost) {
      EXPECT_LE(est[i], 1.2 * exact[i] + 1e-9);
    }
  }
}

TEST(ServeOracle, ZeroLandmarksNeverCertifiesConnectedPairs) {
  const TestGraph tg = make_graph(30, 15, 5);
  const QueryEngine engine(tg.graph, tg.weights, {.num_landmarks = 0});
  EXPECT_EQ(engine.oracle().num_landmarks(), 0u);
  const auto qs = make_queries(20, 30, 5);
  std::vector<double> est(qs.size());
  const ServeStats stats = engine.estimate_distances(qs, est);
  // Everything except s == t must fall back to exact Dijkstra.
  std::vector<double> exact(qs.size());
  engine.exact_distances(qs, exact);
  for (std::size_t i = 0; i < qs.size(); ++i) EXPECT_EQ(est[i], exact[i]);
  std::size_t self = 0;
  for (const Query& q : qs) self += q.src == q.dst ? 1 : 0;
  EXPECT_EQ(stats.certified, self);
  EXPECT_EQ(stats.exact, qs.size() - self);
}

TEST(ServeEstimate, CertifiedWithinStretchAndStatsAddUp) {
  const TestGraph tg = make_graph(200, 120, 17);
  const QueryEngineParams params{.num_landmarks = 12, .max_stretch = 1.2, .seed = 17};
  const QueryEngine engine(tg.graph, tg.weights, params);
  const auto qs = make_queries(300, tg.graph.num_vertices(), 17);
  std::vector<double> est(qs.size());
  const ServeStats stats = engine.estimate_distances(qs, est);
  EXPECT_EQ(stats.queries, qs.size());
  EXPECT_EQ(stats.certified + stats.exact, stats.queries);
  std::vector<double> exact(qs.size());
  engine.exact_distances(qs, exact);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    // Every answer is exact or a certified overestimate within the budget.
    EXPECT_GE(est[i] + 1e-9 * (1.0 + std::abs(exact[i])), exact[i]) << "query " << i;
    if (exact[i] > 0.0 && exact[i] < kInfCost) {
      EXPECT_LE(est[i], params.max_stretch * exact[i] * (1.0 + 1e-12)) << "query " << i;
    } else {
      EXPECT_EQ(est[i], exact[i]) << "query " << i;  // 0 and inf answered exactly
    }
  }
}

TEST(ServeEstimate, SelfAndDuplicateQueries) {
  const TestGraph tg = make_graph(60, 30, 23);
  const QueryEngine engine(tg.graph, tg.weights, {.num_landmarks = 6, .seed = 23});
  // Duplicates (including self queries) must produce bit-identical slots.
  const std::vector<Query> qs = {{5, 40}, {5, 40}, {12, 12}, {5, 40}, {12, 12}, {0, 59}, {0, 59}};
  std::vector<double> est(qs.size());
  const ServeStats stats = engine.estimate_distances(qs, est);
  EXPECT_EQ(stats.queries, qs.size());
  EXPECT_EQ(est[0], est[1]);
  EXPECT_EQ(est[1], est[3]);
  EXPECT_EQ(est[2], 0.0);
  EXPECT_EQ(est[4], 0.0);
  EXPECT_EQ(est[5], est[6]);
}

TEST(ServeEstimate, DisconnectedPairsCertifiedInfinite) {
  // 80-vertex giant + 8-vertex island: cross-component queries must come
  // back infinite, and (with at least one landmark in either component)
  // certified without a fallback Dijkstra.
  const TestGraph tg = make_graph(80, 40, 29, 8);
  const QueryEngine engine(tg.graph, tg.weights, {.num_landmarks = 88, .seed = 29});
  const std::vector<Query> qs = {{0, 85}, {85, 0}, {79, 80}, {82, 3}};
  std::vector<double> est(qs.size());
  const ServeStats stats = engine.estimate_distances(qs, est);
  for (std::size_t i = 0; i < qs.size(); ++i) EXPECT_EQ(est[i], kInfCost) << "query " << i;
  EXPECT_EQ(stats.certified, qs.size());
  EXPECT_EQ(stats.exact, 0u);
}

TEST(ServeRoutes, PathsValidAndCostMatchesDistance) {
  const TestGraph tg = make_graph(150, 80, 31, 6);
  const QueryEngine engine(tg.graph, tg.weights);
  auto qs = make_queries(60, tg.graph.num_vertices(), 31);
  qs.push_back({10, 10});     // self: single-vertex path
  qs.push_back({0, 152});     // disconnected: empty path
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> nodes;
  engine.routes(qs, offsets, nodes);
  ASSERT_EQ(offsets.size(), qs.size() + 1);
  EXPECT_EQ(offsets.back(), nodes.size());
  std::vector<double> exact(qs.size());
  engine.exact_distances(qs, exact);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto path = std::span<const std::uint32_t>(nodes).subspan(
        offsets[i], offsets[i + 1] - offsets[i]);
    if (exact[i] >= kInfCost) {
      EXPECT_TRUE(path.empty()) << "query " << i;
      continue;
    }
    ASSERT_FALSE(path.empty()) << "query " << i;
    EXPECT_EQ(path.front(), qs[i].src);
    EXPECT_EQ(path.back(), qs[i].dst);
    double cost = 0.0;
    for (std::size_t j = 1; j < path.size(); ++j) {
      ASSERT_TRUE(tg.graph.has_edge(path[j - 1], path[j])) << "query " << i;
      cost += edge_weight(path[j - 1], path[j]);
    }
    // Same additions in the same order as the Dijkstra relaxation chain.
    EXPECT_EQ(cost, exact[i]) << "query " << i;
  }
}

TEST(ServeHops, MatchesBfs) {
  const TestGraph tg = make_graph(100, 50, 37, 5);
  const QueryEngine engine(tg.graph, tg.weights);
  const auto qs = make_queries(80, tg.graph.num_vertices(), 37);
  std::vector<std::uint32_t> hops(qs.size());
  engine.hop_distances(qs, hops);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(hops[i], bfs_distance(tg.graph, qs[i].src, qs[i].dst)) << "query " << i;
  }
}

TEST(ServeSingleQuery, MatchesBatchBitExact) {
  const TestGraph tg = make_graph(120, 70, 41);
  const QueryEngine engine(tg.graph, tg.weights, {.num_landmarks = 10, .seed = 41});
  const auto qs = make_queries(100, tg.graph.num_vertices(), 41);
  std::vector<double> batch(qs.size());
  const ServeStats batch_stats = engine.estimate_distances(qs, batch);
  RouteScratch scratch;
  ServeStats single_stats;
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(engine.estimate_distance(qs[i], scratch, single_stats), batch[i]) << "query " << i;
  }
  EXPECT_EQ(single_stats.queries, batch_stats.queries);
  EXPECT_EQ(single_stats.certified, batch_stats.certified);
  EXPECT_EQ(single_stats.exact, batch_stats.exact);
}

// --- the §2.6 serving contract under real concurrency (TSan tier) ---

TEST(ServeConcurrency, ConcurrentCallersMatchSingleThreadBitExact) {
  const TestGraph tg = make_graph(400, 250, 43, 10);
  const QueryEngine engine(tg.graph, tg.weights, {.num_landmarks = 12, .seed = 43});
  const auto qs = make_queries(2000, tg.graph.num_vertices(), 43);

  // Reference: one caller, serial worker pool.
  set_thread_count(1);
  std::vector<double> ref_exact(qs.size());
  std::vector<double> ref_est(qs.size());
  engine.exact_distances(qs, ref_exact);
  const ServeStats ref_stats = engine.estimate_distances(qs, ref_est);

  // 4 caller threads share the engine, each slicing a disjoint quarter of
  // the batch, with the pool's helpers active underneath (reentrant runs).
  set_thread_count(4);
  constexpr std::size_t kCallers = 4;
  std::vector<double> got_exact(qs.size());
  std::vector<double> got_est(qs.size());
  std::vector<ServeStats> got_stats(kCallers);
  {
    std::vector<std::thread> callers;
    const std::size_t slice = qs.size() / kCallers;
    for (std::size_t c = 0; c < kCallers; ++c) {
      callers.emplace_back([&, c] {
        const std::size_t begin = c * slice;
        const std::size_t count = c + 1 == kCallers ? qs.size() - begin : slice;
        const auto sub = std::span<const Query>(qs).subspan(begin, count);
        engine.exact_distances(sub, std::span<double>(got_exact).subspan(begin, count));
        got_stats[c] =
            engine.estimate_distances(sub, std::span<double>(got_est).subspan(begin, count));
      });
    }
    for (auto& t : callers) t.join();
  }
  set_thread_count(0);

  EXPECT_EQ(0, std::memcmp(ref_exact.data(), got_exact.data(), qs.size() * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(ref_est.data(), got_est.data(), qs.size() * sizeof(double)));
  ServeStats total;
  for (const ServeStats& s : got_stats) total += s;
  EXPECT_EQ(total.queries, ref_stats.queries);
  EXPECT_EQ(total.certified, ref_stats.certified);
  EXPECT_EQ(total.exact, ref_stats.exact);
}

TEST(ServeConcurrency, ConcurrentRouteServingBitExact) {
  const TestGraph tg = make_graph(300, 160, 47, 7);
  const QueryEngine engine(tg.graph, tg.weights);
  const auto qs = make_queries(400, tg.graph.num_vertices(), 47);

  set_thread_count(1);
  std::vector<std::uint32_t> ref_offsets;
  std::vector<std::uint32_t> ref_nodes;
  engine.routes(qs, ref_offsets, ref_nodes);

  // Every caller runs the identical whole batch into its own buffers.
  set_thread_count(4);
  constexpr std::size_t kCallers = 3;
  std::vector<std::vector<std::uint32_t>> offsets(kCallers);
  std::vector<std::vector<std::uint32_t>> nodes(kCallers);
  {
    std::vector<std::thread> callers;
    for (std::size_t c = 0; c < kCallers; ++c) {
      callers.emplace_back([&, c] { engine.routes(qs, offsets[c], nodes[c]); });
    }
    for (auto& t : callers) t.join();
  }
  set_thread_count(0);
  for (std::size_t c = 0; c < kCallers; ++c) {
    EXPECT_EQ(offsets[c], ref_offsets) << "caller " << c;
    EXPECT_EQ(nodes[c], ref_nodes) << "caller " << c;
  }
}

TEST(ServeConcurrency, SharedSensRouterBatchMatchesSequential) {
  // A real overlay: the immutable SensRouter is shared by route_batch
  // (leased scratches) and compared with one-at-a-time caller-scratch runs.
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), 25.0, 10, 10, 51);
  const SensRouter router(r.overlay);
  const auto reps = r.overlay.giant_rep_sites();
  ASSERT_GE(reps.size(), 2u);
  Rng pick = Rng::stream(51, 0x5e12e);
  std::vector<std::pair<Site, Site>> pairs(64);
  for (auto& p : pairs) {
    p.first = reps[pick.uniform_index(reps.size())];
    p.second = reps[pick.uniform_index(reps.size())];
  }

  SensRouteScratch scratch;
  std::vector<SensRoute> expected;
  expected.reserve(pairs.size());
  for (const auto& [a, b] : pairs) expected.push_back(router.route(a, b, scratch));

  set_thread_count(4);
  constexpr std::size_t kCallers = 3;
  std::vector<std::vector<SensRoute>> got(kCallers);
  {
    std::vector<std::thread> callers;
    for (std::size_t c = 0; c < kCallers; ++c) {
      callers.emplace_back([&, c] { got[c] = route_batch(router, pairs); });
    }
    for (auto& t : callers) t.join();
  }
  set_thread_count(0);
  for (std::size_t c = 0; c < kCallers; ++c) {
    ASSERT_EQ(got[c].size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[c][i].success, expected[i].success) << c << "/" << i;
      EXPECT_EQ(got[c][i].node_path, expected[i].node_path) << c << "/" << i;
      EXPECT_EQ(got[c][i].probes, expected[i].probes) << c << "/" << i;
      EXPECT_EQ(got[c][i].euclid_length, expected[i].euclid_length) << c << "/" << i;
      EXPECT_EQ(got[c][i].power2, expected[i].power2) << c << "/" << i;
    }
  }
}

}  // namespace
}  // namespace sens
