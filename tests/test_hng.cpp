// Tests for sens/hng: the hierarchical neighbor graph construction
// (arXiv:0903.0742) — p-thinning levels, per-level k-NN linking, the top
// clique, connectivity, and the DESIGN.md §2.5 determinism contract
// (bit-identical overlays at any thread count).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sens/geograph/point_set.hpp"
#include "sens/graph/components.hpp"
#include "sens/hng/hng.hpp"
#include "sens/support/parallel.hpp"

namespace sens {
namespace {

/// The shared fixture deployment: ~1150 Poisson points on a 24x24 window.
const PointSet& fixture_points() {
  static const PointSet ps = poisson_point_set(Box{{0.0, 0.0}, {24.0, 24.0}}, 2.0, 0x5EB5);
  return ps;
}

/// Brute-force k nearest members of `members` to points[u] (excluding u),
/// with the engines' (distance, index) tie-break.
std::vector<std::uint32_t> brute_knn(const std::vector<Vec2>& points, std::uint32_t u,
                                     std::vector<std::uint32_t> members, std::size_t k) {
  std::erase(members, u);
  std::sort(members.begin(), members.end(), [&](std::uint32_t a, std::uint32_t b) {
    const double da = dist2(points[a], points[u]);
    const double db = dist2(points[b], points[u]);
    return da != db ? da < db : a < b;
  });
  members.resize(std::min(k, members.size()));
  return members;
}

TEST(Hng, RejectsInvalidParams) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}};
  EXPECT_THROW(build_hng(pts, {.promote_p = 0.0}, 1), std::invalid_argument);
  EXPECT_THROW(build_hng(pts, {.promote_p = 1.0}, 1), std::invalid_argument);
  EXPECT_THROW(build_hng(pts, {.promote_p = -0.5}, 1), std::invalid_argument);
  EXPECT_THROW(build_hng(pts, {.promote_p = 0.5, .k = 0}, 1), std::invalid_argument);
  EXPECT_THROW(build_hng(pts, {.promote_p = 0.5, .k = 1, .max_level = 1}, 1),
               std::invalid_argument);
}

TEST(Hng, EmptyAndSingletonInputs) {
  const HngResult empty = build_hng(std::vector<Vec2>{}, {}, 7);
  EXPECT_EQ(empty.geo.size(), 0u);
  EXPECT_EQ(empty.top_level, 0u);
  const HngResult one = build_hng(std::vector<Vec2>{{2.0, 3.0}}, {}, 7);
  EXPECT_EQ(one.geo.size(), 1u);
  EXPECT_EQ(one.geo.graph.num_edges(), 0u);
  EXPECT_GE(one.top_level, 1u);
  EXPECT_EQ(one.level[0], one.top_level);
}

// The headline property on the pinned default seed: one connected component
// over *all* nodes, with small observed degree (the paper's bounded
// expected degree; the bound here is observed slack, not the theorem).
TEST(Hng, ConnectedWithBoundedDegreeOnPinnedSeed) {
  const PointSet& ps = fixture_points();
  const HngResult r = build_hng(ps.points, {.promote_p = 0.25, .k = 3}, 0x5EB5);
  EXPECT_EQ(r.geo.size(), ps.size());
  EXPECT_EQ(connected_components(r.geo.graph).count(), 1u);
  // Expected degree is the theorem; the observed max (50 on this seed) can
  // spike where many level-l nodes elect the same sparse upper neighbor.
  EXPECT_LT(r.geo.graph.mean_degree(), 8.0);
  EXPECT_LT(r.geo.graph.max_degree(), 64u);
}

// Level populations: S_1 is everyone, each thinning keeps a ~p fraction,
// and the cumulative sizes are consistent with the per-node levels.
TEST(Hng, ThinningLevelsAreConsistentAndGeometric) {
  const PointSet& ps = fixture_points();
  const double p = 0.25;
  const HngResult r = build_hng(ps.points, {.promote_p = p, .k = 2}, 99);
  ASSERT_GE(r.top_level, 2u);
  ASSERT_EQ(r.cumulative_size.size(), r.top_level);
  EXPECT_EQ(r.cumulative_size[0], ps.size());
  for (std::uint32_t l = 1; l <= r.top_level; ++l) {
    const auto count = static_cast<std::uint32_t>(
        std::count_if(r.level.begin(), r.level.end(), [&](std::uint32_t lv) { return lv >= l; }));
    EXPECT_EQ(count, r.cumulative_size[l - 1]);
    EXPECT_GT(count, 0u);
  }
  // One p-thinning step on ~1150 nodes: the kept fraction is within 5
  // sigma of p (binomial sd ~ 0.013 at this n).
  const double kept = static_cast<double>(r.cumulative_size[1]) /
                      static_cast<double>(r.cumulative_size[0]);
  EXPECT_NEAR(kept, p, 0.065);
}

// Every node below the top links to its k nearest strictly-higher-level
// neighbors (checked against a brute-force oracle through the symmetrized
// graph: the selected targets must all be graph neighbors).
TEST(Hng, NodesLinkToNearestUpperLevelNeighbors) {
  const PointSet& ps = fixture_points();
  const std::size_t k = 3;
  const HngResult r = build_hng(ps.points, {.promote_p = 0.3, .k = k}, 5);
  ASSERT_GE(r.top_level, 2u);
  std::vector<std::vector<std::uint32_t>> members(r.top_level + 1);
  for (std::uint32_t u = 0; u < ps.size(); ++u) {
    for (std::uint32_t l = 1; l <= r.level[u]; ++l) members[l].push_back(u);
  }
  for (std::uint32_t u = 0; u < ps.size(); ++u) {
    const std::uint32_t l = r.level[u];
    if (l == r.top_level) continue;
    const auto nbrs = r.geo.graph.neighbors(u);
    for (const std::uint32_t v : brute_knn(ps.points, u, members[l + 1], k)) {
      EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), v))
          << "node " << u << " (level " << l << ") missing upward link to " << v;
    }
  }
}

TEST(Hng, TopLevelIsMutuallyInterconnected) {
  const PointSet& ps = fixture_points();
  const HngResult r = build_hng(ps.points, {.promote_p = 0.25, .k = 1}, 17);
  std::vector<std::uint32_t> top;
  for (std::uint32_t u = 0; u < ps.size(); ++u) {
    if (r.level[u] == r.top_level) top.push_back(u);
  }
  ASSERT_FALSE(top.empty());
  for (std::size_t i = 0; i < top.size(); ++i) {
    for (std::size_t j = i + 1; j < top.size(); ++j) {
      EXPECT_TRUE(r.geo.graph.has_edge(top[i], top[j]));
    }
  }
}

// DESIGN.md §2.5: the construction is a pure function of (points, params,
// seed) — levels and edge lists bit-identical at any thread count.
TEST(Hng, OverlayBitIdenticalAcrossThreadCounts) {
  const PointSet& ps = fixture_points();
  const HngParams params{.promote_p = 0.25, .k = 3};
  set_thread_count(1);
  const HngResult serial = build_hng(ps.points, params, 0x5EB5);
  for (const unsigned threads : {2u, 8u}) {
    set_thread_count(threads);
    const HngResult parallel = build_hng(ps.points, params, 0x5EB5);
    EXPECT_EQ(parallel.level, serial.level);
    EXPECT_EQ(parallel.geo.graph.edge_list(), serial.geo.graph.edge_list());
  }
  set_thread_count(0);
}

// Adversarial k: with k >= every |S_{l+1}| the selections must saturate at
// the full upper population without breaking construction or connectivity.
TEST(Hng, KLargerThanEveryLevelSaturates) {
  const PointSet small = poisson_point_set(Box{{0.0, 0.0}, {6.0, 6.0}}, 2.0, 3);
  ASSERT_GT(small.size(), 4u);
  const HngResult r = build_hng(small.points, {.promote_p = 0.4, .k = 10'000}, 11);
  EXPECT_EQ(connected_components(r.geo.graph).count(), 1u);
  // Every node of exact level l sees the whole of S_{l+1} as neighbors.
  for (std::uint32_t u = 0; u < small.size(); ++u) {
    const std::uint32_t l = r.level[u];
    if (l == r.top_level) continue;
    for (std::uint32_t v = 0; v < small.size(); ++v) {
      if (v != u && r.level[v] >= l + 1) {
        EXPECT_TRUE(r.geo.graph.has_edge(u, v));
      }
    }
  }
}

}  // namespace
}  // namespace sens
