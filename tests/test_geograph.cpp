// Tests for sens/geograph: the Poisson point process and the UDG / k-NN
// graph builders.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sens/geograph/knn.hpp"
#include "sens/geograph/point_set.hpp"
#include "sens/geograph/udg.hpp"
#include "sens/spatial/kdtree.hpp"
#include "sens/support/parallel.hpp"
#include "sens/support/stats.hpp"

namespace sens {
namespace {

TEST(PointProcess, DeterministicForSeed) {
  const Box w{{0.0, 0.0}, {10.0, 10.0}};
  const PointSet a = poisson_point_set(w, 2.0, 42);
  const PointSet b = poisson_point_set(w, 2.0, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.points[i], b.points[i]);
  const PointSet c = poisson_point_set(w, 2.0, 43);
  EXPECT_NE(a.size(), 0u);
  EXPECT_TRUE(a.size() != c.size() || !(a.points[0] == c.points[0]));
}

TEST(PointProcess, RestrictionConsistency) {
  // The points of a sub-window equal the restriction of the big window's
  // points (cell-consistent sampling).
  const Box big{{0.0, 0.0}, {20.0, 20.0}};
  const Box small{{5.0, 5.0}, {12.0, 12.0}};
  const PointSet pb = poisson_point_set(big, 1.5, 7);
  const PointSet ps = poisson_point_set(small, 1.5, 7);
  std::vector<Vec2> restricted;
  for (const Vec2 p : pb.points)
    if (small.contains(p)) restricted.push_back(p);
  auto key = [](Vec2 a, Vec2 b) { return a.x != b.x ? a.x < b.x : a.y < b.y; };
  std::vector<Vec2> got = ps.points;
  std::sort(got.begin(), got.end(), key);
  std::sort(restricted.begin(), restricted.end(), key);
  ASSERT_EQ(got.size(), restricted.size());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], restricted[i]);
}

TEST(PointProcess, MeanCountMatchesIntensity) {
  RunningStats counts;
  const Box w{{0.0, 0.0}, {8.0, 8.0}};
  for (std::uint64_t s = 0; s < 60; ++s)
    counts.add(static_cast<double>(poisson_point_set(w, 3.0, 1000 + s).size()));
  const double expected = 3.0 * w.area();
  EXPECT_NEAR(counts.mean(), expected, 5.0 * std::sqrt(expected / 60.0) + 1.0);
}

TEST(PointProcess, AllPointsInsideWindow) {
  const Box w{{-3.5, 2.25}, {4.5, 9.75}};
  const PointSet ps = poisson_point_set(w, 2.0, 11);
  for (const Vec2 p : ps.points) EXPECT_TRUE(w.contains(p));
}

TEST(PointProcess, ZeroIntensity) {
  EXPECT_EQ(poisson_point_set(Box{{0, 0}, {5, 5}}, 0.0, 1).size(), 0u);
  EXPECT_THROW((void)poisson_point_set(Box{{0, 0}, {5, 5}}, -1.0, 1), std::invalid_argument);
}

TEST(PointProcess, BoxSampler) {
  const Box b{{2.0, 3.0}, {4.0, 6.0}};
  RunningStats counts;
  for (std::uint64_t t = 0; t < 200; ++t) {
    const auto pts = poisson_points_in_box(b, 5.0, 3, t);
    counts.add(static_cast<double>(pts.size()));
    for (const Vec2 p : pts) EXPECT_TRUE(b.contains_closed(p));
  }
  EXPECT_NEAR(counts.mean(), 5.0 * b.area(), 5.0 * std::sqrt(30.0 / 200.0) + 1.0);
}

TEST(Udg, EdgesMatchBruteForce) {
  const Box w{{0.0, 0.0}, {6.0, 6.0}};
  const PointSet ps = poisson_point_set(w, 1.5, 21);
  const GeoGraph g = build_udg(ps.points, w, 1.0);
  ASSERT_EQ(g.size(), ps.size());
  for (std::uint32_t i = 0; i < ps.size(); ++i) {
    for (std::uint32_t j = i + 1; j < ps.size(); ++j) {
      EXPECT_EQ(g.graph.has_edge(i, j), dist(ps.points[i], ps.points[j]) <= 1.0);
    }
  }
}

TEST(Udg, CustomRadius) {
  std::vector<Vec2> pts{{0.0, 0.0}, {1.5, 0.0}, {3.5, 0.0}};
  const GeoGraph g = build_udg(pts, Box{{0, 0}, {4, 1}}, 2.0);
  EXPECT_TRUE(g.graph.has_edge(0, 1));
  EXPECT_TRUE(g.graph.has_edge(1, 2));
  EXPECT_FALSE(g.graph.has_edge(0, 2));
  EXPECT_THROW((void)build_udg(pts, Box{{0, 0}, {4, 1}}, 0.0), std::invalid_argument);
}

TEST(Udg, MeanDegreeNearTheory) {
  // E[degree] = lambda * pi * r^2 for interior points.
  const Box w{{0.0, 0.0}, {30.0, 30.0}};
  const double lambda = 2.0;
  const PointSet ps = poisson_point_set(w, lambda, 5);
  const GeoGraph g = build_udg(ps.points, w, 1.0);
  EXPECT_NEAR(g.graph.mean_degree(), lambda * 3.14159265, 0.6);  // boundary bias lowers it
}

TEST(Knn, SelectionsHaveSizeK) {
  const Box w{{0.0, 0.0}, {10.0, 10.0}};
  const PointSet ps = poisson_point_set(w, 2.0, 31);
  const auto sel = knn_selections(ps.points, 5);
  ASSERT_EQ(sel.size(), ps.size());
  for (std::size_t i = 0; i < sel.size(); ++i) {
    EXPECT_EQ(sel[i].size(), std::min<std::size_t>(5, ps.size() - 1));
    for (const auto j : sel[i]) EXPECT_NE(j, i);
  }
}

TEST(Knn, GraphIsUndirectedUnion) {
  const Box w{{0.0, 0.0}, {8.0, 8.0}};
  const PointSet ps = poisson_point_set(w, 2.0, 33);
  const std::size_t k = 4;
  const GeoGraph g = build_knn_graph(ps.points, k);
  const auto sel = knn_selections(ps.points, k);
  for (std::uint32_t u = 0; u < ps.size(); ++u) {
    for (std::uint32_t v = u + 1; v < ps.size(); ++v) {
      const bool u_sel_v = std::find(sel[u].begin(), sel[u].end(), v) != sel[u].end();
      const bool v_sel_u = std::find(sel[v].begin(), sel[v].end(), u) != sel[v].end();
      EXPECT_EQ(g.graph.has_edge(u, v), u_sel_v || v_sel_u);
    }
  }
  // Undirected union => min degree >= k (every vertex selects k others).
  for (std::uint32_t u = 0; u < ps.size(); ++u) EXPECT_GE(g.graph.degree(u), k);
}

TEST(Knn, GraphWithKAtLeastNIsComplete) {
  // Adversarial k >= n: every vertex selects all others, so the selection
  // union (CsrGraph::from_selections) must be the complete graph.
  const Box w{{0.0, 0.0}, {4.0, 4.0}};
  const PointSet ps = poisson_point_set(w, 1.5, 35);
  ASSERT_GE(ps.size(), 3u);
  const GeoGraph g = build_knn_graph(ps.points, ps.size() + 5);
  EXPECT_EQ(g.graph.num_edges(), ps.size() * (ps.size() - 1) / 2);
  for (std::uint32_t u = 0; u < ps.size(); ++u) EXPECT_EQ(g.graph.degree(u), ps.size() - 1);
}

// Restore the default worker count even if an assertion fails mid-test.
class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { set_thread_count(0); }
};

TEST(Knn, FlatSelectionsRoundTripAgainstNested) {
  const Box w{{0.0, 0.0}, {10.0, 10.0}};
  const PointSet ps = poisson_point_set(w, 2.0, 4711);  // pinned seed
  const std::size_t k = 6;
  const FlatAdjacency flat = knn_selections_flat(ps.points, k);
  ASSERT_EQ(flat.size(), ps.size());
  ASSERT_EQ(flat.offsets.front(), 0u);
  ASSERT_EQ(flat.offsets.back(), flat.neighbors.size());
  // Per-vertex slices equal the legacy nested shape and the kd-tree oracle.
  const auto nested = knn_selections(ps.points, k);
  const KdTree tree(ps.points);
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat.degree(i), std::min(k, ps.size() - 1));
    const auto slice = flat[i];
    EXPECT_TRUE(std::equal(slice.begin(), slice.end(), nested[i].begin(), nested[i].end()));
    const auto oracle = tree.nearest(ps.points[i], k, static_cast<std::uint32_t>(i));
    EXPECT_TRUE(std::equal(slice.begin(), slice.end(), oracle.begin(), oracle.end()));
  }
  // to_nested round-trips exactly.
  EXPECT_EQ(flat.to_nested(), nested);
}

TEST(Knn, FlatSelectionsKLargerThanN) {
  const auto flat = knn_selections_flat(std::vector<Vec2>{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}}, 10);
  ASSERT_EQ(flat.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(flat.degree(i), 2u);
  const FlatAdjacency none = knn_selections_flat({}, 5);
  EXPECT_EQ(none.size(), 0u);
  const FlatAdjacency single = knn_selections_flat(std::vector<Vec2>{{1.0, 1.0}}, 5);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single.degree(0), 0u);
}

// DESIGN.md §2.3: chunk-ordered edge collection makes graph builds
// bit-identical at any thread count.
TEST(Udg, EdgeListBitIdenticalAcrossThreadCounts) {
  const ThreadCountGuard guard;
  const Box w{{0.0, 0.0}, {14.0, 14.0}};
  const PointSet ps = poisson_point_set(w, 3.0, 8472);
  set_thread_count(1);
  const auto base = build_udg(ps.points, w, 1.0).graph.edge_list();
  EXPECT_FALSE(base.empty());
  for (const unsigned threads : {2u, 8u}) {
    set_thread_count(threads);
    EXPECT_EQ(build_udg(ps.points, w, 1.0).graph.edge_list(), base) << threads << " threads";
  }
}

TEST(Knn, SelectionsBitIdenticalAcrossThreadCounts) {
  const ThreadCountGuard guard;
  const Box w{{0.0, 0.0}, {12.0, 12.0}};
  const PointSet ps = poisson_point_set(w, 2.0, 1234);
  set_thread_count(1);
  const FlatAdjacency base = knn_selections_flat(ps.points, 7);
  const auto base_edges = build_knn_graph(ps.points, 7).graph.edge_list();
  for (const unsigned threads : {2u, 8u}) {
    set_thread_count(threads);
    const FlatAdjacency flat = knn_selections_flat(ps.points, 7);
    EXPECT_EQ(flat.offsets, base.offsets) << threads << " threads";
    EXPECT_EQ(flat.neighbors, base.neighbors) << threads << " threads";
    EXPECT_EQ(build_knn_graph(ps.points, 7).graph.edge_list(), base_edges)
        << threads << " threads";
  }
}

TEST(GeoGraphMetrics, PathLengthAndPower) {
  GeoGraph g;
  g.points = {{0.0, 0.0}, {3.0, 4.0}, {3.0, 6.0}};
  g.graph = CsrGraph::from_edges(3, {{0, 1}, {1, 2}});
  const std::vector<std::uint32_t> path{0, 1, 2};
  EXPECT_DOUBLE_EQ(g.path_length(path), 7.0);
  EXPECT_DOUBLE_EQ(g.path_power(path, 2.0), 25.0 + 4.0);
  EXPECT_DOUBLE_EQ(g.path_power(path, 3.0), 125.0 + 8.0);
  EXPECT_DOUBLE_EQ(g.edge_length(0, 1), 5.0);
}

}  // namespace
}  // namespace sens
