// Property and integration tests for the UDG-SENS construction: sparsity
// (P1), the Claim 2.1 path guarantee, stretch sampling (P2), coverage (P3)
// and tile-level routing.
#include <gtest/gtest.h>

#include <algorithm>

#include "sens/core/coverage.hpp"
#include "sens/core/metrics.hpp"
#include "sens/core/sens_router.hpp"
#include "sens/core/udg_sens.hpp"
#include "sens/perc/clusters.hpp"
#include "sens/tiles/good_prob.hpp"

namespace sens {
namespace {

// Strict spec at lambda = 25 is comfortably supercritical (P(good) ~ 0.68).
constexpr double kLambda = 25.0;

UdgSensResult small_build(std::uint64_t seed, int tiles = 24) {
  return build_udg_sens(UdgTileSpec::strict(), kLambda, tiles, tiles, seed);
}

class UdgSensSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UdgSensSeedTest, MaxDegreeFour) {
  const UdgSensResult r = small_build(GetParam());
  const DegreeReport deg = overlay_degree_report(r.overlay);
  EXPECT_LE(deg.max_degree, 4u) << "P1 violated";
  EXPECT_GT(deg.nodes, 0u);
}

TEST_P(UdgSensSeedTest, StrictSpecRealizesEveryEdge) {
  const UdgSensResult r = small_build(GetParam());
  EXPECT_EQ(r.overlay.edges_missing, 0u);
  EXPECT_GT(r.overlay.edges_expected, 0u);
}

TEST_P(UdgSensSeedTest, ClaimPathsAlwaysRealizedWithShortEdges) {
  const UdgSensResult r = small_build(GetParam());
  const ClaimCheck check = check_adjacent_tile_paths(r.overlay);
  EXPECT_GT(check.adjacent_good_pairs, 0u);
  EXPECT_DOUBLE_EQ(check.realized_fraction(), 1.0);
  EXPECT_LE(check.worst_edge_length, UdgTileSpec::strict().link_radius + 1e-12);
}

TEST_P(UdgSensSeedTest, OverlayEdgesRespectLinkRadius) {
  const UdgSensResult r = small_build(GetParam());
  for (const auto& [u, v] : r.overlay.geo.graph.edge_list())
    EXPECT_LE(r.overlay.geo.edge_length(u, v), UdgTileSpec::strict().link_radius + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UdgSensSeedTest, ::testing::Range<std::uint64_t>(1, 9));

TEST(UdgSens, GoodFractionMatchesSingleTileMc) {
  // The window's good-tile fraction must match the per-tile MC estimator
  // (tiles are iid by Poisson independence).
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), kLambda, 40, 40, 77);
  const double frac = static_cast<double>(r.classification.good_count()) /
                      static_cast<double>(r.classification.good.size());
  const Proportion mc = udg_good_probability(UdgTileSpec::strict(), kLambda, 8000, 5);
  EXPECT_NEAR(frac, mc.estimate(), 0.05);
}

TEST(UdgSens, SiteGridMatchesClassification) {
  const UdgSensResult r = small_build(3);
  const SiteGrid& grid = r.overlay.sites;
  for (std::size_t idx = 0; idx < r.classification.good.size(); ++idx) {
    EXPECT_EQ(grid.open(grid.site_at(idx)), r.classification.good[idx] == 1);
  }
}

TEST(UdgSens, RepNodesExistExactlyOnGoodTiles) {
  const UdgSensResult r = small_build(4);
  for (std::size_t idx = 0; idx < r.classification.good.size(); ++idx) {
    const bool has_rep = r.overlay.rep_node[idx] != Overlay::no_node();
    EXPECT_EQ(has_rep, r.classification.good[idx] == 1);
    if (has_rep) {
      // Rep overlay node maps back to the elected base point.
      EXPECT_EQ(r.overlay.base_index[r.overlay.rep_node[idx]], r.classification.nodes[idx].rep);
    }
  }
}

TEST(UdgSens, GiantComponentCoversCoupledGiantCluster) {
  // Tile-level giant cluster connectivity transfers to the overlay: reps of
  // any two giant-cluster sites are connected in the overlay graph.
  const UdgSensResult r = small_build(5);
  const ClusterLabels labels(r.overlay.sites);
  ASSERT_GE(labels.largest_cluster_size(), 2u);
  std::vector<Site> giant;
  for (std::size_t i = 0; i < r.overlay.sites.num_sites(); i += 3) {
    const Site s = r.overlay.sites.site_at(i);
    if (labels.in_largest(s)) giant.push_back(s);
  }
  ASSERT_GE(giant.size(), 2u);
  const std::uint32_t comp = r.overlay.comps.label[r.overlay.rep_of(giant.front())];
  for (const Site s : giant) EXPECT_EQ(r.overlay.comps.label[r.overlay.rep_of(s)], comp);
}

TEST(UdgSens, StretchSamplesBounded) {
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), kLambda, 32, 32, 6);
  const auto samples = sample_overlay_stretch(r.overlay, 60, 11);
  ASSERT_GT(samples.size(), 20u);
  for (const auto& s : samples) {
    EXPECT_GE(s.length_stretch(), 1.0 - 1e-9);  // Euclid is a lower bound
    EXPECT_LT(s.length_stretch(), 12.0);        // constant-stretch sanity ceiling
    EXPECT_GT(s.hops, 0u);
    EXPECT_GE(s.path_power2, 0.0);
  }
}

TEST(UdgSens, EmptyBlockProbabilityDecreasesWithSize) {
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), kLambda, 48, 48, 8);
  const int sizes[] = {1, 2, 3, 5, 8};
  const auto probs = empty_block_probability(r.overlay, sizes);
  ASSERT_EQ(probs.size(), 5u);
  for (std::size_t i = 1; i < probs.size(); ++i) EXPECT_LE(probs[i], probs[i - 1] + 1e-12);
  EXPECT_LT(probs.back(), probs.front());
  EXPECT_LT(probs[4], 0.05);  // 8x8 tile blocks essentially never empty
}

TEST(UdgSens, EmptyBlockOversizeIsOne) {
  const UdgSensResult r = small_build(9, 8);
  const int sizes[] = {100};
  EXPECT_DOUBLE_EQ(empty_block_probability(r.overlay, sizes)[0], 1.0);
}

TEST(UdgSens, EmptyBoxProbabilityEuclid) {
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), kLambda, 32, 32, 10);
  const Proportion small_box = empty_box_probability(r.overlay, 0.6, 2000, 3);
  const Proportion big_box = empty_box_probability(r.overlay, 4.0, 2000, 4);
  EXPECT_GT(small_box.estimate(), big_box.estimate());
  EXPECT_LT(big_box.estimate(), 0.1);
}

TEST(UdgSensRouter, RoutesWithinGiantAndPathValid) {
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), kLambda, 32, 32, 12);
  const auto reps = r.overlay.giant_rep_sites();
  ASSERT_GE(reps.size(), 2u);
  const SensRouter router(r.overlay);
  const SensRoute route = router.route(reps.front(), reps.back());
  ASSERT_TRUE(route.success);
  EXPECT_GE(route.probes, route.tile_hops);
  ASSERT_GE(route.node_path.size(), 2u);
  EXPECT_EQ(route.node_path.front(), r.overlay.rep_of(reps.front()));
  EXPECT_EQ(route.node_path.back(), r.overlay.rep_of(reps.back()));
  for (std::size_t i = 1; i < route.node_path.size(); ++i) {
    EXPECT_TRUE(r.overlay.geo.graph.has_edge(route.node_path[i - 1], route.node_path[i]))
        << "relay chain step " << i << " is not an overlay edge";
  }
  EXPECT_NEAR(route.euclid_length,
              r.overlay.geo.path_length(route.node_path), 1e-9);
}

TEST(UdgSensRouter, RouteLengthLowerBound) {
  const UdgSensResult r = build_udg_sens(UdgTileSpec::strict(), kLambda, 32, 32, 13);
  const auto reps = r.overlay.giant_rep_sites();
  ASSERT_GE(reps.size(), 2u);
  const SensRouter router(r.overlay);
  const SensRoute route = router.route(reps.front(), reps.back());
  ASSERT_TRUE(route.success);
  const double straight = dist(r.overlay.geo.points[route.node_path.front()],
                               r.overlay.geo.points[route.node_path.back()]);
  EXPECT_GE(route.euclid_length, straight - 1e-9);
}

TEST(UdgSens, PaperSpecReportsClaimGap) {
  // The paper preset has no worst-case guarantee; at moderate density some
  // prescribed edges exceed the unit radius. The builder must quantify
  // rather than hide this.
  const UdgSensResult r = build_udg_sens(UdgTileSpec::paper(), 10.0, 24, 24, 21);
  const ClaimCheck check = check_adjacent_tile_paths(r.overlay);
  EXPECT_GT(check.adjacent_good_pairs, 0u);
  // Either some edges went missing or every path realized — both are valid
  // outcomes of the measurement; assert only the accounting is consistent.
  EXPECT_LE(check.paths_realized, check.adjacent_good_pairs);
  // Accounting consistency (edges may dedupe when one node serves two roles).
  EXPECT_LE(r.overlay.edges_missing, r.overlay.edges_expected);
  EXPECT_LE(r.overlay.geo.graph.num_edges() + r.overlay.edges_missing,
            r.overlay.edges_expected);
}

}  // namespace
}  // namespace sens
