// Tests for sens/dynamic: incremental HNG maintenance under churn.
//
// The contract under test (DESIGN.md §2.7) is *exact*: after every single
// insert()/remove() event the dynamic structure must agree bit for bit with
// a fresh batch `build_hng` over the surviving point set — levels, top
// level, and the symmetrized overlay edge list. The churn tier
// (`ctest -L churn`, run under ASan in CI) replays seed-sharded randomized
// traces and checks that full-rebuild oracle after EVERY prefix.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sens/dynamic/dynamic_hng.hpp"
#include "sens/geograph/point_set.hpp"
#include "sens/hng/hng.hpp"
#include "sens/rng/rng.hpp"
#include "sens/support/parallel.hpp"

namespace sens {
namespace {

/// The full-rebuild oracle: batch-build over the survivors and demand
/// bit-for-bit agreement on levels, top level, vertex count, and edges.
::testing::AssertionResult matches_oracle(const DynamicHng& dyn) {
  const HngResult batch = build_hng(dyn.points(), dyn.params(), dyn.seed());
  if (dyn.overlay().num_vertices() != batch.geo.size()) {
    return ::testing::AssertionFailure()
           << "overlay has " << dyn.overlay().num_vertices() << " vertices, batch "
           << batch.geo.size();
  }
  if (dyn.top_level() != batch.top_level) {
    return ::testing::AssertionFailure()
           << "top level " << dyn.top_level() << " vs batch " << batch.top_level;
  }
  for (std::uint32_t i = 0; i < dyn.size(); ++i) {
    if (dyn.level(i) != batch.level[i]) {
      return ::testing::AssertionFailure()
             << "level of slot " << i << ": " << dyn.level(i) << " vs batch " << batch.level[i];
    }
  }
  if (dyn.overlay().edge_list() != batch.geo.graph.edge_list()) {
    return ::testing::AssertionFailure()
           << "edge lists diverge (" << dyn.overlay().num_edges() << " vs "
           << batch.geo.graph.num_edges() << " edges)";
  }
  return ::testing::AssertionSuccess();
}

/// One churn event; replayable so the thread-invariance test can run the
/// identical trace at several thread counts.
struct Event {
  bool join;
  Vec2 p;              ///< join only
  std::uint32_t slot;  ///< leave only
};

/// Deterministic mixed trace: joins (a fraction of them byte-duplicate
/// coordinates of a live node) and leaves of uniformly random slots. The
/// generator mirrors the swap-remove slot semantics so duplicate picks and
/// leave slots are always valid.
std::vector<Event> make_trace(std::uint64_t seed, std::size_t events, double p_join) {
  Rng rng = Rng::stream(seed, 0xC4421, 0);
  std::vector<Event> trace;
  trace.reserve(events);
  std::vector<Vec2> model;
  for (std::size_t e = 0; e < events; ++e) {
    if (model.empty() || rng.bernoulli(p_join)) {
      Vec2 p{rng.uniform(0.0, 20.0), rng.uniform(0.0, 20.0)};
      if (!model.empty() && rng.bernoulli(0.1)) {
        p = model[rng.uniform_index(model.size())];  // duplicate point
      }
      trace.push_back({.join = true, .p = p, .slot = 0});
      model.push_back(p);
    } else {
      const auto slot = static_cast<std::uint32_t>(rng.uniform_index(model.size()));
      trace.push_back({.join = false, .p = {}, .slot = slot});
      model[slot] = model.back();
      model.pop_back();
    }
  }
  return trace;
}

void apply(DynamicHng& dyn, const Event& e) {
  if (e.join) {
    dyn.insert(e.p);
  } else {
    dyn.remove(e.slot);
  }
}

TEST(DynamicHng, RejectsInvalidParams) {
  EXPECT_THROW(DynamicHng({.promote_p = 0.0}, 1), std::invalid_argument);
  EXPECT_THROW(DynamicHng({.promote_p = 1.0}, 1), std::invalid_argument);
  EXPECT_THROW(DynamicHng({.promote_p = 0.5, .k = 0}, 1), std::invalid_argument);
  EXPECT_THROW(DynamicHng({.promote_p = 0.5, .k = 1, .max_level = 1}, 1), std::invalid_argument);
}

TEST(DynamicHng, EmptySingletonAndBackToEmpty) {
  DynamicHng dyn({}, 7);
  EXPECT_EQ(dyn.size(), 0u);
  EXPECT_TRUE(matches_oracle(dyn));

  const std::uint32_t id = dyn.insert({2.0, 3.0});
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(dyn.size(), 1u);
  EXPECT_EQ(dyn.overlay().num_vertices(), 1u);
  EXPECT_EQ(dyn.overlay().num_edges(), 0u);
  EXPECT_EQ(dyn.level(0), dyn.top_level());
  EXPECT_TRUE(matches_oracle(dyn));

  dyn.remove(0);
  EXPECT_EQ(dyn.size(), 0u);
  EXPECT_EQ(dyn.overlay().num_vertices(), 0u);
  EXPECT_TRUE(matches_oracle(dyn));
}

TEST(DynamicHng, RemoveInvalidSlotThrows) {
  DynamicHng dyn({}, 3);
  EXPECT_THROW(dyn.remove(0), std::out_of_range);
  dyn.insert({1.0, 1.0});
  EXPECT_THROW(dyn.remove(1), std::out_of_range);
}

// The bulk constructor is insert() in a loop, so one oracle check covers
// ~700 consecutive join events; the event stats must account for the last
// joiner itself.
TEST(DynamicHng, BulkAdoptionMatchesBatchBuild) {
  const PointSet ps = poisson_point_set(Box{{0.0, 0.0}, {18.0, 18.0}}, 2.0, 0xD15);
  const DynamicHng dyn(ps.points, {.promote_p = 0.25, .k = 3}, 0xD15);
  EXPECT_EQ(dyn.size(), ps.size());
  EXPECT_TRUE(matches_oracle(dyn));
  EXPECT_GE(dyn.last_event().relinked, 1u);
}

// Byte-identical coordinates are distinct nodes (distinct slots, distinct
// rng streams); ties resolve by the (distance, index) order everywhere.
TEST(DynamicHng, DuplicatePointsAreDistinctNodes) {
  DynamicHng dyn({.promote_p = 0.4, .k = 2}, 0xD0B);
  for (int rep = 0; rep < 24; ++rep) {
    dyn.insert({1.0, 1.0});
    ASSERT_TRUE(matches_oracle(dyn)) << "after duplicate insert " << rep;
  }
  dyn.insert({4.0, 1.0});
  dyn.insert({1.0, 5.0});
  ASSERT_TRUE(matches_oracle(dyn));
  while (dyn.size() > 20) {
    dyn.remove(0);
    ASSERT_TRUE(matches_oracle(dyn)) << "after removing a duplicate, n=" << dyn.size();
  }
}

// Drain to empty one swap-remove at a time, then repopulate: every slot is
// vacated and revived at least once, and the empty structure must accept a
// fresh life.
TEST(DynamicHng, RemoveUntilEmptyThenReinsert) {
  const PointSet ps = poisson_point_set(Box{{0.0, 0.0}, {6.0, 6.0}}, 2.0, 0xE4A5E);
  ASSERT_GT(ps.size(), 30u);
  DynamicHng dyn(ps.points, {.promote_p = 0.3, .k = 2}, 0xE4A5E);
  Rng rng = Rng::stream(0xE4A5E, 0xDE1, 0);
  while (dyn.size() > 0) {
    dyn.remove(static_cast<std::uint32_t>(rng.uniform_index(dyn.size())));
    ASSERT_TRUE(matches_oracle(dyn)) << "draining, n=" << dyn.size();
  }
  for (const Vec2 p : ps.points) {
    const std::uint32_t id = dyn.insert(p);
    ASSERT_TRUE(matches_oracle(dyn)) << "re-inserting slot " << id;
  }
  EXPECT_EQ(dyn.size(), ps.size());
}

// The headline property suite: seed-sharded randomized traces, the
// full-rebuild oracle asserted after EVERY event prefix.
class ChurnTraceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnTraceTest, OracleHoldsAtEveryPrefix) {
  const std::uint64_t seed = GetParam();
  // Warm start so leaves bite immediately; slight join bias so the
  // structure grows through multi-level territory over the trace.
  const PointSet warm = poisson_point_set(Box{{0.0, 0.0}, {8.0, 8.0}}, 1.5, seed);
  DynamicHng dyn(warm.points, {.promote_p = 0.25, .k = 3}, seed);
  ASSERT_TRUE(matches_oracle(dyn));
  const std::vector<Event> trace = make_trace(seed, 500, 0.55);
  for (std::size_t e = 0; e < trace.size(); ++e) {
    // Leave slots were generated against the warm-start-free model; shift
    // into the live range (the model tracks sizes without the warm start).
    Event ev = trace[e];
    if (!ev.join) ev.slot = ev.slot % static_cast<std::uint32_t>(dyn.size());
    apply(dyn, ev);
    ASSERT_TRUE(matches_oracle(dyn)) << "trace seed " << seed << ", event " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnTraceTest,
                         ::testing::Values(0xC401u, 0xC402u, 0xC403u, 0xC404u));

// §2.7 extends the determinism contract to mutations: maintenance is
// serial by design, so replaying one trace at any --threads value must
// produce bit-identical levels and overlays (and still match the oracle,
// which itself runs chunk-parallel at the ambient thread count).
TEST(DynamicThreads, TraceReplayBitIdenticalAcrossThreadCounts) {
  const std::vector<Event> trace = make_trace(0x7A4EAD, 240, 0.6);
  const auto replay = [&trace] {
    DynamicHng dyn({.promote_p = 0.25, .k = 3}, 0x7A4EAD);
    for (const Event& e : trace) {
      Event ev = e;
      if (!ev.join) ev.slot = ev.slot % static_cast<std::uint32_t>(dyn.size());
      apply(dyn, ev);
    }
    return dyn;
  };
  set_thread_count(1);
  const DynamicHng serial = replay();
  EXPECT_TRUE(matches_oracle(serial));
  for (const unsigned threads : {2u, 8u}) {
    set_thread_count(threads);
    const DynamicHng parallel = replay();
    EXPECT_EQ(parallel.size(), serial.size());
    EXPECT_EQ(parallel.overlay().edge_list(), serial.overlay().edge_list());
    for (std::uint32_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(parallel.level(i), serial.level(i)) << "slot " << i << " at " << threads;
    }
    EXPECT_TRUE(matches_oracle(parallel));
  }
  set_thread_count(0);
}

}  // namespace
}  // namespace sens
